//! The environment-knob contract: every `NEUROCUBE_SERVE_*` knob follows
//! `sim::env`'s documented rules — unset, empty, or unparseable reads as
//! `None` (the caller's default applies) and bad values return typed
//! errors or defaults, never a panic — and the construction flags
//! (`NEUROCUBE_NO_SIMD`, `NEUROCUBE_STAGE_PAR`, `NEUROCUBE_NO_SPARSITY`)
//! are resolved fresh per [`Neurocube`] construction, never cached
//! process-wide.
//!
//! These accessors read fixed process-global variable names, so every
//! test here runs behind the shared [`common::EnvGuard`] mutex: the
//! guard serializes the tests, clears the tracked names on entry and
//! restores the shell's values on exit, so parallel test threads can
//! never race on the process environment.

mod common;

use common::EnvGuard;
use neurocube::{Neurocube, SystemConfig};
use neurocube_serve::{AuditSampler, LoadProfile, Scenario, ServeConfig, TwoSpeedConfig};
use neurocube_sim::{
    serve_audit_rate, serve_load, serve_max_batch, serve_max_delay, serve_pool, serve_scenario,
    serve_seed, simd_default, sparsity_default, stage_par_default,
};

/// A u64 far past `u64::MAX` — overflow must read as `None`, not wrap
/// or panic.
const OVERFLOW: &str = "99999999999999999999999";

#[test]
fn u64_knobs_parse_or_default_never_panic() {
    let g = EnvGuard::capture(&[
        "NEUROCUBE_SERVE_SEED",
        "NEUROCUBE_SERVE_MAX_BATCH",
        "NEUROCUBE_SERVE_MAX_DELAY",
        "NEUROCUBE_SERVE_POOL",
    ]);
    // Clean slate: every accessor reads None.
    assert_eq!(serve_seed(), None);
    assert_eq!(serve_max_batch(), None);
    assert_eq!(serve_max_delay(), None);
    assert_eq!(serve_pool(), None);
    for (name, read) in [
        ("NEUROCUBE_SERVE_SEED", serve_seed as fn() -> Option<u64>),
        ("NEUROCUBE_SERVE_MAX_BATCH", serve_max_batch),
        ("NEUROCUBE_SERVE_MAX_DELAY", serve_max_delay),
        ("NEUROCUBE_SERVE_POOL", serve_pool),
    ] {
        g.set(name, " 42 ");
        assert_eq!(read(), Some(42), "{name}: whitespace-tolerant parse");
        // "0" is a legitimate value under u64 rules, not an off switch.
        g.set(name, "0");
        assert_eq!(read(), Some(0), "{name}: zero is a value");
        g.set(name, "");
        assert_eq!(read(), None, "{name}: empty reads as unset");
        g.set(name, "4x2");
        assert_eq!(read(), None, "{name}: garbage reads as unset");
        g.set(name, "-3");
        assert_eq!(read(), None, "{name}: negative reads as unset");
        g.set(name, OVERFLOW);
        assert_eq!(read(), None, "{name}: overflow reads as unset");
        g.unset(name);
        assert_eq!(read(), None, "{name}: unset reads as unset");
    }
}

#[test]
fn audit_rate_follows_f64_rules_and_the_sampler_clamps() {
    let g = EnvGuard::capture(&["NEUROCUBE_SERVE_AUDIT_RATE"]);
    assert_eq!(serve_audit_rate(), None);
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "0.25");
    assert_eq!(serve_audit_rate(), Some(0.25));
    // "0" means "never audit" — a value, not an off switch.
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "0");
    assert_eq!(serve_audit_rate(), Some(0.0));
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "");
    assert_eq!(serve_audit_rate(), None);
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "often");
    assert_eq!(serve_audit_rate(), None);
    // "1e400" overflows f64 to infinity: the accessor passes it through
    // (documented f64 rules) and the sampler clamps it to 1.0 — the
    // knob can demand at most "audit everything", never a panic.
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "1e400");
    let rate = serve_audit_rate().expect("inf is a parseable f64");
    assert!(rate.is_infinite());
    assert_eq!(AuditSampler::new(1, rate).rate(), 1.0);
    // NaN likewise parses; the sampler reads it as "never audit".
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "NaN");
    let rate = serve_audit_rate().expect("NaN is a parseable f64");
    assert!(rate.is_nan());
    assert_eq!(AuditSampler::new(1, rate).rate(), 0.0);
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "-0.5");
    assert_eq!(
        AuditSampler::new(1, serve_audit_rate().unwrap()).rate(),
        0.0
    );
}

#[test]
fn scenario_resolution_returns_typed_errors_never_panics() {
    let g = EnvGuard::capture(&["NEUROCUBE_SERVE_SCENARIO"]);
    assert_eq!(serve_scenario(), None);
    assert_eq!(Scenario::from_env(), Ok(None), "unset: the default applies");
    g.set("NEUROCUBE_SERVE_SCENARIO", "");
    assert_eq!(Scenario::from_env(), Ok(None), "empty: the default applies");
    g.set("NEUROCUBE_SERVE_SCENARIO", "diurnal");
    let s = Scenario::from_env()
        .expect("valid name resolves")
        .expect("to a preset");
    assert_eq!(s.name, "diurnal");
    assert_eq!(s.profile, LoadProfile::Diurnal);
    g.set("NEUROCUBE_SERVE_SCENARIO", "weekend");
    let err = Scenario::from_env().expect_err("unknown name is a typed error");
    assert_eq!(err.0, "weekend");
    assert_eq!(
        err.to_string(),
        "unknown serving scenario \"weekend\" (valid: steady, diurnal, rush)"
    );
    // Scenario names are exact spellings, not fuzzy matches.
    g.set("NEUROCUBE_SERVE_SCENARIO", "Diurnal");
    assert!(Scenario::from_env().is_err());
}

#[test]
fn serve_load_is_a_string_knob_validated_downstream() {
    let g = EnvGuard::capture(&["NEUROCUBE_SERVE_LOAD"]);
    assert_eq!(serve_load(), None);
    g.set("NEUROCUBE_SERVE_LOAD", "bursty");
    assert_eq!(serve_load().as_deref(), Some("bursty"));
    assert_eq!(LoadProfile::parse("bursty"), Some(LoadProfile::Bursty));
    // The accessor does not validate: unknown profiles pass through and
    // the serving layer rejects them at configuration time.
    g.set("NEUROCUBE_SERVE_LOAD", "hurricane");
    assert_eq!(serve_load().as_deref(), Some("hurricane"));
    assert_eq!(LoadProfile::parse("hurricane"), None);
    g.set("NEUROCUBE_SERVE_LOAD", "");
    assert_eq!(serve_load(), None);
}

#[test]
fn serve_config_from_env_overrides_defaults() {
    let g = EnvGuard::capture(&[
        "NEUROCUBE_SERVE_POOL",
        "NEUROCUBE_SERVE_MAX_BATCH",
        "NEUROCUBE_SERVE_MAX_DELAY",
    ]);
    assert_eq!(
        ServeConfig::from_env(4),
        ServeConfig::new(4),
        "clean environment: pure defaults"
    );
    g.set("NEUROCUBE_SERVE_POOL", "6");
    g.set("NEUROCUBE_SERVE_MAX_BATCH", "16");
    g.set("NEUROCUBE_SERVE_MAX_DELAY", "999");
    let cfg = ServeConfig::from_env(4);
    assert_eq!(cfg.pool, 6);
    assert_eq!(cfg.max_batch, 16);
    assert_eq!(cfg.max_delay, 999);
    // Unparseable overrides fall back to the defaults, never panic.
    g.set("NEUROCUBE_SERVE_POOL", "six");
    g.set("NEUROCUBE_SERVE_MAX_BATCH", OVERFLOW);
    g.set("NEUROCUBE_SERVE_MAX_DELAY", "");
    assert_eq!(ServeConfig::from_env(4), ServeConfig::new(4));
}

#[test]
fn twospeed_config_from_env_overrides_defaults() {
    let g = EnvGuard::capture(&["NEUROCUBE_SERVE_SEED", "NEUROCUBE_SERVE_AUDIT_RATE"]);
    let cfg = TwoSpeedConfig::from_env(7, 0.02);
    assert_eq!(cfg.audit_seed, 7);
    assert_eq!(cfg.audit_rate, 0.02);
    assert_eq!(cfg.defect_cycles, 0, "no environment knob injects defects");
    g.set("NEUROCUBE_SERVE_SEED", "99");
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "0.5");
    let cfg = TwoSpeedConfig::from_env(7, 0.02);
    assert_eq!(cfg.audit_seed, 99);
    assert_eq!(cfg.audit_rate, 0.5);
    // Garbage falls back to the given defaults.
    g.set("NEUROCUBE_SERVE_SEED", OVERFLOW);
    g.set("NEUROCUBE_SERVE_AUDIT_RATE", "half");
    let cfg = TwoSpeedConfig::from_env(7, 0.02);
    assert_eq!((cfg.audit_seed, cfg.audit_rate), (7, 0.02));
}

#[test]
fn construction_flag_defaults_follow_env_flag_rules() {
    let g = EnvGuard::capture(&[
        "NEUROCUBE_NO_SIMD",
        "NEUROCUBE_STAGE_PAR",
        "NEUROCUBE_NO_SPARSITY",
    ]);
    // Clean slate: SoA and sparsity on, stage-par off.
    assert!(simd_default());
    assert!(!stage_par_default());
    assert!(sparsity_default());
    for (name, read, on_value) in [
        ("NEUROCUBE_NO_SIMD", simd_default as fn() -> bool, false),
        ("NEUROCUBE_STAGE_PAR", stage_par_default, true),
        ("NEUROCUBE_NO_SPARSITY", sparsity_default, false),
    ] {
        g.set(name, "1");
        assert_eq!(read(), on_value, "{name}=1 flips the default");
        // Flag rules: "0" and empty read as unset, anything else is on.
        g.set(name, "0");
        assert_eq!(read(), !on_value, "{name}=0 reads as unset");
        g.set(name, "");
        assert_eq!(read(), !on_value, "{name}= (empty) reads as unset");
        g.set(name, "yes");
        assert_eq!(read(), on_value, "{name}=yes reads as set");
        g.unset(name);
        assert_eq!(read(), !on_value, "{name} unset restores the default");
    }
}

/// The PR 9 stale-cache regression: the construction knobs used to be
/// resolved once per process through `OnceLock`, so a cube built after
/// the environment changed (or after an `EnvGuard` restore) silently kept
/// the first-ever value. Resolution is now per construction — each
/// `Neurocube::new` and each `set_*(None)` re-reads the environment
/// fresh — with explicit `set_*(Some(..))` overrides authoritative.
#[test]
fn construction_knobs_resolve_fresh_per_cube_never_cached() {
    let g = EnvGuard::capture(&[
        "NEUROCUBE_NO_SIMD",
        "NEUROCUBE_STAGE_PAR",
        "NEUROCUBE_NO_SPARSITY",
    ]);
    let cfg = SystemConfig::paper(true);
    // Prime any would-be cache with the clean-slate defaults.
    let first = Neurocube::new(cfg.clone());
    assert!(first.simd() && !first.stage_par() && first.sparsity());

    g.set("NEUROCUBE_NO_SIMD", "1");
    g.set("NEUROCUBE_STAGE_PAR", "1");
    g.set("NEUROCUBE_NO_SPARSITY", "1");
    // Cubes built before the change keep their resolved values...
    assert!(first.simd() && !first.stage_par() && first.sparsity());
    // ...and a cube built after it sees the new values, not a cache.
    let mut second = Neurocube::new(cfg.clone());
    assert!(!second.simd() && second.stage_par() && !second.sparsity());

    // Explicit overrides are authoritative regardless of the environment.
    second.set_simd(Some(true));
    second.set_stage_par(Some(false));
    second.set_sparsity(Some(true));
    assert!(second.simd() && !second.stage_par() && second.sparsity());

    // set_*(None) re-reads the environment fresh — it does not restore a
    // construction-time snapshot.
    g.unset("NEUROCUBE_NO_SIMD");
    g.unset("NEUROCUBE_STAGE_PAR");
    g.unset("NEUROCUBE_NO_SPARSITY");
    let mut third = Neurocube::new(cfg);
    third.set_simd(Some(false));
    third.set_stage_par(Some(true));
    third.set_sparsity(Some(false));
    g.set("NEUROCUBE_NO_SIMD", "1");
    g.set("NEUROCUBE_STAGE_PAR", "1");
    g.set("NEUROCUBE_NO_SPARSITY", "1");
    third.set_simd(None);
    third.set_stage_par(None);
    third.set_sparsity(None);
    assert!(
        !third.simd() && third.stage_par() && !third.sparsity(),
        "set_*(None) must re-read the live environment"
    );
}

#[test]
fn guard_restores_the_invoking_shells_values() {
    let outer = EnvGuard::capture(&["NEUROCUBE_SERVE_SEED"]);
    outer.set("NEUROCUBE_SERVE_SEED", "123");
    {
        // A nested snapshot (under the same lock — the mutex is not
        // reentrant) sees the outer value, clears it, and restores it
        // on drop.
        let inner = common::EnvSnapshot::capture(&["NEUROCUBE_SERVE_SEED"]);
        assert_eq!(serve_seed(), None, "capture clears tracked names");
        inner.set("NEUROCUBE_SERVE_SEED", "456");
        assert_eq!(serve_seed(), Some(456));
    }
    assert_eq!(serve_seed(), Some(123), "drop restores the outer value");
}
