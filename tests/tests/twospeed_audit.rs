//! Property suite for the two-speed serving executor: the audited
//! subset is a pure function of `(audit seed, rate, dispatch index)` —
//! bitwise identical across serial/threaded execution and reruns — the
//! rate-1.0 limit degenerates to the full-replay executor record for
//! record, and an injected ±1-cycle defect in the analytical service
//! time is always caught by the next audited dispatch, with proptest
//! shrinking converging to the minimal trace prefix that still contains
//! an audit.
//!
//! The catalog and schedule are profiled once per binary (`OnceLock`):
//! every property runs against the same certified setup, so case count
//! scales audit replays, not profiling runs.

mod common;

use neurocube::SystemConfig;
use neurocube_fixed::Activation;
use neurocube_nn::{workloads, LayerSpec, NetworkSpec, Shape};
use neurocube_serve::{
    execute, execute_two_speed, generate, serve_mode, AuditSampler, AuditViolation, DispatchRecord,
    ExecMode, LoadProfile, ModelCatalog, Request, ServeConfig, TrafficSpec, TwoSpeedConfig,
};
use proptest::prelude::*;
use proptest::test_runner::{ProptestConfig, TestCaseError, TestRunner};
use std::sync::OnceLock;

struct Setup {
    cat: ModelCatalog,
    trace: Vec<Request>,
    records: Vec<DispatchRecord>,
}

/// Two small real models (one conv stack, one tiny MLP) over a dense
/// mixed trace: enough records for sampling to bite, small enough that
/// a full cycle-accurate replay stays in test-friendly time.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        cat.register("conv", workloads::tiny_convnet(), 11);
        let mlp = NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![
                LayerSpec::fc(6, Activation::ReLU),
                LayerSpec::fc(3, Activation::Identity),
            ],
        )
        .expect("valid tiny MLP");
        cat.register("mlp", mlp, 12);
        let spec = TrafficSpec {
            profile: LoadProfile::Bursty,
            ..TrafficSpec::poisson(
                21,
                600.0,
                28,
                vec![("conv".to_string(), 1), ("mlp".to_string(), 2)],
            )
        };
        let trace = generate(&cat, &spec);
        let cfg = ServeConfig {
            pool: 2,
            max_batch: 4,
            max_delay: 2000,
            queue_cap: 32,
        };
        let report = serve_mode(&cat, &cfg, &trace, None);
        assert!(
            report.records.len() >= 8,
            "the shared schedule must carry enough dispatches to sample"
        );
        Setup {
            cat,
            trace,
            records: report.records,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sampler is stateless: membership of dispatch `d` depends
    /// only on `(seed, rate, d)` — never on the horizon asked about,
    /// the order of queries, or any other dispatch.
    #[test]
    fn audited_set_is_pure_in_seed_rate_and_dispatch(
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
        n in 1u64..2048,
    ) {
        let s = AuditSampler::new(seed, rate);
        let selected = s.select(n);
        // Rerun: bitwise identical.
        prop_assert_eq!(&selected, &AuditSampler::new(seed, rate).select(n));
        // Horizon-independent membership: a shorter horizon is exactly
        // the prefix, a longer one exactly an extension.
        let half: Vec<u64> = selected.iter().copied().filter(|&d| d < n / 2).collect();
        prop_assert_eq!(&half, &s.select(n / 2));
        let longer = s.select(n + 64);
        prop_assert_eq!(&longer[..selected.len()], &selected[..]);
        // Membership agrees with the set, query by query.
        for d in 0..n.min(64) {
            prop_assert_eq!(s.audited(d), selected.contains(&d));
        }
    }

    /// An injected defect in the analytical service time — down to a
    /// single cycle either way — is caught by the first audited
    /// dispatch, as a `ServiceCycleMismatch` naming exactly it.
    #[test]
    fn any_nonzero_defect_is_caught_by_the_next_audit(
        defect in prop_oneof![-4i64..0, 1i64..5],
        audit_seed in any::<u64>(),
        rate in 0.3f64..1.0,
    ) {
        let s = setup();
        let mut cfg = TwoSpeedConfig::new(audit_seed, rate);
        cfg.defect_cycles = defect;
        let audited = cfg.sampler().select(s.records.len() as u64);
        // Rare rate/seed corners may audit nothing over this schedule;
        // the property is about what the next audit catches, so such
        // cases are vacuous.
        if let Some(&first) = audited.first() {
            // Replay only through the first audited dispatch: the
            // property is about the *next* audit catching the defect,
            // and slicing keeps each case cheap (membership is
            // per-dispatch, so the audited prefix is unchanged).
            let prefix = &s.records[..=usize::try_from(first).unwrap()];
            let r = execute_two_speed(&s.cat, &s.trace, prefix, &cfg, ExecMode::Serial);
            prop_assert_eq!(&r.audited, &[first]);
            let caught = r.violations.iter().any(|v| matches!(
                v,
                AuditViolation::ServiceCycleMismatch { dispatch, analytical, measured, .. }
                    if *dispatch == first
                        && *analytical as i64 - *measured as i64 == defect
            ));
            prop_assert!(caught, "defect {} must be flagged: {:?}", defect, r.violations);
        }
    }
}

/// Serial execution, threaded execution and a rerun produce the same
/// audited set, the same per-audit measurements and the same
/// `serve.twospeed.*` registry, bit for bit.
#[test]
fn audits_are_bitwise_identical_across_modes_and_reruns() {
    let s = setup();
    let cfg = TwoSpeedConfig::new(17, 0.4);
    let serial = execute_two_speed(&s.cat, &s.trace, &s.records, &cfg, ExecMode::Serial);
    let threaded = execute_two_speed(&s.cat, &s.trace, &s.records, &cfg, ExecMode::Batched);
    let rerun = execute_two_speed(&s.cat, &s.trace, &s.records, &cfg, ExecMode::Batched);
    assert_eq!(serial.audited, cfg.sampler().select(s.records.len() as u64));
    assert!(
        !serial.audited.is_empty() && serial.audited.len() < s.records.len(),
        "a real sample: some dispatches audited, some not"
    );
    for other in [&threaded, &rerun] {
        assert_eq!(serial.audited, other.audited);
        assert_eq!(serial.audits, other.audits);
        assert_eq!(serial.violations, other.violations);
        assert_eq!(serial.stats.first_difference(&other.stats), None);
    }
    assert!(serial.violations.is_empty(), "{:?}", serial.violations);
    // Healthy audits measure exactly the memoized profile on the first
    // inference, and the envelope stats cover every audited inference.
    for a in &serial.audits {
        assert_eq!(a.measured_first_cycles, a.analytical_cycles);
    }
    let audited_requests = serial.stats.counter("serve.twospeed.audit.requests");
    let slack = serial
        .stats
        .histogram("serve.twospeed.audit.slack_upper_cycles")
        .expect("audited runs export envelope slack");
    assert_eq!(slack.count(), audited_requests);
    assert!(
        slack.min().expect("non-empty") > 0,
        "strictly inside the envelope"
    );
}

/// At `audit_rate = 1.0` the audit path *is* the full-replay executor:
/// same dispatch coverage, same request count, same output checksum —
/// record for record.
#[test]
fn rate_one_degenerates_to_the_full_replay_executor() {
    let s = setup();
    let full = execute(&s.cat, &s.trace, &s.records, ExecMode::Serial);
    let two = execute_two_speed(
        &s.cat,
        &s.trace,
        &s.records,
        &TwoSpeedConfig::new(123, 1.0),
        ExecMode::Serial,
    );
    assert_eq!(two.audited.len(), s.records.len(), "every dispatch audited");
    assert!(two.violations.is_empty(), "{:?}", two.violations);
    assert_eq!(
        two.stats.counter("serve.twospeed.audit.dispatches"),
        full.counter("serve.exec.batches")
    );
    assert_eq!(
        two.stats.counter("serve.twospeed.audit.requests"),
        full.counter("serve.exec.requests")
    );
    assert_eq!(
        two.stats.counter("serve.twospeed.audit.output_checksum"),
        full.counter("serve.exec.output_checksum"),
        "the audit replay folds the executor's checksum, value for value"
    );
    // Record for record: audit i is dispatch i, on the scheduled cube,
    // with the scheduled batch.
    for (i, (a, rec)) in two.audits.iter().zip(&s.records).enumerate() {
        assert_eq!(a.dispatch, i as u64);
        assert_eq!(a.cube, rec.cube);
        assert_eq!(a.model, rec.model);
        assert_eq!(a.requests, rec.requests.len() as u64);
    }
}

/// The defect-shrinking meta-test: run the "no violations" property
/// over trace prefixes with a +1-cycle defect injected, via
/// `run_collect` (no panic, no regression-file pollution), and check
/// proptest shrinks the counterexample to the minimal prefix — exactly
/// one dispatch past the first audited one.
#[test]
fn defect_counterexamples_shrink_to_the_minimal_trace() {
    let s = setup();
    let n = s.records.len() as u64;
    // An audit seed whose first audited dispatch is early but not
    // dispatch 0: shrinking has real work to do (prefixes 1..=first
    // pass), yet most drawn prefixes fail, so the deterministic runner
    // is guaranteed to find a counterexample.
    let (audit_seed, first) = (0u64..)
        .find_map(|sd| {
            let sel = AuditSampler::new(sd, 0.5).select(n);
            sel.first()
                .copied()
                .filter(|&f| (1..=2).contains(&f))
                .map(|f| (sd, f))
        })
        .expect("some seed audits an early dispatch");
    let mut cfg = TwoSpeedConfig::new(audit_seed, 0.5);
    cfg.defect_cycles = 1;

    let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
    let failure = runner
        .run_collect(
            "twospeed_defect",
            &[],
            &(1usize..=s.records.len()),
            &|len| {
                let r =
                    execute_two_speed(&s.cat, &s.trace, &s.records[..len], &cfg, ExecMode::Serial);
                if let Some(v) = r.violations.first() {
                    return Err(TestCaseError::fail(format!(
                        "prefix of {len} dispatches flags the defect: {v}"
                    )));
                }
                Ok(())
            },
        )
        .expect("a +1-cycle defect must be caught at some prefix");

    assert_eq!(
        failure.value,
        usize::try_from(first).unwrap() + 1,
        "shrinking must converge to the shortest prefix containing an audit"
    );
    assert!(failure.message.contains("flags the defect"));
}
