//! Property-based tests of the NoC and DRAM substrates under randomized
//! traffic — exactly-once delivery, per-flow ordering, bandwidth
//! conservation and scheduling fairness.

use neurocube_dram::{Channel, ChannelConfig, Request, RequestKind, Storage};
use neurocube_noc::{Network, Packet, PacketKind, Topology};
use proptest::prelude::*;
use std::collections::HashMap;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::mesh4x4()),
        Just(Topology::Mesh {
            width: 2,
            height: 2
        }),
        Just(Topology::Mesh {
            width: 5,
            height: 3
        }),
        Just(Topology::FullyConnected { nodes: 16 }),
        Just(Topology::FullyConnected { nodes: 6 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every injected packet is delivered exactly once, to the right node,
    /// and packets of the same (src, dst) flow arrive in injection order.
    #[test]
    fn noc_delivers_exactly_once_in_flow_order(
        topo in topo_strategy(),
        sends in proptest::collection::vec((0u8..16, 0u8..16), 1..300),
    ) {
        let nodes = topo.nodes();
        let sends: Vec<(u8, u8)> = sends
            .into_iter()
            .map(|(s, d)| (s % nodes, d % nodes))
            .collect();
        let mut net = Network::new(topo);
        let mut seq_per_flow: HashMap<(u8, u8), u16> = HashMap::new();
        let mut pending = sends.clone();
        pending.reverse();
        let mut received: Vec<(u8, Packet)> = Vec::new();
        let mut now = 0u64;
        while received.len() < sends.len() {
            if let Some(&(src, dst)) = pending.last() {
                let seq = seq_per_flow.entry((src, dst)).or_insert(0);
                let pkt = Packet {
                    dst,
                    src,
                    mac_id: 0,
                    op_id: 0,
                    kind: PacketKind::State,
                    data: *seq,
                };
                if net.try_inject_from_mem(src, pkt, now) {
                    *seq += 1;
                    pending.pop();
                }
            }
            net.tick(now);
            for node in 0..nodes {
                if let Some(p) = net.pop_for_pe(node, now) {
                    received.push((node, p));
                }
            }
            now += 1;
            prop_assert!(now < 200_000, "undelivered traffic");
        }
        prop_assert!(net.is_idle());
        prop_assert_eq!(net.stats().in_flight(), 0);
        // Exactly once, right node, flow order.
        let mut next_expected: HashMap<(u8, u8), u16> = HashMap::new();
        for (node, p) in &received {
            prop_assert_eq!(*node, p.dst, "misrouted packet");
            let e = next_expected.entry((p.src, p.dst)).or_insert(0);
            prop_assert_eq!(p.data, *e, "flow {}->{} reordered", p.src, p.dst);
            *e += 1;
        }
        let total: u16 = next_expected.values().copied().sum();
        prop_assert_eq!(usize::from(total), sends.len());
    }

    /// A channel serves every request exactly once (tags preserved) and
    /// reads return exactly what resides in storage, under random mixes of
    /// reads and writes to random rows.
    #[test]
    fn dram_channel_serves_every_request(
        ops in proptest::collection::vec((0u64..64, any::<bool>(), any::<u32>()), 1..80),
    ) {
        let mut cfg = ChannelConfig::hmc_int();
        cfg.queue_capacity = 256;
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        let mut image: HashMap<u64, u32> = HashMap::new();
        // Submit all requests up front (random rows to stress activation).
        for (i, &(slot, is_write, val)) in ops.iter().enumerate() {
            let addr = slot * 4096 + (i as u64 % 8) * 4;
            let kind = if is_write {
                // Track the last write per address for the final check.
                image.insert(addr, val);
                RequestKind::Write(u64::from(val))
            } else {
                RequestKind::Read
            };
            let req = Request { addr, tag: i as u64, kind };
            prop_assert!(ch.try_enqueue(req));
        }
        let mut served = vec![false; ops.len()];
        let mut now = 0u64;
        let mut done = 0;
        while done < ops.len() {
            if let Some(c) = ch.tick(now, &mut storage) {
                let i = c.tag as usize;
                prop_assert!(!served[i], "request served twice");
                served[i] = true;
                done += 1;
            }
            now += 1;
            prop_assert!(now < 2_000_000, "channel starved a request");
        }
        // Final storage image equals the last writes.
        for (addr, val) in image {
            prop_assert_eq!(storage.read_u32(addr), val);
        }
    }

    /// Sequential streaming sustains the configured duty cycle: N words in
    /// at most ~(cycles_per_word_avg × N) + activation + slack cycles.
    #[test]
    fn dram_streaming_meets_duty_cycle(n in 64usize..512) {
        let cfg = ChannelConfig::hmc_int();
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        let mut issued = 0u64;
        let mut done = 0usize;
        let mut now = 0u64;
        let mut last = 0u64;
        while done < n {
            while issued < n as u64
                && ch.try_enqueue(Request {
                    addr: issued * 4,
                    tag: issued,
                    kind: RequestKind::Read,
                })
            {
                issued += 1;
            }
            if let Some(c) = ch.tick(now, &mut storage) {
                done += 1;
                last = c.cycle;
            }
            now += 1;
            prop_assert!(now < 1_000_000);
        }
        // 8 words per 10 cycles sustained + one activation + pipeline slack.
        let budget = (n as u64 * 10).div_ceil(8) + 138 + 64;
        prop_assert!(last <= budget, "{n} words took {last} > {budget}");
    }
}

/// The rotating arbiter shares one output port fairly among all competing
/// inputs (deterministic test; the proptest above covers correctness).
#[test]
fn noc_arbitration_shares_between_three_flows() {
    let mut net = Network::new(Topology::mesh4x4());
    // Flows into node 5 from west (4), east (6) and north (1).
    let sources = [4u8, 6, 1];
    let mut counts = [0u32; 3];
    for now in 0..2000u64 {
        for &s in &sources {
            let _ = net.try_inject_from_mem(
                s,
                Packet {
                    dst: 5,
                    src: s,
                    mac_id: 0,
                    op_id: 0,
                    kind: PacketKind::State,
                    data: 0,
                },
                now,
            );
        }
        net.tick(now);
        if let Some(p) = net.pop_for_pe(5, now) {
            let i = sources.iter().position(|&s| s == p.src).unwrap();
            counts[i] += 1;
        }
    }
    let total: u32 = counts.iter().sum();
    assert!(total > 1800, "port underutilized: {total}");
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) > total as f64 / 3.0 * 0.7,
            "flow {i} starved: {counts:?}"
        );
    }
}
