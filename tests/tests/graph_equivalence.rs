//! Equivalence properties for the graph compiler: a compiled DAG run
//! pipelined on-cube (programmed once, phases sequenced without host
//! round-trips) must be **bitwise** interchangeable with every other way
//! of running the same graph.
//!
//! For random small layer DAGs (residual adds, concats, linear embeds —
//! the `graph_case` generator, so counterexamples shrink):
//!
//! 1. Pipelined output == per-layer replay output, and both attribute the
//!    same node labels and MAC counts per phase.
//! 2. The linear embedding of a plain `NetworkSpec` produces the same
//!    values as the linear runner (`run_inference`).
//! 3. Event-horizon fast-forwarding is observationally invisible for
//!    multi-layer programs: skip vs naive agree on every observable.
//! 4. Graph runs on `BatchRunner` threads are bitwise identical to
//!    serial runs.

mod common;

use common::{graph_case, GraphCase};
use neurocube::SystemConfig;
use neurocube_bench::{run_graph_mode, GraphRunOutput};
use neurocube_sim::BatchRunner;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Case budget: `PROPTEST_CASES` when set (`ci.sh` pins 32 for the
/// standard gate, 512 for `--compile`), otherwise `default`.
fn cases(default: u32) -> u32 {
    neurocube_sim::env_u64("PROPTEST_CASES").map_or(default, |v| v as u32)
}

fn run(case: &GraphCase, skip: bool, pipelined: bool) -> GraphRunOutput {
    run_graph_mode(
        SystemConfig::paper(case.dup),
        &case.graph,
        case.seed,
        Some(skip),
        pipelined,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// Property 1: compiled-pipelined execution is value-exact against
    /// the per-layer replay baseline, phase by phase.
    #[test]
    fn pipelined_matches_replay_bitwise(case in graph_case()) {
        let piped = run(&case, true, true);
        let replay = run(&case, true, false);
        prop_assert_eq!(
            piped.output.as_slice(), replay.output.as_slice(),
            "pipelined and replay outputs diverge (dup={}, seed={})",
            case.dup, case.seed
        );
        prop_assert_eq!(piped.report.layers.len(), replay.report.layers.len());
        for (p, r) in piped.report.layers.iter().zip(&replay.report.layers) {
            prop_assert_eq!(p.layer_index, r.layer_index, "phase order diverges");
            prop_assert_eq!(p.kind, r.kind);
            prop_assert_eq!(p.macs, r.macs, "node {} MAC counts diverge", p.layer_index);
        }
    }

    /// Property 2: the linear embedding is interchangeable with the
    /// linear runner — same values from `GraphSpec::linear(net)` as from
    /// `run_inference(net)`.
    #[test]
    fn linear_embedding_matches_linear_runner(case in common::diff_case()) {
        let cfg = SystemConfig::paper(case.dup);
        let graph = case.net.to_graph();
        let piped = run_graph_mode(cfg.clone(), &graph, case.seed, Some(true), true);
        let params = case.net.init_params(case.seed, 0.25);
        let mut cube = neurocube::Neurocube::new(cfg);
        cube.set_cycle_skip(Some(true));
        let loaded = cube.load(case.net.clone(), params);
        let input = neurocube_bench::ramp_input(&case.net);
        let (output, report) = cube.run_inference(&loaded, &input);
        prop_assert_eq!(
            piped.output.as_slice(), output.as_slice(),
            "graph embedding diverges from the linear runner (dup={}, seed={})",
            case.dup, case.seed
        );
        prop_assert_eq!(piped.report.layers.len(), report.layers.len());
    }

    /// Property 3: event-horizon fast-forwarding stays observationally
    /// invisible for multi-layer programs — per-phase cycles, final
    /// cycle counter, output and the entire statistics registry.
    #[test]
    fn graph_fast_forward_is_observationally_invisible(case in graph_case()) {
        let fast = run(&case, true, true);
        let naive = run(&case, false, true);
        prop_assert_eq!(
            naive.telemetry.skipped_cycles, 0,
            "the naive oracle must not fast-forward"
        );
        let fast_cycles: Vec<u64> = fast.report.layers.iter().map(|l| l.cycles).collect();
        let naive_cycles: Vec<u64> = naive.report.layers.iter().map(|l| l.cycles).collect();
        prop_assert_eq!(
            &fast_cycles, &naive_cycles,
            "per-phase cycle counts diverge (dup={}, seed={})", case.dup, case.seed
        );
        prop_assert_eq!(fast.output.as_slice(), naive.output.as_slice(), "outputs diverge");
        if let Some(delta) = fast.stats.first_difference(&naive.stats) {
            return Err(TestCaseError::fail(format!(
                "statistics diverge at {delta} (skip run jumped {} times over {} cycles; \
                 dup={}, seed={})",
                fast.telemetry.horizon_jumps, fast.telemetry.skipped_cycles,
                case.dup, case.seed
            )));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(4)))]

    /// Property 4: graph runs are batch/serial deterministic — the same
    /// case on `BatchRunner` threads is bitwise identical to a serial
    /// run, per slot, mixing pipelined and replay slots.
    #[test]
    fn graph_runs_are_batch_serial_deterministic(case in graph_case()) {
        let batch = BatchRunner::new().run(3, |i| run(&case, true, i % 2 == 0).stats);
        for (i, stats) in batch.iter().enumerate() {
            let serial = run(&case, true, i % 2 == 0).stats;
            if let Some(delta) = stats.first_difference(&serial) {
                return Err(TestCaseError::fail(format!(
                    "batch slot {i} diverges from serial at {delta} (dup={}, seed={})",
                    case.dup, case.seed
                )));
            }
        }
    }
}

/// Deterministic anchor: on the residual toy graph the fast mode
/// actually fast-forwards across phase boundaries (a sequencer that
/// blocked jumps entirely would pass the skip property vacuously) and
/// still matches the naive oracle bitwise.
#[test]
fn fast_forward_engages_on_residual_toy() {
    let case = GraphCase {
        graph: neurocube_nn::workloads::residual_toy(),
        dup: true,
        seed: 7,
    };
    let fast = run(&case, true, true);
    let naive = run(&case, false, true);
    assert!(
        fast.telemetry.horizon_jumps > 0 && fast.telemetry.skipped_cycles > 0,
        "fast mode never jumped on the residual toy graph"
    );
    assert_eq!(fast.output.as_slice(), naive.output.as_slice());
    assert_eq!(
        fast.stats.first_difference(&naive.stats),
        None,
        "statistics diverge"
    );
}

/// Deterministic anchor: with the paper's host programming model
/// attached, pipelining pays the programming charge once, so the
/// pipelined run is strictly cheaper than the per-layer replay on every
/// multi-phase toy graph.
#[test]
fn pipelining_beats_replay_on_toy_graphs() {
    for (name, graph) in [
        ("residual_toy", neurocube_nn::workloads::residual_toy()),
        ("concat_toy", neurocube_nn::workloads::concat_toy()),
    ] {
        let mut cfg = SystemConfig::paper(true);
        cfg.programming = Some(neurocube::ProgrammingModel::typical());
        let piped = run_graph_mode(cfg.clone(), &graph, 7, Some(true), true)
            .report
            .total_cycles();
        let replay = run_graph_mode(cfg, &graph, 7, Some(true), false)
            .report
            .total_cycles();
        assert!(
            piped < replay,
            "{name}: pipelined ({piped} cycles) must beat replay ({replay} cycles)"
        );
    }
}
