//! Differential properties for the struct-of-arrays datapath: the batch
//! lane kernels (`NEUROCUBE_NO_SIMD=0`, the default) and the stage-parallel
//! PE tick (`NEUROCUBE_STAGE_PAR=1`, off by default) must be
//! *observationally invisible* — for random multi-layer networks the full
//! statistics registry, output tensor and cycle counts are compared
//! bitwise against the per-lane scalar oracle, with and without fault
//! injection.
//!
//! The modes are selected through [`Neurocube::set_simd`] and
//! [`Neurocube::set_stage_par`], not the environment variables: the env
//! defaults are read once per process and tests run multithreaded, so
//! mutating them mid-run would race other suites.
//!
//! The kernel-level half of the contract rides in the same binary: the
//! lane kernels are driven against [`MacUnit`] step-for-step across the
//! saturation and rounding boundaries pinned by `q88_boundary.rs`
//! (representable midpoints, `>> 8` truncation direction, both clamp
//! edges), and the `..active` lane masking the PE relies on is checked to
//! leave parked lanes untouched.

mod common;

use common::{diff_case, DiffCase};
use neurocube::{Neurocube, SystemConfig};
use neurocube_fault::FaultConfig;
use neurocube_fixed::{
    accumulate_narrow_lanes, accumulate_narrow_masked, accumulate_wide_lanes,
    accumulate_wide_masked, wide_result_bits, AccumulatorWidth, LaneSrc, MacUnit, Q88,
};
use neurocube_sim::StatsRegistry;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One observable world: everything two datapath variants must agree on.
struct Observables {
    layer_cycles: Vec<u64>,
    final_cycle: u64,
    output: Vec<Q88>,
    stats: StatsRegistry,
}

/// Runs `case` with the given datapath selection. `simd = false` is the
/// per-lane scalar oracle; `stage_par = true` ticks the PEs from scoped
/// threads. Skipping stays on process default — the skip/naive axis has
/// its own suite (`skip_equivalence.rs`).
fn run_variant(
    case: &DiffCase,
    simd: bool,
    stage_par: bool,
    fault: Option<FaultConfig>,
) -> Observables {
    let cfg = SystemConfig::paper(case.dup);
    let params = case.net.init_params(case.seed, 0.25);
    let mut cube = Neurocube::new(cfg);
    cube.set_simd(Some(simd));
    cube.set_stage_par(Some(stage_par));
    cube.set_fault_config(fault);
    let loaded = cube.load(case.net.clone(), params);
    let input = neurocube_bench::ramp_input(&case.net);
    let (output, report) = cube.run_inference(&loaded, &input);
    Observables {
        layer_cycles: report.layers.iter().map(|l| l.cycles).collect(),
        final_cycle: cube.now(),
        output: output.as_slice().to_vec(),
        stats: cube.stats_registry(),
    }
}

/// Asserts two variant runs agree on every observable, naming the first
/// diverging statistic on failure.
fn assert_identical(a: &Observables, b: &Observables, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &a.layer_cycles,
        &b.layer_cycles,
        "per-layer cycle counts diverge ({})",
        what
    );
    prop_assert_eq!(
        a.final_cycle,
        b.final_cycle,
        "final cycle counters diverge ({})",
        what
    );
    prop_assert_eq!(&a.output, &b.output, "output tensors diverge ({})", what);
    if let Some(delta) = a.stats.first_difference(&b.stats) {
        return Err(TestCaseError::fail(format!(
            "statistics diverge at {delta} ({what})"
        )));
    }
    Ok(())
}

/// Case budget: `PROPTEST_CASES` when set (`ci.sh` pins 32 for the
/// standard gate, 512 for `--simd`), otherwise `default`.
fn cases(default: u32) -> u32 {
    neurocube_sim::env_u64("PROPTEST_CASES").map_or(default, |v| v as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// The SoA batch kernels are bitwise identical to the scalar MacUnit
    /// oracle over whole inferences: same registry, same tensor, same
    /// cycle counts, for random networks.
    #[test]
    fn soa_path_matches_scalar_oracle(case in diff_case()) {
        let soa = run_variant(&case, true, false, None);
        let scalar = run_variant(&case, false, false, None);
        assert_identical(&soa, &scalar, &format!(
            "SoA vs scalar, dup={}, seed={}", case.dup, case.seed
        ))?;
    }

    /// Stage-parallel PE ticking is bitwise identical to the serial loop —
    /// the PEs really are independent within a tick. Runs on the SoA path
    /// (the default the parallel mode would ship with).
    #[test]
    fn stage_parallel_matches_serial(case in diff_case()) {
        let par = run_variant(&case, true, true, None);
        let serial = run_variant(&case, true, false, None);
        assert_identical(&par, &serial, &format!(
            "stage-par vs serial, dup={}, seed={}", case.dup, case.seed
        ))?;
    }

    /// The equivalences survive fault injection: with a deterministic
    /// injector attached at the same seed, all three variants (scalar,
    /// SoA, SoA + stage-par) still agree on every observable, including
    /// the fault counters inside the registry.
    #[test]
    fn variants_agree_under_faults(
        case in diff_case(),
        rate_exp in 4u32..7, // uniform rate 1e-6 .. 1e-3
        fault_seed in 0u64..1 << 32,
    ) {
        let cfg = FaultConfig::uniform(fault_seed, 10f64.powi(-(rate_exp as i32)));
        let scalar = run_variant(&case, false, false, Some(cfg.clone()));
        let soa = run_variant(&case, true, false, Some(cfg.clone()));
        let par = run_variant(&case, true, true, Some(cfg));
        assert_identical(&soa, &scalar, &format!(
            "SoA vs scalar under faults, dup={}, seeds={}/{}",
            case.dup, case.seed, fault_seed
        ))?;
        assert_identical(&par, &soa, &format!(
            "stage-par vs serial under faults, dup={}, seeds={}/{}",
            case.dup, case.seed, fault_seed
        ))?;
    }
}

// ---------------------------------------------------------------------------
// Sparsity fast paths: zero-operand skipping is observationally invisible.
// ---------------------------------------------------------------------------

/// Like [`run_variant`], but with the PE zero-operand fast paths pinned
/// and the operand stream seeded with real zeros: every third weight and
/// every other input pixel are zeroed, so the zero-lane classification
/// and skip paths genuinely fire on every case.
fn run_sparsity_variant(
    case: &DiffCase,
    simd: bool,
    sparsity: bool,
    fault: Option<FaultConfig>,
) -> Observables {
    let cfg = SystemConfig::paper(case.dup);
    let mut params = case.net.init_params(case.seed, 0.25);
    for layer in &mut params {
        for (i, w) in layer.iter_mut().enumerate() {
            if i % 3 == 0 {
                *w = Q88::ZERO;
            }
        }
    }
    let mut cube = Neurocube::new(cfg);
    cube.set_simd(Some(simd));
    cube.set_sparsity(Some(sparsity));
    cube.set_fault_config(fault);
    let loaded = cube.load(case.net.clone(), params);
    let s = case.net.input_shape();
    let data = (0..s.len())
        .map(|i| {
            if i % 2 == 0 {
                Q88::ZERO
            } else {
                Q88::from_f64(((i % 64) as f64 - 32.0) / 32.0)
            }
        })
        .collect();
    let input = neurocube_nn::Tensor::from_vec(s.channels, s.height, s.width, data);
    let (output, report) = cube.run_inference(&loaded, &input);
    Observables {
        layer_cycles: report.layers.iter().map(|l| l.cycles).collect(),
        final_cycle: cube.now(),
        output: output.as_slice().to_vec(),
        stats: cube.stats_registry(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Sparsity on vs off is bitwise identical in every observable —
    /// full registry included — on random nets whose operand streams are
    /// dense with real zeros, across both datapaths. Zero-skipping is a
    /// host fast path, not a model change (DESIGN.md §13).
    #[test]
    fn sparsity_fast_paths_are_bitwise_invisible(case in diff_case()) {
        let on = run_sparsity_variant(&case, true, true, None);
        let off = run_sparsity_variant(&case, true, false, None);
        let scalar = run_sparsity_variant(&case, false, true, None);
        assert_identical(&on, &off, &format!(
            "sparsity on vs off (SoA), dup={}, seed={}", case.dup, case.seed
        ))?;
        assert_identical(&on, &scalar, &format!(
            "sparsity SoA vs scalar, dup={}, seed={}", case.dup, case.seed
        ))?;
    }

    /// The invisibility survives fault injection: with a lens attached
    /// the fast paths stand down (per-lane upset order is part of the
    /// observable world), and classification still agrees bitwise.
    #[test]
    fn sparsity_fast_paths_survive_fault_injection(
        case in diff_case(),
        rate_exp in 4u32..7,
        fault_seed in 0u64..1 << 32,
    ) {
        let fcfg = FaultConfig::uniform(fault_seed, 10f64.powi(-(rate_exp as i32)));
        let on = run_sparsity_variant(&case, true, true, Some(fcfg.clone()));
        let off = run_sparsity_variant(&case, true, false, Some(fcfg.clone()));
        let scalar = run_sparsity_variant(&case, false, true, Some(fcfg));
        assert_identical(&on, &off, &format!(
            "sparsity on vs off under faults, dup={}, seeds={}/{}",
            case.dup, case.seed, fault_seed
        ))?;
        assert_identical(&on, &scalar, &format!(
            "sparsity SoA vs scalar under faults, dup={}, seeds={}/{}",
            case.dup, case.seed, fault_seed
        ))?;
    }
}

/// Deterministic anchor: the zeroed workload actually classifies gated
/// lanes (a sweep that never fires the skip paths would prove nothing),
/// and the classification is identical whether or not skipping is on.
#[test]
fn sparsity_classification_is_not_vacuous() {
    let case = DiffCase {
        net: neurocube_nn::workloads::mnist_mlp(64),
        dup: true,
        seed: 11,
    };
    let on = run_sparsity_variant(&case, true, true, None);
    let off = run_sparsity_variant(&case, true, false, None);
    let gated = on.stats.counter("sparsity.pe.lanes_gated");
    assert!(
        gated > 0,
        "zeroed weights/input fired no gated lanes; the sparsity suite is vacuous"
    );
    assert_eq!(
        off.stats.counter("sparsity.pe.lanes_gated"),
        gated,
        "classification differs between skip and dense modes"
    );
    let mac_ops: u64 = (0..16)
        .map(|i| on.stats.counter(&format!("pe{i}.mac_ops")))
        .sum();
    assert!(
        gated < mac_ops,
        "every MAC lane gated — the workload degenerated to all-zero"
    );
}

// ---------------------------------------------------------------------------
// Kernel-level boundary pinning: lane kernels vs MacUnit, step for step.
// ---------------------------------------------------------------------------

/// Raw `Q1.7.8` operands biased hard toward the boundaries the scalar
/// unit's clamps and shifts act on: both clamp edges, the values around
/// one LSB and one integer unit, and the representable midpoints pinned by
/// `q88_boundary.rs` (`k + 0.5` LSB inputs quantize to `k`/`k+1`, so raw
/// patterns adjacent to every `k` boundary appear here via `k ± 1`).
fn boundary_operand() -> impl Strategy<Value = i16> {
    const EDGES: [i16; 19] = [
        i16::MAX,
        i16::MIN,
        i16::MAX - 1,
        i16::MIN + 1,
        0,
        1,
        -1,
        127,
        -127,
        128,
        -128,
        129,
        -129,
        255,
        256,
        257,
        -255,
        -256,
        -257,
    ];
    // Three in four draws land on an edge value; the rest are raw i16s.
    (any::<i16>(), any::<u8>()).prop_map(|(raw, pick)| {
        if pick < 192 {
            EDGES[usize::from(pick) % EDGES.len()]
        } else {
            raw
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// `accumulate_wide_lanes` matches `MacUnit::accumulate` (Wide32) bit
    /// for bit after *every* step of a boundary-biased operand sequence —
    /// including deep in the i32 clamp and back out of it.
    #[test]
    fn wide_lanes_match_mac_unit_at_boundaries(
        pairs in proptest::collection::vec((boundary_operand(), boundary_operand()), 1..200)
    ) {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        let mut acc = [0i32; 1];
        for (step, &(w, x)) in pairs.iter().enumerate() {
            mac.accumulate(Q88::from_bits(w), Q88::from_bits(x));
            accumulate_wide_lanes(&mut acc, &[w], &[x]);
            prop_assert_eq!(
                mac.result().to_bits(), wide_result_bits(acc[0]),
                "wide lane diverged from MacUnit at step {} on ({}, {})", step, w, x
            );
        }
    }

    /// `accumulate_narrow_lanes` matches `MacUnit::accumulate` (Narrow16)
    /// bit for bit — the per-step renormalization (`>> 8` toward -inf,
    /// saturate) and the 16-bit saturating add both pinned.
    #[test]
    fn narrow_lanes_match_mac_unit_at_boundaries(
        pairs in proptest::collection::vec((boundary_operand(), boundary_operand()), 1..200)
    ) {
        let mut mac = MacUnit::new(AccumulatorWidth::Narrow16);
        let mut acc = [0i16; 1];
        for (step, &(w, x)) in pairs.iter().enumerate() {
            mac.accumulate(Q88::from_bits(w), Q88::from_bits(x));
            accumulate_narrow_lanes(&mut acc, &[w], &[x]);
            prop_assert_eq!(
                mac.result().to_bits(), acc[0],
                "narrow lane diverged from MacUnit at step {} on ({}, {})", step, w, x
            );
        }
    }

    /// Lane masking: accumulating into the `..active` prefix of a lane
    /// bank (exactly what the PE does when a layer parks trailing lanes)
    /// leaves the parked tail bitwise untouched and drives every active
    /// lane exactly as an independent scalar unit would.
    #[test]
    fn lane_masking_leaves_parked_lanes_untouched(
        weights in proptest::collection::vec(boundary_operand(), 16),
        states in proptest::collection::vec(boundary_operand(), 16),
        park in proptest::collection::vec(any::<i32>(), 16),
        active in 0usize..=16,
        steps in 1usize..8,
    ) {
        let mut acc: Vec<i32> = park.clone();
        acc[..active].fill(0);
        for _ in 0..steps {
            accumulate_wide_lanes(&mut acc[..active], &weights[..active], &states[..active]);
        }
        for lane in active..16 {
            prop_assert_eq!(
                acc[lane], park[lane],
                "parked lane {} was clobbered by a masked accumulate", lane
            );
        }
        for lane in 0..active {
            let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
            for _ in 0..steps {
                mac.accumulate(Q88::from_bits(weights[lane]), Q88::from_bits(states[lane]));
            }
            prop_assert_eq!(
                mac.result().to_bits(), wide_result_bits(acc[lane]),
                "active lane {} diverged from its scalar unit", lane
            );
        }
    }

    /// Zero-weight lane purity: a lane whose weight operand is zero never
    /// perturbs any accumulator bit, no matter what its state operand
    /// holds — so skipping such lanes (the masked kernels) is bitwise
    /// identical to grinding through them (the dense kernels), at both
    /// accumulator widths and from any starting accumulator value.
    #[test]
    fn zero_weight_lanes_never_perturb_accumulator_bits(
        weights in proptest::collection::vec(boundary_operand(), 16),
        states in proptest::collection::vec(boundary_operand(), 16),
        start in proptest::collection::vec(any::<i32>(), 16),
        zero_mask in any::<u16>(),
        steps in 1usize..6,
    ) {
        let mut w = weights.clone();
        for m in 0..16 {
            if zero_mask >> m & 1 == 1 {
                w[m] = 0;
            }
        }
        let live: u64 = u64::from(!zero_mask);
        let mut dense: Vec<i32> = start.clone();
        let mut masked: Vec<i32> = start.clone();
        for _ in 0..steps {
            accumulate_wide_lanes(&mut dense, &w, &states);
            accumulate_wide_masked(
                &mut masked,
                LaneSrc::Lanes(&w),
                LaneSrc::Lanes(&states),
                live,
            );
        }
        prop_assert_eq!(&dense, &masked, "wide: skipping zero-weight lanes changed bits");
        for m in (0..16).filter(|m| zero_mask >> m & 1 == 1) {
            prop_assert_eq!(
                dense[m], start[m],
                "wide: zero-weight lane {} perturbed its accumulator", m
            );
        }
        let start16: Vec<i16> = start.iter().map(|&v| v as i16).collect();
        let mut dense16 = start16.clone();
        let mut masked16 = start16.clone();
        for _ in 0..steps {
            accumulate_narrow_lanes(&mut dense16, &w, &states);
            accumulate_narrow_masked(
                &mut masked16,
                LaneSrc::Lanes(&w),
                LaneSrc::Lanes(&states),
                live,
            );
        }
        prop_assert_eq!(&dense16, &masked16, "narrow: skipping zero-weight lanes changed bits");
        for m in (0..16).filter(|m| zero_mask >> m & 1 == 1) {
            prop_assert_eq!(
                dense16[m], start16[m],
                "narrow: zero-weight lane {} perturbed its accumulator", m
            );
        }
    }
}

/// Deterministic anchor: on a paper-style workload all three datapath
/// variants produce identical registries, and the run actually exercises
/// MACs (a vacuously-idle workload would prove nothing).
#[test]
fn all_variants_agree_on_paper_workload() {
    let case = DiffCase {
        net: neurocube_nn::workloads::mnist_mlp(64),
        dup: true,
        seed: 7,
    };
    let scalar = run_variant(&case, false, false, None);
    let soa = run_variant(&case, true, false, None);
    let par = run_variant(&case, true, true, None);
    let macs: u64 = (0..16)
        .map(|i| scalar.stats.counter(&format!("pe{i}.mac_ops")))
        .sum();
    assert!(
        macs > 0,
        "mnist_mlp no longer fires any MACs; the anchor is vacuous"
    );
    assert_eq!(
        scalar.stats.first_difference(&soa.stats),
        None,
        "SoA registry diverges from scalar on mnist_mlp"
    );
    assert_eq!(
        soa.stats.first_difference(&par.stats),
        None,
        "stage-par registry diverges from serial on mnist_mlp"
    );
    assert_eq!(scalar.output, soa.output);
    assert_eq!(soa.output, par.output);
    assert_eq!(scalar.final_cycle, soa.final_cycle);
    assert_eq!(soa.final_cycle, par.final_cycle);
}
