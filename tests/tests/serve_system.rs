//! End-to-end serving tests on real cubes: the scheduled plan replays
//! as actual cycle-accurate inferences, and execution is bitwise
//! deterministic whether cubes replay serially or on `BatchRunner`
//! threads.
//!
//! These are the expensive counterparts of the synthetic-model property
//! suites in `crates/serve/tests`; they use small real networks so the
//! whole file stays in test-friendly time.

use neurocube::SystemConfig;
use neurocube_nn::workloads;
use neurocube_serve::{
    execute, generate, serve_mode, ExecMode, LoadProfile, ModelCatalog, Outcome, ServeConfig,
    TrafficSpec,
};

/// Two small real models sharing one pool: the MNIST MLP (trimmed) and
/// the tiny convnet.
fn real_catalog() -> ModelCatalog {
    let mut cat = ModelCatalog::new(SystemConfig::paper(true));
    cat.register("mlp", workloads::mnist_mlp(32), 11);
    cat.register("conv", workloads::tiny_convnet(), 12);
    cat
}

fn trace_spec(seed: u64, count: u64, mean_gap: f64) -> TrafficSpec {
    TrafficSpec {
        profile: LoadProfile::Bursty,
        ..TrafficSpec::poisson(
            seed,
            mean_gap,
            count,
            vec![("mlp".to_string(), 2), ("conv".to_string(), 1)],
        )
    }
}

#[test]
fn scheduled_plans_execute_identically_serial_and_threaded() {
    let cat = real_catalog();
    let cfg = ServeConfig {
        pool: 3,
        max_batch: 4,
        max_delay: 2000,
        queue_cap: 32,
    };
    // A mixed two-model trace dense enough to force both affinity hits
    // and model switches on every cube.
    let trace = generate(&cat, &trace_spec(21, 48, 400.0));
    let report = serve_mode(&cat, &cfg, &trace, None);
    assert!(
        report.completed() > 0,
        "the trace must exercise real dispatches"
    );
    assert!(
        report.records.iter().any(|r| r.affinity_hit)
            && report.records.iter().any(|r| !r.affinity_hit),
        "the trace must exercise both affinity hits and misses"
    );

    let serial = execute(&cat, &trace, &report.records, ExecMode::Serial);
    let threaded = execute(&cat, &trace, &report.records, ExecMode::Batched);
    assert_eq!(
        serial.first_difference(&threaded),
        None,
        "serial and BatchRunner replays must export identical registries"
    );
    assert_eq!(serial.to_csv(), threaded.to_csv());
    assert_eq!(serial.to_json(), threaded.to_json());

    // The executor agrees with the schedule about what ran.
    assert_eq!(
        serial.counter("serve.exec.requests"),
        report.completed(),
        "every completed request executes exactly once"
    );
    assert_eq!(
        serial.counter("serve.exec.batches"),
        report.records.len() as u64
    );
    assert_eq!(
        serial.counter("serve.exec.affinity.hits"),
        report.stats.counter("serve.affinity.hits")
    );
    assert_eq!(
        serial.counter("serve.exec.affinity.misses"),
        report.stats.counter("serve.affinity.misses")
    );
}

#[test]
fn replaying_the_same_plan_twice_is_bitwise_identical() {
    let cat = real_catalog();
    let cfg = ServeConfig {
        pool: 2,
        max_batch: 3,
        max_delay: 1500,
        queue_cap: 16,
    };
    let trace = generate(&cat, &trace_spec(5, 24, 500.0));
    let report = serve_mode(&cat, &cfg, &trace, None);
    let once = execute(&cat, &trace, &report.records, ExecMode::Batched);
    let twice = execute(&cat, &trace, &report.records, ExecMode::Batched);
    assert_eq!(once.first_difference(&twice), None);
    assert_ne!(
        once.counter("serve.exec.output_checksum"),
        0,
        "real inferences must fold a nonzero output checksum"
    );
}

#[test]
fn virtual_schedule_agrees_across_fast_forward_modes_on_real_models() {
    let cat = real_catalog();
    let cfg = ServeConfig::new(2);
    let trace = generate(&cat, &trace_spec(9, 40, 800.0));
    let naive = serve_mode(&cat, &cfg, &trace, Some(false));
    let fast = serve_mode(&cat, &cfg, &trace, Some(true));
    assert_eq!(naive.records, fast.records);
    assert_eq!(naive.outcomes, fast.outcomes);
    assert_eq!(naive.stats.first_difference(&fast.stats), None);
}

#[test]
fn overload_sheds_and_underload_completes_on_real_timings() {
    let cat = real_catalog();
    let cfg = ServeConfig {
        pool: 2,
        max_batch: 4,
        max_delay: 1000,
        queue_cap: 8,
    };
    let avg_service = cat.entries().map(|e| e.service_cycles).sum::<u64>() / 2;
    // Underload: arrivals far apart — everything admitted completes.
    let calm = generate(
        &cat,
        &TrafficSpec::poisson(
            3,
            avg_service as f64 * 4.0,
            24,
            vec![("mlp".to_string(), 1), ("conv".to_string(), 1)],
        ),
    );
    let calm_report = serve_mode(&cat, &cfg, &calm, None);
    assert_eq!(calm_report.shed(), 0, "underload must not shed");
    assert_eq!(calm_report.completed(), calm.len() as u64);

    // Heavy overload: arrivals far faster than the pool can serve —
    // the layer degrades by shedding and rejecting, never panicking.
    let storm = generate(
        &cat,
        &TrafficSpec {
            slack: (1.0, 2.0),
            ..TrafficSpec::poisson(
                4,
                avg_service as f64 / 40.0,
                160,
                vec![("mlp".to_string(), 1), ("conv".to_string(), 1)],
            )
        },
    );
    let storm_report = serve_mode(&cat, &cfg, &storm, None);
    assert!(
        storm_report.shed() + storm_report.rejected() > 0,
        "overload must shed or reject"
    );
    assert_eq!(
        storm_report
            .outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Completed { .. }))
            .count() as u64
            + storm_report.shed()
            + storm_report.rejected(),
        storm.len() as u64,
        "every request is accounted for exactly once"
    );
}
