//! Differential property: event-horizon fast-forwarding is observationally
//! invisible. For random multi-layer networks (the same generator as the
//! golden-model suite, so counterexamples shrink), a full inference with
//! skipping forced on must match the naive per-cycle oracle **bitwise** —
//! per-layer cycle counts, the final cycle counter, the output tensor and
//! the entire statistics registry.
//!
//! The modes are selected through [`Neurocube::set_cycle_skip`], not the
//! `NEUROCUBE_NO_SKIP` environment variable: the env default is read once
//! per process and tests run multithreaded, so mutating it mid-run would
//! race other suites.

mod common;

use common::{diff_case, DiffCase};
use neurocube::{Neurocube, SystemConfig};
use neurocube_fixed::Q88;
use neurocube_sim::StatsRegistry;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

struct Observables {
    layer_cycles: Vec<u64>,
    final_cycle: u64,
    output: Vec<Q88>,
    stats: StatsRegistry,
    skipped_cycles: u64,
    horizon_jumps: u64,
}

fn run_mode(case: &DiffCase, skip: bool) -> Observables {
    let cfg = SystemConfig::paper(case.dup);
    let params = case.net.init_params(case.seed, 0.25);
    let mut cube = Neurocube::new(cfg);
    cube.set_cycle_skip(Some(skip));
    let loaded = cube.load(case.net.clone(), params);
    let input = neurocube_bench::ramp_input(&case.net);
    let (output, report) = cube.run_inference(&loaded, &input);
    Observables {
        layer_cycles: report.layers.iter().map(|l| l.cycles).collect(),
        final_cycle: cube.now(),
        output: output.as_slice().to_vec(),
        stats: cube.stats_registry(),
        skipped_cycles: cube.skipped_cycles(),
        horizon_jumps: cube.horizon_jumps(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Skip vs no-skip runs of the same random network agree on every
    /// observable. On divergence the failing statistic is named (via
    /// `StatsRegistry::first_difference`) and the case shrinks toward the
    /// smallest geometry that still diverges.
    #[test]
    fn fast_forward_is_observationally_invisible(case in diff_case()) {
        let fast = run_mode(&case, true);
        let naive = run_mode(&case, false);
        prop_assert_eq!(
            naive.skipped_cycles, 0,
            "the naive oracle must not fast-forward"
        );
        prop_assert_eq!(
            &fast.layer_cycles, &naive.layer_cycles,
            "per-layer cycle counts diverge (dup={}, seed={})", case.dup, case.seed
        );
        prop_assert_eq!(fast.final_cycle, naive.final_cycle, "final cycle counters diverge");
        prop_assert_eq!(&fast.output, &naive.output, "output tensors diverge");
        if let Some(delta) = fast.stats.first_difference(&naive.stats) {
            return Err(TestCaseError::fail(format!(
                "statistics diverge at {delta} (skip run jumped {} times over {} cycles; \
                 dup={}, seed={})",
                fast.horizon_jumps, fast.skipped_cycles, case.dup, case.seed
            )));
        }
    }
}

/// Deterministic anchor: on a paper-style workload the fast mode actually
/// fast-forwards (a skip implementation that never jumps would pass the
/// property above vacuously) and still matches the oracle.
#[test]
fn fast_forward_engages_on_paper_workload() {
    let case = DiffCase {
        net: neurocube_nn::workloads::mnist_mlp(64),
        dup: true,
        seed: 7,
    };
    let fast = run_mode(&case, true);
    let naive = run_mode(&case, false);
    assert!(
        fast.horizon_jumps > 0 && fast.skipped_cycles > 0,
        "fast mode never jumped on mnist_mlp"
    );
    assert_eq!(fast.final_cycle, naive.final_cycle);
    assert_eq!(
        fast.stats.first_difference(&naive.stats),
        None,
        "statistics diverge"
    );
}
