//! Differential property: event-horizon fast-forwarding is observationally
//! invisible. For random multi-layer networks (the same generator as the
//! golden-model suite, so counterexamples shrink), a full inference with
//! skipping forced on must match the naive per-cycle oracle **bitwise** —
//! per-layer cycle counts, the final cycle counter, the output tensor and
//! the entire statistics registry.
//!
//! The modes are selected through [`Neurocube::set_cycle_skip`], not the
//! `NEUROCUBE_NO_SKIP` environment variable: the env default is read once
//! per process and tests run multithreaded, so mutating it mid-run would
//! race other suites.

mod common;

use common::{diff_case, DiffCase};
use neurocube::{FaultSummary, Neurocube, SystemConfig};
use neurocube_fault::FaultConfig;
use neurocube_fixed::Q88;
use neurocube_sim::{BatchRunner, StatsRegistry};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

struct Observables {
    layer_cycles: Vec<u64>,
    final_cycle: u64,
    output: Vec<Q88>,
    stats: StatsRegistry,
    skipped_cycles: u64,
    horizon_jumps: u64,
    fault: Option<FaultSummary>,
}

fn run_mode(case: &DiffCase, skip: bool) -> Observables {
    run_mode_faulty(case, skip, None)
}

fn run_mode_faulty(case: &DiffCase, skip: bool, fault: Option<FaultConfig>) -> Observables {
    let cfg = SystemConfig::paper(case.dup);
    let params = case.net.init_params(case.seed, 0.25);
    let mut cube = Neurocube::new(cfg);
    cube.set_cycle_skip(Some(skip));
    cube.set_fault_config(fault);
    let loaded = cube.load(case.net.clone(), params);
    let input = neurocube_bench::ramp_input(&case.net);
    let (output, report) = cube.run_inference(&loaded, &input);
    Observables {
        layer_cycles: report.layers.iter().map(|l| l.cycles).collect(),
        final_cycle: cube.now(),
        output: output.as_slice().to_vec(),
        stats: cube.stats_registry(),
        skipped_cycles: cube.skipped_cycles(),
        horizon_jumps: cube.horizon_jumps(),
        fault: report.fault,
    }
}

/// Case budget: `PROPTEST_CASES` when set (`ci.sh` pins 64 for the
/// standard gate, 512 for `--faults`), otherwise `default`. Explicit
/// `with_cases` would silently ignore the environment.
fn cases(default: u32) -> u32 {
    neurocube_sim::env_u64("PROPTEST_CASES").map_or(default, |v| v as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Skip vs no-skip runs of the same random network agree on every
    /// observable. On divergence the failing statistic is named (via
    /// `StatsRegistry::first_difference`) and the case shrinks toward the
    /// smallest geometry that still diverges.
    #[test]
    fn fast_forward_is_observationally_invisible(case in diff_case()) {
        let fast = run_mode(&case, true);
        let naive = run_mode(&case, false);
        prop_assert_eq!(
            naive.skipped_cycles, 0,
            "the naive oracle must not fast-forward"
        );
        prop_assert_eq!(
            &fast.layer_cycles, &naive.layer_cycles,
            "per-layer cycle counts diverge (dup={}, seed={})", case.dup, case.seed
        );
        prop_assert_eq!(fast.final_cycle, naive.final_cycle, "final cycle counters diverge");
        prop_assert_eq!(&fast.output, &naive.output, "output tensors diverge");
        if let Some(delta) = fast.stats.first_difference(&naive.stats) {
            return Err(TestCaseError::fail(format!(
                "statistics diverge at {delta} (skip run jumped {} times over {} cycles; \
                 dup={}, seed={})",
                fast.horizon_jumps, fast.skipped_cycles, case.dup, case.seed
            )));
        }
    }

    /// The invisibility contract survives fault injection: with a
    /// deterministic injector attached (DRAM flips/stuck-ats/upsets, NoC
    /// link faults, PE MAC upsets — all at the same seed), the skip and
    /// naive runs must still agree on every observable, including every
    /// `fault.*` counter. A pending background upset inside a promised
    /// quiet window must invalidate the horizon, or the skip run misses it
    /// and this property names the diverging counter.
    #[test]
    fn fast_forward_is_invisible_under_faults(
        case in diff_case(),
        rate_exp in 4u32..7, // uniform rate 1e-6 .. 1e-3
        fault_seed in 0u64..1 << 32,
    ) {
        let cfg = FaultConfig::uniform(fault_seed, 10f64.powi(-(rate_exp as i32)));
        let fast = run_mode_faulty(&case, true, Some(cfg.clone()));
        let naive = run_mode_faulty(&case, false, Some(cfg));
        prop_assert_eq!(naive.skipped_cycles, 0, "the naive oracle must not fast-forward");
        prop_assert_eq!(
            &fast.layer_cycles, &naive.layer_cycles,
            "per-layer cycle counts diverge under faults (dup={}, seeds={}/{})",
            case.dup, case.seed, fault_seed
        );
        prop_assert_eq!(fast.final_cycle, naive.final_cycle, "final cycle counters diverge");
        prop_assert_eq!(&fast.output, &naive.output, "output tensors diverge under faults");
        prop_assert_eq!(&fast.fault, &naive.fault, "fault summaries diverge");
        if let Some(delta) = fast.stats.first_difference(&naive.stats) {
            return Err(TestCaseError::fail(format!(
                "statistics diverge at {delta} under faults (skip run jumped {} times over \
                 {} cycles; dup={}, seeds={}/{})",
                fast.horizon_jumps, fast.skipped_cycles, case.dup, case.seed, fault_seed
            )));
        }
    }

    /// Fault injection is deterministic under the batch runner: running
    /// the same faulty case on [`BatchRunner`] threads is bitwise
    /// identical to running it serially, per slot.
    #[test]
    fn faulty_runs_are_batch_serial_deterministic(
        case in diff_case(),
        fault_seed in 0u64..1 << 32,
    ) {
        let cfg = FaultConfig::uniform(fault_seed, 1e-4);
        let batch = BatchRunner::new().run(3, |i| {
            run_mode_faulty(&case, i % 2 == 0, Some(cfg.clone())).stats
        });
        for (i, stats) in batch.iter().enumerate() {
            let serial = run_mode_faulty(&case, i % 2 == 0, Some(cfg.clone())).stats;
            if let Some(delta) = stats.first_difference(&serial) {
                return Err(TestCaseError::fail(format!(
                    "batch slot {i} diverges from serial at {delta} (fault seed {fault_seed})"
                )));
            }
        }
    }
}

/// Deterministic anchor for horizon invalidation: background DRAM upsets
/// are the one fault class that fires on *idle* cycles — exactly the
/// cycles event-horizon skipping promises are quiet. On a workload where
/// the fast mode demonstrably jumps, an upset-only injector must (a)
/// still land its upsets — the pending-fault clamp truncates any promised
/// quiet window that contains one — and (b) leave the skip run bitwise
/// identical to the naive oracle. A skip implementation that ignores
/// scheduled faults when computing horizons fails (a) or (b) immediately
/// at this rate.
#[test]
fn pending_upset_inside_quiet_window_invalidates_horizon() {
    let case = DiffCase {
        net: neurocube_nn::workloads::mnist_mlp(64),
        dup: true,
        seed: 7,
    };
    let mut cfg = FaultConfig::uniform(0xC1A5, 0.0);
    cfg.dram_upset_rate = 1e-4; // per channel per cycle: plenty of hits
    let fast = run_mode_faulty(&case, true, Some(cfg.clone()));
    let naive = run_mode_faulty(&case, false, Some(cfg));
    assert!(
        fast.horizon_jumps > 0 && fast.skipped_cycles > 0,
        "fast mode never jumped — the workload no longer promises quiet windows"
    );
    let summary = fast.fault.expect("injector attached");
    // Resident hits flip stored data; absorbed ones hit never-written
    // pages. Both are scheduled at activity-independent absolute cycles,
    // so both clamp quiet windows; the anchor needs a healthy number of
    // either to be exercising invalidation at all.
    let landed = summary.dram_upsets + fast.stats.counter("fault.dram.upsets_absorbed");
    assert!(
        landed > 0,
        "no upsets landed; the anchor no longer exercises horizon invalidation"
    );
    assert_eq!(
        fast.fault, naive.fault,
        "upset counts diverge between modes"
    );
    assert_eq!(fast.final_cycle, naive.final_cycle);
    assert_eq!(fast.output, naive.output);
    assert_eq!(
        fast.stats.first_difference(&naive.stats),
        None,
        "statistics diverge with upsets pending inside quiet windows"
    );
}

/// Deterministic anchor: on a paper-style workload the fast mode actually
/// fast-forwards (a skip implementation that never jumps would pass the
/// property above vacuously) and still matches the oracle.
#[test]
fn fast_forward_engages_on_paper_workload() {
    let case = DiffCase {
        net: neurocube_nn::workloads::mnist_mlp(64),
        dup: true,
        seed: 7,
    };
    let fast = run_mode(&case, true);
    let naive = run_mode(&case, false);
    assert!(
        fast.horizon_jumps > 0 && fast.skipped_cycles > 0,
        "fast mode never jumped on mnist_mlp"
    );
    assert_eq!(fast.final_cycle, naive.final_cycle);
    assert_eq!(
        fast.stats.first_difference(&naive.stats),
        None,
        "statistics diverge"
    );
}
