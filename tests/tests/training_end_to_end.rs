//! End-to-end training: the functional fixed-point trainer learns real
//! tasks, and the trained weights run identically on the cycle simulator.

use neurocube::{Neurocube, SystemConfig};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{
    mse_loss, workloads, Executor, LayerSpec, NetworkSpec, Shape, Tensor, Trainer, TrainerConfig,
};

#[test]
fn mlp_learns_synthetic_digits_and_deploys_to_the_cube() {
    // Fixed-point SGD needs a large learning rate so gradient updates stay
    // above the Q1.7.8 quantum (see the Trainer docs).
    let spec = workloads::mnist_mlp(16);
    let exec = Executor::new(spec.clone(), spec.init_params(7, 0.05));
    let mut trainer = Trainer::new(
        exec,
        TrainerConfig {
            learning_rate: Q88::from_f64(2.0),
        },
    );
    let data = workloads::digit_dataset(11, 3);
    let losses = trainer.fit(&data, 10);
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.5),
        "loss must fall: {losses:?}"
    );

    // Training-set accuracy well above the 10% chance level (fixed-point
    // training of a small MLP memorizes imperfectly, which is the point of
    // measuring it honestly).
    let exec = trainer.into_executor();
    let mut correct = 0;
    for (img, target) in &data {
        if exec.predict(img).argmax() == target.argmax() {
            correct += 1;
        }
    }
    assert!(correct >= 12, "accuracy {correct}/30 not above chance");

    // Deploy trained weights to the Neurocube: identical outputs.
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec, exec.params().to_vec());
    let probe = workloads::synthetic_digit(123, 4);
    let (out, _) = cube.run_inference(&loaded, &probe);
    assert_eq!(out, exec.predict(&probe));
}

#[test]
fn conv_net_trains_on_a_two_class_task() {
    // Distinguish vertical-stripe images from horizontal-stripe images.
    let spec = NetworkSpec::new(
        Shape::new(1, 8, 8),
        vec![
            LayerSpec::conv(2, 3, Activation::Tanh),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::fc(2, Activation::Sigmoid),
        ],
    )
    .unwrap();
    let exec = Executor::new(spec.clone(), spec.init_params(3, 0.3));
    let mut trainer = Trainer::new(
        exec,
        TrainerConfig {
            learning_rate: Q88::from_f64(1.0),
        },
    );
    // Stripes two pixels wide, so 2x2 average pooling does not cancel them.
    let vertical = Tensor::from_vec(
        1,
        8,
        8,
        (0..64)
            .map(|i| Q88::from_f64(if (i % 8) % 4 < 2 { 1.0 } else { -1.0 }))
            .collect(),
    );
    let horizontal = Tensor::from_vec(
        1,
        8,
        8,
        (0..64)
            .map(|i| Q88::from_f64(if (i / 8) % 4 < 2 { 1.0 } else { -1.0 }))
            .collect(),
    );
    let data = [
        (vertical.clone(), workloads::one_hot(0, 2)),
        (horizontal.clone(), workloads::one_hot(1, 2)),
    ];
    trainer.fit(&data, 60);
    let exec = trainer.into_executor();
    assert_eq!(exec.predict(&vertical).argmax(), 0);
    assert_eq!(exec.predict(&horizontal).argmax(), 1);
}

#[test]
fn trainer_loss_matches_manual_mse() {
    let spec =
        NetworkSpec::new(Shape::flat(2), vec![LayerSpec::fc(1, Activation::Identity)]).unwrap();
    let exec = Executor::new(spec, vec![vec![Q88::from_f64(0.5), Q88::from_f64(-0.5)]]);
    let x = Tensor::from_flat(vec![Q88::ONE, Q88::ONE]);
    let y = Tensor::from_flat(vec![Q88::ONE]);
    let predicted = exec.predict(&x);
    let expected_loss = mse_loss(&predicted, &y);
    let mut trainer = Trainer::new(exec, TrainerConfig::default());
    let reported = trainer.step(&x, &y);
    assert!((reported - expected_loss).abs() < 1e-12);
}

#[test]
fn simulated_training_step_counts_match_schedule() {
    let spec = workloads::tiny_convnet();
    let params = spec.init_params(5, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let input = Tensor::zeros(1, 12, 12);
    let report = cube.run_training_step(&loaded, &input);
    assert_eq!(
        report.total_ops(),
        neurocube::training_ops(&spec),
        "simulated training ops must match the analytical pass schedule"
    );
    // The backward sweep visits layers in reverse order after the forward
    // sweep: passes 4.. are for layers 3, 2, 1, 0.
    let backward: Vec<usize> = report.layers[spec.depth()..]
        .iter()
        .map(|l| l.layer_index)
        .collect();
    let mut sorted = backward.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(backward, sorted, "backward sweep must be reverse ordered");
}
