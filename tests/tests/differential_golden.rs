//! Differential verification: randomized network configurations driven
//! through the cycle-level simulator and the independent golden models
//! of `neurocube-golden`, with shrinking on divergence.
//!
//! Three randomized properties (the tentpole acceptance set):
//!
//! 1. Every intermediate volume the simulator commits to DRAM lies inside
//!    the functional golden model's derived per-layer error envelope.
//! 2. Every layer's cycle count lies inside the analytical timing
//!    envelope `[lower bound, slack × lower + overhead]`.
//! 3. The parallel batch runner is bitwise identical to serial runs
//!    (reports *and* statistics registries).
//!
//! Plus the defect-injection checks: a DRAM channel that drops its
//! `t_CCD` inter-burst gap is caught by the analytical bound — at the
//! component level (with the engine shrinking the failure to the exact
//! minimal word count) and at the full-system level.

mod common;

use common::diff_case;
use neurocube::{Neurocube, SystemConfig};
use neurocube_dram::{Channel, ChannelConfig, Request, RequestKind, Storage};
use neurocube_fixed::Activation;
use neurocube_golden::{channel_stream_cycles, check_inference_report, GoldenNet, DEFAULT_SLACK};
use neurocube_nn::{LayerSpec, NetworkSpec, Shape, Tensor};
use proptest::prelude::*;
use proptest::test_runner::{ProptestConfig, TestCaseError, TestRunner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: the fixed-point simulator's every intermediate volume
    /// stays inside the functional golden model's derived error envelope.
    #[test]
    fn sim_outputs_within_golden_envelope(case in diff_case()) {
        let cfg = SystemConfig::paper(case.dup);
        let params = case.net.init_params(case.seed, 0.25);
        let golden = GoldenNet::from_quantized(case.net.clone(), params.clone());
        let mut cube = Neurocube::new(cfg);
        let loaded = cube.load(case.net.clone(), params);
        let input = neurocube_bench::ramp_input(&case.net);
        cube.set_input(&loaded, &input);
        for i in 0..case.net.depth() {
            cube.run_layer(&loaded, i);
        }
        let volumes: Vec<Tensor> = (1..=case.net.depth())
            .map(|i| cube.read_volume(&loaded, i))
            .collect();
        golden
            .check(&input, &volumes)
            .map_err(|d| TestCaseError::fail(format!("{d} (dup={})", case.dup)))?;
    }

    /// Property 2: every layer's cycle count stays inside the analytical
    /// timing envelope.
    #[test]
    fn sim_cycles_within_analytical_envelope(case in diff_case()) {
        let cfg = SystemConfig::paper(case.dup);
        let report = neurocube_bench::run_inference(cfg.clone(), &case.net, case.seed);
        check_inference_report(&cfg, &case.net, &report, DEFAULT_SLACK)
            .map_err(|v| TestCaseError::fail(format!("{v} (dup={})", case.dup)))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 3: the parallel batch runner is bitwise identical to
    /// serial execution — reports and statistics registries.
    #[test]
    fn batch_runner_matches_serial(a in diff_case(), b in diff_case()) {
        let jobs = vec![
            (SystemConfig::paper(a.dup), a.net.clone(), a.seed),
            (SystemConfig::paper(b.dup), b.net.clone(), b.seed),
        ];
        let batched = neurocube_bench::run_sweep(&jobs);
        for ((cfg, net, seed), (batch_report, batch_stats)) in jobs.iter().zip(&batched) {
            let (serial_report, serial_stats) =
                neurocube_bench::run_inference_stats(cfg.clone(), net, *seed);
            prop_assert_eq!(batch_report, &serial_report);
            prop_assert_eq!(batch_stats, &serial_stats);
        }
    }
}

/// Deterministic anchor: the paper-style workloads sit inside a tighter
/// envelope than the randomized default (they are throughput-bound, so
/// the latency-dominated slack is unnecessary).
#[test]
fn paper_workloads_within_tight_envelope() {
    for (net, dup) in [
        (neurocube_nn::workloads::tiny_convnet(), true),
        (neurocube_nn::workloads::tiny_convnet(), false),
        (neurocube_nn::workloads::mnist_mlp(64), true),
        (neurocube_nn::workloads::mnist_mlp(64), false),
    ] {
        let cfg = SystemConfig::paper(dup);
        let report = neurocube_bench::run_inference(cfg.clone(), &net, 7);
        check_inference_report(&cfg, &net, &report, 8.0)
            .unwrap_or_else(|v| panic!("dup={dup}: {v}"));
    }
}

/// Streams `words` sequential word reads through a standalone channel
/// and returns the cycle at which the last word crosses it.
fn stream_cycles(cfg: ChannelConfig, words: u64) -> u64 {
    let mut ch = Channel::new(cfg);
    let mut storage = Storage::new();
    let word_bytes = u64::from(cfg.word_bits) / 8;
    let mut queued = 0u64;
    let mut done = 0u64;
    let mut last = 0u64;
    for now in 0.. {
        while queued < words
            && ch.try_enqueue(Request {
                addr: queued * word_bytes,
                tag: queued,
                kind: RequestKind::Read,
            })
        {
            queued += 1;
        }
        if let Some(c) = ch.tick(now, &mut storage) {
            done += 1;
            last = c.cycle;
            if done == words {
                break;
            }
        }
        assert!(now < 1_000_000, "channel stalled");
    }
    last
}

/// Defect injection, component level: a channel that drops its `t_CCD`
/// inter-burst gap finishes below the correct analytical bound. The
/// engine must catch it AND shrink to the exact minimal word count.
#[test]
fn injected_tccd_defect_is_caught_and_shrunk() {
    // An exaggerated gap keeps the gap term above the row-activation
    // noise the analytical lower bound deliberately ignores.
    let mut intended = ChannelConfig::hmc_int();
    intended.inter_burst_gap = 64;
    let mut defective = intended;
    defective.inter_burst_gap = 0; // the injected bug: t_CCD dropped

    // Sanity: the *correct* implementation respects the bound everywhere.
    for words in [1u64, 8, 9, 64, 257] {
        assert!(
            stream_cycles(intended, words) >= channel_stream_cycles(&intended, words),
            "correct channel must satisfy its own lower bound at {words} words"
        );
    }

    // The property the differential suite would run against the correct
    // channel, executed here against the defective one via run_collect
    // (no panic, no regression-file pollution).
    let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
    let failure = runner
        .run_collect("tccd_defect", &[], &(1u64..4096), &|words| {
            let measured = stream_cycles(defective, words);
            let bound = channel_stream_cycles(&intended, words);
            if measured < bound {
                return Err(TestCaseError::fail(format!(
                    "defective channel streamed {words} words in {measured} cycles, \
                     below the analytical bound {bound}"
                )));
            }
            Ok(())
        })
        .expect("the dropped t_CCD gap must be caught");

    // The true minimal failing word count, by exhaustive scan.
    let minimal = (1..4096)
        .find(|&w| stream_cycles(defective, w) < channel_stream_cycles(&intended, w))
        .expect("scan must find a failing word count");
    assert_eq!(
        failure.value, minimal,
        "shrinking must converge to the minimal failing word count"
    );
    assert!(failure.message.contains("below the analytical bound"));
}

/// Defect injection, full-system level: a cube whose channels drop the
/// (here exaggerated) inter-burst gap runs faster than the analytical
/// lower bound derived from the intended timing — and is caught, while
/// the faithful cube passes the same check.
#[test]
fn system_level_tccd_defect_violates_lower_bound() {
    let net = NetworkSpec::new(
        Shape::new(1, 8, 8),
        vec![
            LayerSpec::fc(48, Activation::Tanh),
            LayerSpec::fc(16, Activation::Sigmoid),
        ],
    )
    .unwrap();

    let mut intended = SystemConfig::paper(true);
    intended.memory.channel.inter_burst_gap = 500; // the intended spec
    let mut buggy = intended.clone();
    buggy.memory.channel.inter_burst_gap = 0; // the injected bug

    // A faithful implementation of the intended timing passes.
    let honest = neurocube_bench::run_inference(intended.clone(), &net, 11);
    check_inference_report(&intended, &net, &honest, DEFAULT_SLACK)
        .expect("faithful simulator must sit inside the envelope");

    // The defective one lands below the lower bound and is caught.
    let report = neurocube_bench::run_inference(buggy, &net, 11);
    let violation = check_inference_report(&intended, &net, &report, DEFAULT_SLACK)
        .expect_err("dropped t_CCD must violate the DRAM lower bound");
    assert!(
        violation.measured < violation.lower,
        "defect must manifest as a too-fast layer, got {violation}"
    );
}
