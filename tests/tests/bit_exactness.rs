//! The reproduction's central invariant, exercised with randomized network
//! geometries: the cycle-level Neurocube simulator computes **bit-for-bit**
//! the same values as the functional fixed-point reference, under every
//! mapping and memory configuration.

use neurocube::{Neurocube, SystemConfig};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{ConvConnectivity, Executor, LayerSpec, NetworkSpec, Shape, Tensor};
use proptest::prelude::*;

fn activation_strategy() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Identity),
        Just(Activation::ReLU),
        Just(Activation::Sigmoid),
        Just(Activation::Tanh),
    ]
}

/// Random small-but-nontrivial network: conv (maybe strided) → optional
/// pool → fc, over a random input volume.
fn network_strategy() -> impl Strategy<Value = NetworkSpec> {
    (
        1usize..3,                                   // input channels
        10usize..18,                                 // height
        10usize..18,                                 // width
        2usize..6,                                   // conv out channels
        prop_oneof![Just(2usize), Just(3), Just(5)], // kernel
        1usize..3,                                   // stride
        any::<bool>(),                               // all-maps connectivity
        any::<bool>(),                               // pooling present
        2usize..12,                                  // fc outputs
        activation_strategy(),
        activation_strategy(),
    )
        .prop_filter_map(
            "geometry must be valid",
            |(c, h, w, oc, k, s, all_maps, pool, fc, a1, a2)| {
                let mut layers = vec![LayerSpec::Conv2d {
                    out_channels: oc,
                    kernel: k,
                    stride: s,
                    connectivity: if all_maps {
                        ConvConnectivity::AllMaps
                    } else {
                        ConvConnectivity::SingleMap
                    },
                    activation: a1,
                }];
                if pool {
                    layers.push(LayerSpec::AvgPool { size: 2 });
                }
                layers.push(LayerSpec::fc(fc, a2));
                NetworkSpec::new(Shape::new(c, h, w), layers).ok()
            },
        )
}

fn input_for(spec: &NetworkSpec, seed: i32) -> Tensor {
    let s = spec.input_shape();
    Tensor::from_vec(
        s.channels,
        s.height,
        s.width,
        (0..s.len())
            .map(|i| {
                Q88::from_bits(
                    (((i as i32).wrapping_mul(2654435761_u32 as i32) ^ seed) % 700) as i16,
                )
            })
            .collect(),
    )
}

fn check(cfg: SystemConfig, spec: &NetworkSpec, seed: u64) {
    let params = spec.init_params(seed, 0.3);
    let reference = Executor::new(spec.clone(), params.clone());
    let input = input_for(spec, seed as i32);
    let expected = reference.forward(&input);

    let mut cube = Neurocube::new(cfg);
    let loaded = cube.load(spec.clone(), params);
    let (output, report) = cube.run_inference(&loaded, &input);
    assert_eq!(output, *expected.last().unwrap(), "final output differs");
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            &cube.read_volume(&loaded, i + 1),
            want,
            "intermediate volume {i} differs"
        );
    }
    let want: u64 = spec.macs_per_layer().iter().sum();
    let got: u64 = report.layers.iter().map(|l| l.macs).sum();
    assert_eq!(got, want, "MAC count mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_networks_bit_exact_with_duplication(spec in network_strategy(), seed in 0u64..1000) {
        check(SystemConfig::paper(true), &spec, seed);
    }

    #[test]
    fn random_networks_bit_exact_without_duplication(spec in network_strategy(), seed in 0u64..1000) {
        check(SystemConfig::paper(false), &spec, seed);
    }

    #[test]
    fn random_networks_bit_exact_on_ddr3(spec in network_strategy(), seed in 0u64..1000) {
        check(SystemConfig::ddr3(), &spec, seed);
    }

    #[test]
    fn random_networks_bit_exact_on_fully_connected_noc(
        spec in network_strategy(),
        seed in 0u64..1000,
    ) {
        check(SystemConfig::fully_connected_noc(true), &spec, seed);
    }
}

#[test]
fn deep_mlp_bit_exact() {
    let spec = NetworkSpec::new(
        Shape::flat(64),
        vec![
            LayerSpec::fc(48, Activation::Tanh),
            LayerSpec::fc(32, Activation::Sigmoid),
            LayerSpec::fc(24, Activation::ReLU),
            LayerSpec::fc(9, Activation::Identity),
        ],
    )
    .unwrap();
    check(SystemConfig::paper(true), &spec, 77);
    check(SystemConfig::paper(false), &spec, 78);
}

#[test]
fn deep_conv_stack_bit_exact() {
    let spec = NetworkSpec::new(
        Shape::new(2, 20, 20),
        vec![
            LayerSpec::conv(4, 3, Activation::Tanh),
            LayerSpec::conv(8, 3, Activation::ReLU),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::conv(8, 3, Activation::Tanh),
            LayerSpec::fc(5, Activation::Sigmoid),
        ],
    )
    .unwrap();
    check(SystemConfig::paper(true), &spec, 79);
}
