//! Properties of the simulation kernel as used by the full system: the
//! stats registry's accounting identities, batch-vs-serial bitwise
//! identity, and watchdog behaviour on healthy workloads.
//!
//! (The crafted-stall watchdog test lives in `neurocube::system`'s unit
//! tests, where the pipeline stages are accessible.)

use neurocube::{Neurocube, SystemConfig};
use neurocube_bench::{run_inference, run_sweep};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{LayerSpec, NetworkSpec, Shape, Tensor};

fn small_net() -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, 20, 16),
        vec![
            LayerSpec::conv(4, 3, Activation::Tanh),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::fc(10, Activation::Sigmoid),
        ],
    )
    .unwrap()
}

fn input_for(spec: &NetworkSpec) -> Tensor {
    let s = spec.input_shape();
    Tensor::from_vec(
        s.channels,
        s.height,
        s.width,
        (0..s.len())
            .map(|i| Q88::from_f64((((i * 31) % 128) as f64 - 64.0) / 64.0))
            .collect(),
    )
}

#[test]
fn counters_are_monotonic_across_layers() {
    let spec = small_net();
    let params = spec.init_params(9, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    cube.set_input(&loaded, &input_for(&spec));
    let mut snapshots = vec![cube.stats_registry()];
    for i in 0..spec.depth() {
        let _ = cube.run_layer(&loaded, i);
        snapshots.push(cube.stats_registry());
    }
    // diff() panics if any counter decreased, so chaining every adjacent
    // pair checks monotonicity of every counter at every layer boundary.
    let mut total_macs = 0;
    for pair in snapshots.windows(2) {
        let delta = pair[1].diff(&pair[0]);
        total_macs += delta.sum_suffix(".mac_ops");
    }
    assert!(total_macs > 0, "the network must do arithmetic");
    assert_eq!(
        total_macs,
        snapshots.last().unwrap().sum_suffix(".mac_ops"),
        "per-layer deltas must add up to the lifetime total"
    );
}

#[test]
fn layer_reports_sum_to_whole_run_registry_totals() {
    let spec = small_net();
    let params = spec.init_params(9, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let (_, report) = cube.run_inference(&loaded, &input_for(&spec));
    let reg = cube.stats_registry();
    // The cube was fresh, so lifetime totals equal the sums of the
    // per-layer diffs the reports were built from.
    let macs: u64 = report.layers.iter().map(|l| l.macs).sum();
    let packets: u64 = report.layers.iter().map(|l| l.packets).sum();
    let lateral: u64 = report.layers.iter().map(|l| l.lateral_packets).sum();
    let bits: u64 = report.layers.iter().map(|l| l.dram_bits).sum();
    let rows: u64 = report.layers.iter().map(|l| l.row_misses).sum();
    let energy: f64 = report.layers.iter().map(|l| l.dram_energy_j).sum();
    assert_eq!(macs, reg.sum_suffix(".mac_ops"));
    assert_eq!(packets, reg.counter("noc.delivered"));
    assert_eq!(lateral, reg.counter("noc.lateral"));
    assert_eq!(bits, reg.counter("mem.bits_transferred"));
    assert_eq!(rows, reg.counter("mem.row_misses"));
    assert!((energy - reg.metric("mem.energy_j")).abs() <= 1e-12 * energy.abs().max(1.0));
}

#[test]
fn registry_exports_agree_with_counters() {
    let spec = small_net();
    let params = spec.init_params(9, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let _ = cube.run_inference(&loaded, &input_for(&spec));
    let reg = cube.stats_registry();
    let csv = reg.to_csv();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    let values: Vec<&str> = lines.next().unwrap().split(',').collect();
    assert_eq!(header.len(), values.len());
    let col = header
        .iter()
        .position(|&k| k == "noc.delivered")
        .expect("noc.delivered exported");
    assert_eq!(
        values[col].parse::<u64>().unwrap(),
        reg.counter("noc.delivered")
    );
    let json = reg.to_json();
    assert!(json.contains(&format!(
        "\"noc.delivered\":{}",
        reg.counter("noc.delivered")
    )));
}

#[test]
fn batch_sweep_is_bitwise_identical_to_serial() {
    let spec = small_net();
    let jobs: Vec<(SystemConfig, NetworkSpec, u64)> = vec![
        (SystemConfig::paper(true), spec.clone(), 1),
        (SystemConfig::paper(false), spec.clone(), 2),
        (SystemConfig::fully_connected_noc(true), spec.clone(), 3),
        // Deliberately identical to job 0 — same seed, not just same
        // config: the `sparsity.*` counters classify real operand values,
        // so only a bit-identical job is registry-identical.
        (SystemConfig::paper(true), spec, 1),
    ];
    let batch = run_sweep(&jobs);
    for (i, (cfg, spec, seed)) in jobs.iter().enumerate() {
        let serial = run_inference(cfg.clone(), spec, *seed);
        assert_eq!(
            serial, batch[i].0,
            "job {i}: batch report differs from serial"
        );
    }
    // Identical jobs must also produce identical registries (full
    // counter-level determinism, not just report-level).
    assert_eq!(batch[0].1, batch[3].1);
    assert_eq!(batch[0].0, batch[3].0);
}

#[test]
fn healthy_layers_never_trip_the_watchdog() {
    // A normal layer completes (far) inside the 2M-cycle idle budget; the
    // watchdog only sees forward progress. Completion of run_inference is
    // the proof — a trip would panic.
    let spec = small_net();
    let (report, _) = {
        let params = spec.init_params(9, 0.25);
        let mut cube = Neurocube::new(SystemConfig::paper(true));
        let loaded = cube.load(spec.clone(), params);
        let (_, report) = cube.run_inference(&loaded, &input_for(&spec));
        (report, cube)
    };
    for l in &report.layers {
        assert!(l.cycles > 0);
    }
}
