//! Cross-crate system properties: determinism, conservation, monotone
//! architecture comparisons and statistics consistency.

use neurocube::{Neurocube, RunReport, SystemConfig};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{workloads, LayerSpec, NetworkSpec, Shape, Tensor};

fn input_for(spec: &NetworkSpec) -> Tensor {
    let s = spec.input_shape();
    Tensor::from_vec(
        s.channels,
        s.height,
        s.width,
        (0..s.len())
            .map(|i| Q88::from_f64((((i * 37) % 128) as f64 - 64.0) / 64.0))
            .collect(),
    )
}

fn run(cfg: SystemConfig, spec: &NetworkSpec) -> (Tensor, RunReport) {
    let params = spec.init_params(5, 0.25);
    let mut cube = Neurocube::new(cfg);
    let loaded = cube.load(spec.clone(), params);
    cube.run_inference(&loaded, &input_for(spec))
}

#[test]
fn simulation_is_deterministic() {
    let spec = workloads::tiny_convnet();
    let (out_a, rep_a) = run(SystemConfig::paper(true), &spec);
    let (out_b, rep_b) = run(SystemConfig::paper(true), &spec);
    assert_eq!(out_a, out_b);
    assert_eq!(rep_a, rep_b, "cycle counts must be exactly reproducible");
}

#[test]
fn packet_conservation_every_layer() {
    let spec = workloads::tiny_convnet();
    let params = spec.init_params(5, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let (_, report) = cube.run_inference(&loaded, &input_for(&spec));
    // Nothing left in flight after every layer completes.
    assert!(cube.network().is_idle());
    assert_eq!(cube.network().stats().in_flight(), 0);
    // Per layer: delivered >= one state/weight operand per MAC op for the
    // streaming kinds actually used, plus one write-back per neuron.
    for l in &report.layers {
        assert!(l.packets > 0);
        assert!(l.cycles > 0);
    }
}

#[test]
fn mesh_is_never_faster_than_fully_connected() {
    let spec = NetworkSpec::new(
        Shape::new(1, 32, 32),
        vec![LayerSpec::conv(8, 5, Activation::Tanh)],
    )
    .unwrap();
    let (_, mesh) = run(SystemConfig::paper(false), &spec);
    let (_, full) = run(SystemConfig::fully_connected_noc(false), &spec);
    assert!(
        full.total_cycles() <= mesh.total_cycles(),
        "fully connected {} vs mesh {}",
        full.total_cycles(),
        mesh.total_cycles()
    );
    assert!(full.layers[0].noc_mean_latency <= mesh.layers[0].noc_mean_latency);
}

#[test]
fn dram_energy_scales_with_traffic() {
    let small = NetworkSpec::new(
        Shape::new(1, 16, 16),
        vec![LayerSpec::conv(2, 3, Activation::ReLU)],
    )
    .unwrap();
    let big = NetworkSpec::new(
        Shape::new(1, 32, 32),
        vec![LayerSpec::conv(8, 3, Activation::ReLU)],
    )
    .unwrap();
    let (_, rep_small) = run(SystemConfig::paper(true), &small);
    let (_, rep_big) = run(SystemConfig::paper(true), &big);
    assert!(rep_big.dram_energy_j() > 4.0 * rep_small.dram_energy_j());
    // Energy per bit is the HMC constant: 3.7 pJ/bit.
    let l = &rep_small.layers[0];
    assert!((l.dram_energy_j - l.dram_bits as f64 * 3.7e-12).abs() < 1e-15);
}

#[test]
fn ddr3_energy_per_bit_is_higher() {
    let spec = NetworkSpec::new(
        Shape::new(1, 16, 16),
        vec![LayerSpec::conv(2, 3, Activation::ReLU)],
    )
    .unwrap();
    let (_, hmc) = run(SystemConfig::paper(false), &spec);
    let (_, ddr3) = run(SystemConfig::ddr3(), &spec);
    let hmc_pj = hmc.dram_energy_j() / hmc.layers[0].dram_bits as f64 * 1e12;
    let ddr3_pj = ddr3.dram_energy_j() / ddr3.layers[0].dram_bits as f64 * 1e12;
    assert!((hmc_pj - 3.7).abs() < 0.01);
    assert!((ddr3_pj - 70.0).abs() < 0.1);
}

#[test]
fn reports_expose_consistent_totals() {
    let spec = workloads::tiny_convnet();
    let (_, rep) = run(SystemConfig::paper(true), &spec);
    assert_eq!(rep.total_ops(), spec.total_ops());
    let per_layer: u64 = rep.layers.iter().map(|l| l.cycles).sum();
    assert_eq!(rep.total_cycles(), per_layer);
    assert!(rep.throughput_gops() > 0.0);
    // 28nm throughput is the 5GHz number scaled by 300MHz/5GHz.
    let r = rep.throughput_gops_at(300.0e6) / rep.throughput_gops();
    assert!((r - 0.06).abs() < 1e-12);
}

#[test]
fn training_cycles_exceed_inference_cycles() {
    let spec = workloads::tiny_convnet();
    let params = spec.init_params(5, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let input = input_for(&spec);
    let (_, inference) = cube.run_inference(&loaded, &input);
    let training = cube.run_training_step(&loaded, &input);
    assert!(training.total_cycles() > 2 * inference.total_cycles());
    assert!(training.total_ops() > 2 * inference.total_ops());
    // Throughput regime comparable (the paper's 126.8 vs 132.4 pattern):
    // training is within 2x of inference GOPs/s either way.
    let ratio = training.throughput_gops() / inference.throughput_gops();
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn memory_over_capacity_is_rejected() {
    // Shrink each vault to 4 KiB; a network needing more must be rejected
    // deterministically at layout time.
    let mut cfg = SystemConfig::paper(true);
    cfg.memory.region_bytes = 4 << 10;
    let spec = NetworkSpec::new(
        Shape::new(1, 64, 64),
        vec![LayerSpec::fc(64, Activation::Identity)],
    )
    .unwrap();
    let params = spec.init_params(1, 0.1);
    let result = std::panic::catch_unwind(|| {
        let mut cube = Neurocube::new(cfg);
        let _ = cube.load(spec, params);
    });
    assert!(result.is_err(), "over-capacity layout must panic");
}
