//! Integration tests of the paper's extension claims (§VI and the
//! conclusion): RNN unfolding, cellular networks, irregular connectivity
//! and multi-cube scaling — all executed on the cycle-level simulator.

use neurocube::{LinkModel, MultiCube, Neurocube, SystemConfig};
use neurocube_fixed::{AccumulatorWidth, Activation, Q88};
use neurocube_nn::{workloads, Executor, RecurrentSpec, Tensor};

#[test]
fn rnn_unfolded_runs_bit_exact_on_the_cube() {
    let rnn = RecurrentSpec {
        inputs: 4,
        hidden: 6,
        outputs: 3,
        activation: Activation::ReLU,
        output_activation: Activation::Sigmoid,
        steps: 5,
    };
    let (nx, nh, no) = rnn.weight_counts();
    let gen = |seed: u64, n: usize| -> Vec<Q88> {
        (0..n)
            .map(|i| Q88::from_bits((((i as u64 * 2654435761 + seed) % 200) as i16) - 100))
            .collect()
    };
    let w_x = gen(1, nx);
    let w_h = gen(2, nh);
    let w_o = gen(3, no);
    let xs: Vec<Vec<Q88>> = (0..rnn.steps)
        .map(|t| {
            (0..rnn.inputs)
                .map(|i| Q88::from_bits(((t * 37 + i * 11) % 256) as i16))
                .collect()
        })
        .collect();
    let direct = rnn.run_direct(&w_x, &w_h, &w_o, &xs, AccumulatorWidth::Wide32);

    let spec = rnn.unfold().unwrap();
    let params = rnn.unfolded_params(&w_x, &w_h, &w_o);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec, params);
    let (out, report) = cube.run_inference(&loaded, &rnn.pack_input(&xs));
    assert_eq!(out.as_slice(), direct.as_slice());
    assert_eq!(report.layers.len(), rnn.steps + 1);
}

#[test]
fn cellular_network_runs_on_the_cube() {
    let spec = workloads::cellular(14, 14, 3).unwrap();
    let params = spec.init_params(2, 0.3);
    let reference = Executor::new(spec.clone(), params.clone());
    let input = Tensor::from_vec(
        1,
        14,
        14,
        (0..196)
            .map(|i| Q88::from_bits((i * 13 % 400) as i16))
            .collect(),
    );
    let expected = reference.predict(&input);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec, params);
    let (out, _) = cube.run_inference(&loaded, &input);
    assert_eq!(out, expected);
}

#[test]
fn irregular_connectivity_runs_on_the_cube() {
    // §V-A-2: irregular connections as an FC layer with zero weights.
    let (spec, params, adjacency) = workloads::irregular_fc(32, 12, 0.25, 7);
    let input = Tensor::from_flat(
        (0..32)
            .map(|i| Q88::from_f64(i as f64 / 20.0 - 0.8))
            .collect(),
    );
    let expected = Executor::new(spec.clone(), params.clone()).predict(&input);
    let mut cube = Neurocube::new(SystemConfig::paper(false));
    let loaded = cube.load(spec, params);
    let (out, _) = cube.run_inference(&loaded, &input);
    assert_eq!(out, expected);
    // The adjacency really is sparse.
    let edges: usize = adjacency.iter().map(Vec::len).sum();
    assert!(edges < 32 * 12 / 2);
}

#[test]
fn multicube_scales_the_scene_network() {
    let spec = workloads::scene_labeling(64, 80).unwrap();
    let params = spec.init_params(21, 0.2);
    let input = workloads::synthetic_scene(5, 64, 80);
    let expected = Executor::new(spec.clone(), params.clone()).predict(&input);
    let cluster = MultiCube::new(SystemConfig::paper(true), 2, LinkModel::hmc_ext());
    let (out, report) = cluster.run_inference(&spec, &params, &input);
    assert_eq!(out, expected, "2-cube scene labeling must stay bit-exact");
    assert_eq!(report.layers.len(), spec.depth());
    assert!(report.link_cycles() > 0);
    assert!(report.throughput_gops() > 0.0);
}

#[test]
fn programming_overhead_is_charged_when_modelled() {
    let spec = workloads::tiny_convnet();
    let params = spec.init_params(5, 0.25);
    let input = Tensor::zeros(1, 12, 12);

    let mut plain = Neurocube::new(SystemConfig::paper(true));
    let loaded = plain.load(spec.clone(), params.clone());
    let (_, without) = plain.run_inference(&loaded, &input);

    let mut cfg = SystemConfig::paper(true);
    cfg.programming = Some(neurocube::ProgrammingModel::typical());
    let mut timed = Neurocube::new(cfg);
    let loaded = timed.load(spec.clone(), params);
    let (_, with) = timed.run_inference(&loaded, &input);

    let per_layer = neurocube::ProgrammingModel::typical().layer_cycles(16);
    let added = with.total_cycles() - without.total_cycles();
    let expected = per_layer * spec.depth() as u64;
    // The completion detector polls every 64 cycles, so the end of each
    // layer can shift by up to one poll interval.
    assert!(
        added.abs_diff(expected) <= 64 * spec.depth() as u64,
        "programming added {added}, expected ~{expected}"
    );
}
