//! `Q88::from_f64` boundary pinning.
//!
//! The golden model's error envelope (`golden::func`) is *derived* from a
//! handful of datapath certificates; the one `from_f64` owes it is
//! round-to-nearest: quantizing any in-range real adds at most half an
//! LSB (`1/512`), and the format boundaries saturate instead of wrapping.
//! These properties pin that certificate exactly — including the
//! round-half direction (ties away from zero, `f64::round` semantics) at
//! every representable midpoint and the first values that saturate at
//! ±full scale — so a quantizer change that silently widens the envelope
//! cannot land without tripping a named test.

use neurocube_fixed::Q88;
use proptest::prelude::*;

/// One `Q1.7.8` least significant bit, as the golden model defines it.
const LSB: f64 = 1.0 / 256.0;

/// Exact real value of the largest/smallest representable `Q88`.
const MAX_F: f64 = 32767.0 / 256.0; // 127.99609375
const MIN_F: f64 = -32768.0 / 256.0; // -128.0

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The quantization certificate the error envelope is built on:
    /// everything strictly inside the saturation band round-trips within
    /// half an LSB, bitwise-reproducibly.
    #[test]
    fn in_range_values_quantize_within_half_lsb(v in MIN_F..MAX_F) {
        let q = Q88::from_f64(v);
        let err = (q.to_f64() - v).abs();
        prop_assert!(
            err <= LSB / 2.0 + 1e-12,
            "quantization error {err} exceeds the half-LSB certificate for {v}"
        );
        prop_assert_eq!(Q88::from_f64(v), q, "quantization must be deterministic");
    }

    /// Ties land away from zero at *every* representable midpoint: the
    /// midpoint between raw `k` and `k+1` quantizes to `k+1` for
    /// non-negative `k` and to `k` for negative `k` (both the larger
    /// magnitude). `k = i16::MAX` is excluded — that midpoint saturates.
    #[test]
    fn round_half_goes_away_from_zero(k in i16::MIN..i16::MAX) {
        let midpoint = (f64::from(k) + 0.5) / 256.0;
        let expected = if k >= 0 { i32::from(k) + 1 } else { i32::from(k) };
        let got = Q88::from_f64(midpoint);
        prop_assert_eq!(
            i32::from(got.to_bits()), expected,
            "midpoint {} rounded to raw {} instead of {}",
            midpoint, got.to_bits(), expected
        );
    }

    /// Values at or beyond full scale saturate; nothing wraps.
    #[test]
    fn out_of_range_values_saturate(mag in 0.0f64..1e6) {
        prop_assert_eq!(Q88::from_f64(MAX_F + mag), Q88::MAX);
        prop_assert_eq!(Q88::from_f64(MIN_F - mag), Q88::MIN);
    }
}

/// The exact saturation edges, pinned one value at a time: full scale is
/// representable and exact; the first midpoint above it is the first input
/// that saturates high; −128 is representable while anything below the
/// half-LSB band under it pins to `MIN`.
#[test]
fn saturation_edges_are_exact() {
    assert_eq!(Q88::from_f64(MAX_F), Q88::MAX);
    assert_eq!(Q88::MAX.to_f64(), MAX_F);
    // One half-LSB below full scale still rounds *up* into MAX (ties away
    // from zero), so MAX_F - LSB/2 is the smallest input reaching MAX.
    assert_eq!(Q88::from_f64(MAX_F - LSB / 2.0), Q88::MAX);
    // Just inside that midpoint stays below MAX.
    let below = Q88::from_f64(MAX_F - LSB / 2.0 - 1e-9);
    assert_eq!(below.to_bits(), i16::MAX - 1);

    assert_eq!(Q88::from_f64(MIN_F), Q88::MIN);
    assert_eq!(Q88::MIN.to_f64(), MIN_F);
    // The midpoint under MIN's neighbor rounds away from zero into MIN.
    assert_eq!(Q88::from_f64(MIN_F + LSB / 2.0), Q88::MIN);
    let above = Q88::from_f64(MIN_F + LSB / 2.0 + 1e-9);
    assert_eq!(above.to_bits(), i16::MIN + 1);

    // Non-finite inputs: NaN is defined to quantize to zero, infinities
    // saturate like any out-of-range magnitude.
    assert_eq!(Q88::from_f64(f64::NAN), Q88::ZERO);
    assert_eq!(Q88::from_f64(f64::INFINITY), Q88::MAX);
    assert_eq!(Q88::from_f64(f64::NEG_INFINITY), Q88::MIN);
}
