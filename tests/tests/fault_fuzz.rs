//! Malformed-input fuzzing of the lenient packet/tag paths.
//!
//! With a fault injector attached the core switches every component to
//! lenient handling, because injected faults make otherwise-impossible
//! packet states reachable (a misrouted flit arrives at the wrong PE, a
//! corrupted tag never matches an issued read). These properties drive
//! *arbitrary* packets, tags and tick sequences into lenient PEs, PNGs
//! and the NoC and require that (a) nothing panics — every malformed
//! input becomes a counted drop — and (b) the whole thing is a pure
//! function of its input sequence: replaying the same sequence reproduces
//! every counter exactly.

mod common;

use neurocube_fixed::AccumulatorWidth;
use neurocube_noc::{Network, NodeId, Packet, PacketKind, Topology};
use neurocube_pe::ProcessingElement;
use neurocube_png::{Png, PngHookup};
use proptest::prelude::*;

fn packet_strategy() -> impl Strategy<Value = Packet> {
    (0u8..64, 0u8..64, 0u8..16, any::<u8>(), 0u8..4, any::<u16>()).prop_map(
        |(dst, src, mac_id, op_id, kind, data)| Packet {
            dst,
            src,
            mac_id,
            op_id,
            kind: match kind {
                0 => PacketKind::State,
                1 => PacketKind::SharedState,
                2 => PacketKind::Weight,
                _ => PacketKind::Result,
            },
            data,
        },
    )
}

/// Feeds `pkts` into a lenient, unconfigured PE with interleaved ticks.
/// Returns the drop count (for the determinism check).
fn drive_pe(pkts: &[Packet]) -> u64 {
    let mut pe = ProcessingElement::new(3, AccumulatorWidth::Wide32);
    pe.set_lenient(true);
    for (i, pkt) in pkts.iter().enumerate() {
        pe.try_accept(*pkt);
        pe.tick(i as u64);
    }
    pe.fault_counts().dropped_packets
}

/// Feeds `pkts` (as mem-port results) and their encodings (as completion
/// tags) into a lenient, unconfigured PNG. Returns both drop counters.
fn drive_png(pkts: &[Packet]) -> (u64, u64) {
    let hookup = PngHookup {
        attach: 5,
        word_bytes: 4,
        max_outstanding_reads: 8,
        run_ahead_ops: 64,
    };
    let mut png = Png::new(5, hookup);
    png.set_lenient(true);
    for (i, pkt) in pkts.iter().enumerate() {
        png.on_result(*pkt, i as u64);
        png.on_completion(pkt.encode(), u64::from(pkt.data));
    }
    (png.dropped_packets(), png.unknown_completions())
}

/// Injects `pkts` into a lenient 4×4 mesh from valid source nodes —
/// destinations range over the full 6-bit field, so many are outside the
/// fabric — ticking and draining as it goes. Returns the unroutable-drop
/// count.
fn drive_network(pkts: &[Packet]) -> u64 {
    let mut net = Network::new(Topology::mesh4x4());
    net.set_lenient(true);
    let mut now = 0u64;
    for pkt in pkts {
        let node = NodeId::from(pkt.src % 16);
        net.try_inject_from_mem(node, *pkt, now);
        net.tick(now);
        for n in 0..16u8 {
            while net.pop_for_pe(n, now).is_some() {}
            while net.pop_for_mem(n, now).is_some() {}
        }
        now += 1;
    }
    // Drain whatever is still in flight.
    for _ in 0..200 {
        net.tick(now);
        for n in 0..16u8 {
            while net.pop_for_pe(n, now).is_some() {}
            while net.pop_for_mem(n, now).is_some() {}
        }
        now += 1;
    }
    net.fault_counts().unroutable
}

/// Case budget: `PROPTEST_CASES` when set (`ci.sh` pins 64 for the
/// standard gate, 512 for `--faults`), otherwise `default`.
fn cases(default: u32) -> u32 {
    neurocube_sim::env_u64("PROPTEST_CASES").map_or(default, |v| v as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// No packet sequence can panic a lenient PE, and replaying the
    /// sequence reproduces the drop count exactly.
    #[test]
    fn lenient_pe_survives_arbitrary_packets(
        pkts in proptest::collection::vec(packet_strategy(), 1..64)
    ) {
        let drops = drive_pe(&pkts);
        prop_assert_eq!(
            drops, pkts.len() as u64,
            "an unconfigured PE must count every packet as a drop"
        );
        prop_assert_eq!(drive_pe(&pkts), drops, "drop counting must be deterministic");
    }

    /// No result/completion sequence can panic a lenient PNG; drops and
    /// unknown-completion counts replay exactly.
    #[test]
    fn lenient_png_survives_arbitrary_results_and_tags(
        pkts in proptest::collection::vec(packet_strategy(), 1..64)
    ) {
        let counts = drive_png(&pkts);
        prop_assert_eq!(
            counts.0 + counts.1, 2 * pkts.len() as u64,
            "an unconfigured PNG must count every input as a drop"
        );
        prop_assert_eq!(drive_png(&pkts), counts, "drop counting must be deterministic");
    }

    /// No injection sequence can panic a lenient NoC: out-of-fabric
    /// destinations become counted unroutable drops, in-fabric packets
    /// route normally, and the counts replay exactly.
    #[test]
    fn lenient_noc_survives_arbitrary_destinations(
        pkts in proptest::collection::vec(packet_strategy(), 1..48)
    ) {
        let unroutable = drive_network(&pkts);
        let out_of_fabric = pkts.iter().filter(|p| p.dst >= 16).count() as u64;
        prop_assert!(
            unroutable <= out_of_fabric,
            "only out-of-fabric destinations may be dropped ({unroutable} > {out_of_fabric})"
        );
        prop_assert_eq!(
            drive_network(&pkts), unroutable,
            "unroutable counting must be deterministic"
        );
    }
}
