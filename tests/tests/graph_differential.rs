//! Differential verification for compiled layer DAGs: randomized graphs
//! driven through the cycle-level simulator and the independent golden
//! models of `neurocube-golden`, with shrinking on divergence.
//!
//! 1. Every node volume the simulator commits to DRAM lies inside the
//!    functional golden model's composed per-node error envelope
//!    (`GoldenGraph` folds envelopes along the DAG: residual adds sum
//!    branch envelopes, concats take the worst part).
//! 2. Every pipelined phase's cycle count lies inside the analytical
//!    timing envelope, with the programming charge on phase 0 only.
//! 3. The compiler's cost model ranks mappings consistently: both
//!    `plan_graph` alternatives are real lower bounds on real runs.

mod common;

use common::graph_case;
use neurocube::{Neurocube, SystemConfig};
use neurocube_golden::{check_graph_report, plan_graph, GoldenGraph, DEFAULT_SLACK};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Case budget: `PROPTEST_CASES` when set (`ci.sh` pins 32 for the
/// standard gate, 512 for `--compile`), otherwise `default`.
fn cases(default: u32) -> u32 {
    neurocube_sim::env_u64("PROPTEST_CASES").map_or(default, |v| v as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// Property 1: every node volume stays inside the golden graph
    /// model's composed error envelope. Volumes are collected by the
    /// replay harness right after the phase that finalizes each node
    /// (the lifetime-based allocator recycles buffers afterwards).
    #[test]
    fn graph_volumes_within_golden_envelope(case in graph_case()) {
        let cfg = SystemConfig::paper(case.dup);
        let params = case.graph.init_params(case.seed, 0.25);
        let golden = GoldenGraph::from_quantized(case.graph.clone(), params.clone());
        let mut cube = Neurocube::new(cfg);
        let loaded = cube
            .load_graph(&case.graph, params)
            .expect("random graphs fit the paper cube");
        let input = neurocube_bench::graph_ramp_input(&case.graph);
        let (volumes, _) = cube.run_graph_replay_collect(&loaded, &input);
        golden
            .check(&input, &volumes)
            .map_err(|d| TestCaseError::fail(format!("{d} (dup={})", case.dup)))?;
    }

    /// Property 2: every pipelined phase's cycle count stays inside the
    /// analytical timing envelope (`graph_bounds` composed along the
    /// schedule, programming charged once on phase 0).
    #[test]
    fn graph_cycles_within_analytical_envelope(case in graph_case()) {
        let cfg = SystemConfig::paper(case.dup);
        let out = neurocube_bench::run_graph_mode(
            cfg.clone(), &case.graph, case.seed, Some(true), true,
        );
        check_graph_report(&cfg, &case.graph, &out.report, DEFAULT_SLACK)
            .map_err(|v| TestCaseError::fail(format!("{v} (dup={})", case.dup)))?;
    }

    /// Property 3: both mapping alternatives the planner compares are
    /// genuine lower bounds — a real run under either mapping takes at
    /// least the planner's predicted cycle total.
    #[test]
    fn planner_totals_are_lower_bounds(case in graph_case()) {
        let plan = plan_graph(&SystemConfig::paper(true), &case.graph);
        for (dup, predicted) in [
            (true, plan.duplicated_cycles),
            (false, plan.partitioned_cycles),
        ] {
            let out = neurocube_bench::run_graph_mode(
                SystemConfig::paper(dup), &case.graph, case.seed, Some(true), true,
            );
            prop_assert!(
                out.report.total_cycles() >= predicted,
                "dup={}: measured {} cycles below the planner's bound {} (seed={})",
                dup, out.report.total_cycles(), predicted, case.seed
            );
        }
    }
}

/// Deterministic anchor: the toy graphs sit inside the default envelope
/// under both mappings, and the report attributes phases to the graph's
/// execution order.
#[test]
fn toy_graphs_within_envelope_under_both_mappings() {
    for (name, graph) in [
        ("residual_toy", neurocube_nn::workloads::residual_toy()),
        ("concat_toy", neurocube_nn::workloads::concat_toy()),
    ] {
        for dup in [true, false] {
            let cfg = SystemConfig::paper(dup);
            let out = neurocube_bench::run_graph_mode(cfg.clone(), &graph, 7, Some(true), true);
            check_graph_report(&cfg, &graph, &out.report, DEFAULT_SLACK)
                .unwrap_or_else(|v| panic!("{name} dup={dup}: {v}"));
            let labels: Vec<usize> = out.report.layers.iter().map(|l| l.layer_index).collect();
            assert_eq!(
                labels,
                graph.exec_nodes(),
                "{name}: phases must execute the graph's schedule in order"
            );
        }
    }
}
