//! Shared randomized-case generators for the cross-crate differential
//! suites. Each integration-test binary compiles its own copy (Cargo's
//! `tests/common` convention), so unused items are expected per binary.
#![allow(dead_code)]

use neurocube_fixed::Activation;
use neurocube_nn::{GraphBuilder, GraphSpec, LayerSpec, NetworkSpec, Shape, INPUT};
use proptest::prelude::*;
use std::ffi::OsString;
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

/// RAII guard for tests that touch process-global environment
/// variables. The environment is shared by every thread in a test
/// binary, so an unguarded set/unset dance races against any parallel
/// test reading the same names; the guard serializes such tests behind
/// one mutex, clears the tracked variables on entry (a clean slate
/// regardless of the invoking shell), and restores their original
/// values on drop — even when the test panics (a poisoned lock is
/// re-entered, not propagated, so one failure doesn't cascade).
///
/// Only the tracked names may be touched through the guard; [`set`]
/// and [`unset`] assert it, catching tests that would leak state past
/// the restore list.
///
/// [`set`]: EnvGuard::set
/// [`unset`]: EnvGuard::unset
pub struct EnvGuard {
    _lock: MutexGuard<'static, ()>,
    snap: EnvSnapshot,
}

impl EnvGuard {
    /// Locks the environment, snapshots `names`, and clears them.
    pub fn capture(names: &[&'static str]) -> EnvGuard {
        let lock = ENV_LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        EnvGuard {
            _lock: lock,
            snap: EnvSnapshot::capture(names),
        }
    }

    /// Sets a tracked variable.
    pub fn set(&self, name: &str, value: &str) {
        self.snap.set(name, value);
    }

    /// Unsets a tracked variable.
    pub fn unset(&self, name: &str) {
        self.snap.unset(name);
    }
}

/// The save/clear/restore half of [`EnvGuard`], without the lock. Only
/// for scopes that already hold an `EnvGuard` on the same names (the
/// mutex is not reentrant — a nested `EnvGuard::capture` would
/// deadlock); the guard's own tests use it to observe restore-on-drop.
pub struct EnvSnapshot {
    saved: Vec<(&'static str, Option<OsString>)>,
}

impl EnvSnapshot {
    /// Snapshots `names` and clears them.
    pub fn capture(names: &[&'static str]) -> EnvSnapshot {
        let saved: Vec<(&'static str, Option<OsString>)> =
            names.iter().map(|&n| (n, std::env::var_os(n))).collect();
        for &n in names {
            std::env::remove_var(n);
        }
        EnvSnapshot { saved }
    }

    fn tracks(&self, name: &str) {
        assert!(
            self.saved.iter().any(|(n, _)| *n == name),
            "environment snapshot does not track {name}; add it to capture()"
        );
    }

    /// Sets a tracked variable.
    pub fn set(&self, name: &str, value: &str) {
        self.tracks(name);
        std::env::set_var(name, value);
    }

    /// Unsets a tracked variable.
    pub fn unset(&self, name: &str) {
        self.tracks(name);
        std::env::remove_var(name);
    }
}

impl Drop for EnvSnapshot {
    fn drop(&mut self) {
        for (n, v) in &self.saved {
            match v {
                Some(v) => std::env::set_var(n, v),
                None => std::env::remove_var(n),
            }
        }
    }
}

/// One randomized differential case: a small (cycle-simulation-friendly)
/// network plus the mapping flavor and the parameter seed.
#[derive(Clone, Debug)]
pub struct DiffCase {
    pub net: NetworkSpec,
    pub dup: bool,
    pub seed: u64,
}

pub fn activation(idx: u32) -> Activation {
    match idx % 4 {
        0 => Activation::Identity,
        1 => Activation::ReLU,
        2 => Activation::Sigmoid,
        _ => Activation::Tanh,
    }
}

/// Random small networks spanning every layer kind, both mapping
/// flavors (duplicate/partitioned) and all four activations. Shrinking
/// moves every coordinate toward its minimum, so counterexamples
/// converge to the smallest geometry that still fails.
pub fn diff_case() -> impl Strategy<Value = DiffCase> {
    (
        6u32..13,      // input height
        6u32..13,      // input width
        1u32..3,       // input channels
        0u32..6,       // architecture pick
        0u32..4,       // activation of the feature layers
        0u32..4,       // activation of the classifier layers
        any::<bool>(), // duplicate input volumes
        0u64..1 << 32, // parameter seed
    )
        .prop_filter_map(
            "valid network geometry",
            |(h, w, c, arch, a0, a1, dup, seed)| {
                let (a0, a1) = (activation(a0), activation(a1));
                let layers = match arch {
                    0 => vec![
                        LayerSpec::conv(1 + (w as usize % 3), 3, a0),
                        LayerSpec::fc(1 + (h as usize % 8), a1),
                    ],
                    1 => vec![
                        LayerSpec::conv(2, 3, a0),
                        LayerSpec::AvgPool { size: 2 },
                        LayerSpec::fc(4, a1),
                    ],
                    2 => vec![
                        LayerSpec::fc(1 + (w as usize % 12), a0),
                        LayerSpec::fc(1 + (h as usize % 6), a1),
                    ],
                    3 => vec![LayerSpec::conv(2, 5, a0), LayerSpec::fc(3, a1)],
                    4 => vec![LayerSpec::AvgPool { size: 2 }, LayerSpec::fc(5, a1)],
                    _ => vec![
                        LayerSpec::conv(1, 3, a0),
                        LayerSpec::conv(2, 3, a1),
                        LayerSpec::fc(2, a0),
                    ],
                };
                let net = NetworkSpec::new(Shape::new(c as usize, h as usize, w as usize), layers)
                    .ok()?;
                Some(DiffCase { net, dup, seed })
            },
        )
}

/// One randomized graph-compiler case: a small layer DAG plus the
/// mapping flavor and the parameter seed.
#[derive(Clone, Debug)]
pub struct GraphCase {
    pub graph: GraphSpec,
    pub dup: bool,
    pub seed: u64,
}

/// Random small layer DAGs spanning every graph feature the compiler
/// pipelines: residual `Add` (two- and three-way), channel `Concat`
/// (of siblings and of a node with its own refinement), spatial layers
/// downstream of aliased buffers, and the trivial linear embedding.
/// Shrinking converges to the smallest DAG that still fails.
pub fn graph_case() -> impl Strategy<Value = GraphCase> {
    (
        6u32..13,      // input height
        6u32..13,      // input width
        1u32..3,       // input channels
        0u32..5,       // archetype pick
        0u32..4,       // activation of the feature nodes
        0u32..4,       // activation of the head
        any::<bool>(), // duplicate input volumes
        0u64..1 << 32, // parameter seed
    )
        .prop_filter_map(
            "valid graph geometry",
            |(h, w, c, arch, a0, a1, dup, seed)| {
                let (a0, a1) = (activation(a0), activation(a1));
                let input = Shape::new(c as usize, h as usize, w as usize);
                let mut g = GraphBuilder::new(input);
                match arch {
                    0 => {
                        // ResNet-style: stem, 1x1 branch, residual sum, head.
                        g.layer("stem", INPUT, LayerSpec::conv(2, 3, a0));
                        g.layer(
                            "branch",
                            "stem",
                            LayerSpec::conv(2, 1, Activation::Identity),
                        );
                        g.add("res", &["stem", "branch"], a1);
                        g.layer("head", "res", LayerSpec::fc(1 + (h as usize % 6), a1));
                    }
                    1 => {
                        // Inception-style: sibling convs over the input,
                        // channel-concatenated.
                        g.layer("left", INPUT, LayerSpec::conv(1 + (w as usize % 2), 3, a0));
                        g.layer("right", INPUT, LayerSpec::conv(2, 3, a1));
                        g.concat("cat", &["left", "right"]);
                        g.layer("head", "cat", LayerSpec::fc(4, a0));
                    }
                    2 => {
                        // Trivial linear embedding of a plain NetworkSpec.
                        let net = NetworkSpec::new(
                            input,
                            vec![
                                LayerSpec::conv(2, 3, a0),
                                LayerSpec::fc(1 + (w as usize % 8), a1),
                            ],
                        )
                        .ok()?;
                        return Some(GraphCase {
                            graph: net.to_graph(),
                            dup,
                            seed,
                        });
                    }
                    3 => {
                        // Concat of a stem with its own 1x1 refinement,
                        // then a spatial consumer of the aliased buffer.
                        g.layer("stem", INPUT, LayerSpec::conv(2, 3, a0));
                        g.layer("refine", "stem", LayerSpec::conv(2, 1, a1));
                        g.concat("cat", &["stem", "refine"]);
                        g.layer("pool", "cat", LayerSpec::AvgPool { size: 2 });
                        g.layer("head", "pool", LayerSpec::fc(3, a0));
                    }
                    _ => {
                        // Three-way residual sum of 1x1 views of a stem.
                        g.layer("stem", INPUT, LayerSpec::conv(2, 3, a0));
                        g.layer("b1", "stem", LayerSpec::conv(2, 1, a1));
                        g.layer("b2", "stem", LayerSpec::conv(2, 1, Activation::Identity));
                        g.add("res", &["stem", "b1", "b2"], a0);
                        g.layer("head", "res", LayerSpec::fc(5, a1));
                    }
                }
                let graph = g.build().ok()?;
                Some(GraphCase { graph, dup, seed })
            },
        )
}
