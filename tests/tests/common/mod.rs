//! Shared randomized-case generators for the cross-crate differential
//! suites. Each integration-test binary compiles its own copy (Cargo's
//! `tests/common` convention), so unused items are expected per binary.
#![allow(dead_code)]

use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};
use proptest::prelude::*;

/// One randomized differential case: a small (cycle-simulation-friendly)
/// network plus the mapping flavor and the parameter seed.
#[derive(Clone, Debug)]
pub struct DiffCase {
    pub net: NetworkSpec,
    pub dup: bool,
    pub seed: u64,
}

pub fn activation(idx: u32) -> Activation {
    match idx % 4 {
        0 => Activation::Identity,
        1 => Activation::ReLU,
        2 => Activation::Sigmoid,
        _ => Activation::Tanh,
    }
}

/// Random small networks spanning every layer kind, both mapping
/// flavors (duplicate/partitioned) and all four activations. Shrinking
/// moves every coordinate toward its minimum, so counterexamples
/// converge to the smallest geometry that still fails.
pub fn diff_case() -> impl Strategy<Value = DiffCase> {
    (
        6u32..13,      // input height
        6u32..13,      // input width
        1u32..3,       // input channels
        0u32..6,       // architecture pick
        0u32..4,       // activation of the feature layers
        0u32..4,       // activation of the classifier layers
        any::<bool>(), // duplicate input volumes
        0u64..1 << 32, // parameter seed
    )
        .prop_filter_map(
            "valid network geometry",
            |(h, w, c, arch, a0, a1, dup, seed)| {
                let (a0, a1) = (activation(a0), activation(a1));
                let layers = match arch {
                    0 => vec![
                        LayerSpec::conv(1 + (w as usize % 3), 3, a0),
                        LayerSpec::fc(1 + (h as usize % 8), a1),
                    ],
                    1 => vec![
                        LayerSpec::conv(2, 3, a0),
                        LayerSpec::AvgPool { size: 2 },
                        LayerSpec::fc(4, a1),
                    ],
                    2 => vec![
                        LayerSpec::fc(1 + (w as usize % 12), a0),
                        LayerSpec::fc(1 + (h as usize % 6), a1),
                    ],
                    3 => vec![LayerSpec::conv(2, 5, a0), LayerSpec::fc(3, a1)],
                    4 => vec![LayerSpec::AvgPool { size: 2 }, LayerSpec::fc(5, a1)],
                    _ => vec![
                        LayerSpec::conv(1, 3, a0),
                        LayerSpec::conv(2, 3, a1),
                        LayerSpec::fc(2, a0),
                    ],
                };
                let net = NetworkSpec::new(Shape::new(c as usize, h as usize, w as usize), layers)
                    .ok()?;
                Some(DiffCase { net, dup, seed })
            },
        )
}
