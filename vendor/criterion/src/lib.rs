//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion 0.7's API that
//! `benches/micro_components.rs` uses: [`Criterion::benchmark_group`],
//! `sample_size` / `throughput` / `bench_function` / `finish`,
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each `bench_function` is calibrated until one batch
//! runs ≥ ~50 ms, then timed over `sample_size` batches; the mean, min and
//! max per-iteration times are printed (plus derived throughput). There is
//! no HTML report and no statistical regression analysis.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units a benchmark's throughput is expressed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 30,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work so results include a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(50) || iters >= 1 << 30 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 8;
        };
        // Sample.
        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(per_iter, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        print!(
            "  {id:<44} {:>12} {:>12} {:>12}",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                print!("   {:.1} Melem/s", n as f64 / mean / 1e6);
            }
            Some(Throughput::Bytes(n)) => {
                print!("   {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0));
            }
            None => {}
        }
        println!();
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, preventing the result from being
    /// optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
