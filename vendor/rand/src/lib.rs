//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.10 API the simulator actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`]. The generator is a SplitMix64-seeded
//! xorshift64* — deterministic, seedable and statistically adequate for
//! test-data synthesis. Like the real `SmallRng`, it is NOT a
//! cryptographic generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> RngExt for G {}

/// Types a uniform sample can be drawn as.
///
/// Mirrors the real crate's `SampleUniform`: the single blanket impl of
/// [`SampleRange`] over this trait is what lets the compiler unify the
/// sample type with the range's element type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: f64, hi: f64, inclusive: bool, rng: &mut R) -> f64 {
        let denom = (1u64 << 53) as f64 - f64::from(u8::from(inclusive));
        let unit = (rng.next_u64() >> 11) as f64 / denom;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: f32, hi: f32, inclusive: bool, rng: &mut R) -> f32 {
        let denom = (1u32 << 24) as f32 - f32::from(u8::from(inclusive));
        let unit = (rng.next_u64() >> 40) as f32 / denom;
        lo + unit * (hi - lo)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small deterministic generator (SplitMix64-seeded xorshift64*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // One SplitMix64 step decorrelates adjacent seeds (including 0).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-1i64..=1);
            assert!((-1..=1).contains(&v));
            let f: f64 = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u: usize = rng.random_range(0..28);
            assert!(u < 28);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..u64::MAX) == b.random_range(0u64..u64::MAX))
            .count();
        assert!(same < 4, "streams should be decorrelated");
    }
}
