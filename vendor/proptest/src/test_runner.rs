//! Deterministic case generation and the test loop.

use crate::strategy::Strategy;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The generator behind every strategy sample (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> TestRng {
        // SplitMix64 step spreads adjacent seeds across the state space.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// The next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index below `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick below 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration (the supported subset: case count).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed test case (the message carries the `prop_assert*` report).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Samples inputs and runs the test body over them.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `test` over `config.cases` sampled inputs. The seed stream is
    /// derived from `name`, so a failure reproduces on the next run; the
    /// failing input is printed both for `Err` results and for panics
    /// raised by plain `assert!`s inside the body.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting its input.
    pub fn run_named<S: Strategy>(
        &mut self,
        name: &str,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            let mut rng = TestRng::new(base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9));
            let value = strategy.sample(&mut rng);
            let shown = format!("{value:?}");
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "proptest case failed: {e}\n  test: {name}, case {case}/{total}\n  input: {shown}",
                    total = self.config.cases
                ),
                Err(payload) => {
                    eprintln!(
                        "proptest case panicked\n  test: {name}, case {case}/{total}\n  input: {shown}",
                        total = self.config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
