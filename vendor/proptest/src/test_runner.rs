//! Deterministic case generation, the shrink loop, and failure
//! persistence.
//!
//! A test runs `cases` sampled inputs. The first failing input is shrunk
//! by walking its [`ValueTree`]: simplify while the case keeps failing,
//! complicate after an over-shrink, until no move remains (or the
//! iteration budget runs out). The minimal failing input, its seed and
//! the failure message are then reported; with persistence enabled the
//! seed is also appended to a regression file that is replayed first on
//! every subsequent run.
//!
//! Environment overrides:
//!
//! * `PROPTEST_CASES=N` — overrides the configured case count.
//! * `PROPTEST_SEED=0x…` — runs exactly one case from that seed
//!   (printed in every failure report), skipping normal generation.

use crate::strategy::{Strategy, ValueTree};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The generator behind every strategy sample (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> TestRng {
        // SplitMix64 step spreads adjacent seeds across the state space.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// The next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index below `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick below 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration (the supported subset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
    /// Budget of simplify/complicate steps while shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A failed test case (the message carries the `prop_assert*` report).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A shrunk counterexample: what [`TestRunner::run_collect`] returns when
/// a property fails.
#[derive(Debug)]
pub struct TestFailure<V> {
    /// The minimal failing input found by shrinking.
    pub value: V,
    /// Failure message of the minimal input.
    pub message: String,
    /// Seed of the original failing case (`PROPTEST_SEED` replays it).
    pub seed: u64,
    /// Index of the original failing case.
    pub case: u32,
    /// Simplify/complicate steps spent shrinking.
    pub shrink_iters: u32,
}

/// Suppresses the panic hook while property bodies run, so the hundreds
/// of intermediate panics raised during shrinking do not flood the
/// captured test output. Refcounted: concurrent property tests in the
/// same process share the suppression window.
struct QuietPanics;

static QUIET_DEPTH: Mutex<u32> = Mutex::new(0);

impl QuietPanics {
    fn new() -> QuietPanics {
        let mut depth = QUIET_DEPTH.lock().expect("quiet-panic lock");
        if *depth == 0 {
            std::panic::set_hook(Box::new(|_| {}));
        }
        *depth += 1;
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let mut depth = QUIET_DEPTH.lock().expect("quiet-panic lock");
        *depth -= 1;
        if *depth == 0 {
            // take_hook removes our silent hook and reinstates the default.
            drop(std::panic::take_hook());
        }
    }
}

/// Samples inputs, runs the test body over them and shrinks failures.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.config.cases)
    }

    fn env_seed() -> Option<u64> {
        let raw = std::env::var("PROPTEST_SEED").ok()?;
        let raw = raw.trim();
        if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        }
    }

    /// Runs `test` over sampled inputs; panics on the first failure with
    /// the shrunk minimal input. The seed stream is derived from `name`,
    /// so a failure reproduces on the next run.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting the minimal input.
    pub fn run_named<S: Strategy>(
        &mut self,
        name: &str,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        if let Some(failure) = self.run_collect(name, &[], strategy, &test) {
            Self::report(name, &failure);
        }
    }

    /// Like [`TestRunner::run_named`], but replays seeds persisted in
    /// `regression_dir/<stem of source_file>.txt` before generating new
    /// cases, and appends the seed of any new failure to that file.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting the minimal input.
    pub fn run_persisted<S: Strategy>(
        &mut self,
        name: &str,
        regression_dir: &str,
        source_file: &str,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        let path = regression_path(regression_dir, source_file);
        let replay = load_regression_seeds(&path, name);
        if let Some(failure) = self.run_collect(name, &replay, strategy, &test) {
            persist_regression_seed(&path, name, failure.seed, &format!("{:?}", failure.value));
            Self::report(name, &failure);
        }
    }

    /// Runs the property and returns the shrunk counterexample instead of
    /// panicking — the hook the differential suites use to assert that an
    /// injected defect is caught *and* minimized. `replay_seeds` run
    /// first (regression entries); then either the single `PROPTEST_SEED`
    /// case or the normal generated stream.
    pub fn run_collect<S: Strategy>(
        &mut self,
        name: &str,
        replay_seeds: &[u64],
        strategy: &S,
        test: &impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) -> Option<TestFailure<S::Value>> {
        let _quiet = QuietPanics::new();
        let base = fnv1a(name.as_bytes());
        let planned: Vec<u64> = if let Some(seed) = Self::env_seed() {
            vec![seed]
        } else {
            replay_seeds
                .iter()
                .copied()
                .chain(
                    (0..self.effective_cases())
                        .map(|case| base ^ u64::from(case).wrapping_mul(0x9E37_79B9)),
                )
                .collect()
        };
        for (case, seed) in planned.into_iter().enumerate() {
            let mut rng = TestRng::new(seed);
            let tree = strategy.new_tree(&mut rng);
            if let Err(message) = run_case(test, tree.current()) {
                return Some(self.shrink(tree, test, message, seed, case as u32));
            }
        }
        None
    }

    /// The shrink loop: simplify while failing, complicate after an
    /// over-shrink; remember the smallest input seen failing.
    fn shrink<T: ValueTree>(
        &self,
        mut tree: T,
        test: &impl Fn(T::Value) -> Result<(), TestCaseError>,
        first_message: String,
        seed: u64,
        case: u32,
    ) -> TestFailure<T::Value> {
        let mut best_value = tree.current();
        let mut best_message = first_message;
        let mut failed = true;
        let mut iters = 0u32;
        while iters < self.config.max_shrink_iters {
            let moved = if failed {
                tree.simplify()
            } else {
                tree.complicate()
            };
            if !moved {
                break;
            }
            iters += 1;
            match run_case(test, tree.current()) {
                Ok(()) => failed = false,
                Err(message) => {
                    failed = true;
                    best_value = tree.current();
                    best_message = message;
                }
            }
        }
        TestFailure {
            value: best_value,
            message: best_message,
            seed,
            case,
            shrink_iters: iters,
        }
    }

    fn report<V: fmt::Debug>(name: &str, failure: &TestFailure<V>) -> ! {
        panic!(
            "proptest: `{name}` failed\n  minimal input: {:?}\n  error: {}\n  \
             found in case {} after {} shrink steps\n  \
             rerun just this input with PROPTEST_SEED=0x{:016x}",
            failure.value, failure.message, failure.case, failure.shrink_iters, failure.seed
        );
    }
}

fn run_case<V: fmt::Debug>(
    test: &impl Fn(V) -> Result<(), TestCaseError>,
    value: V,
) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.0),
        // `&*payload` derefs through the Box: coercing `&payload` instead
        // would downcast the Box itself, which is never &str/String.
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// `<dir>/<source file stem>.txt` — one regression file per test source.
fn regression_path(dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("regressions");
    Path::new(dir).join(format!("{stem}.txt"))
}

/// Seeds previously persisted for `name` (missing file → none).
fn load_regression_seeds(path: &Path, name: &str) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let mut words = line.split_whitespace();
            if words.next() != Some(name) {
                return None;
            }
            let token = words.next()?;
            let hex = token.strip_prefix("0x").unwrap_or(token);
            u64::from_str_radix(hex, 16).ok()
        })
        .collect()
}

/// Appends `name 0x<seed> # shrunk: <value>` (deduplicated by seed).
fn persist_regression_seed(path: &Path, name: &str, seed: u64, shrunk: &str) {
    if load_regression_seeds(path, name).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut shown: String = shrunk.replace('\n', " ");
    if shown.len() > 200 {
        shown.truncate(200);
        shown.push('…');
    }
    let line = format!("{name} 0x{seed:016x} # shrunk: {shown}\n");
    use std::io::Write as _;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_threshold_property_to_boundary() {
        // "x < 42" fails for x >= 42; the minimal counterexample is 42.
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let failure = runner
            .run_collect("meta_threshold", &[], &(0u64..100_000), &|x| {
                if x < 42 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail(format!("{x} >= 42")))
                }
            })
            .expect("property must fail");
        assert_eq!(failure.value, 42, "shrinking must find the exact boundary");
        assert!(failure.shrink_iters > 0, "shrinking must have run");
    }

    #[test]
    fn shrinks_tuple_to_minimal_pair() {
        // Fails when the sum crosses a threshold; minimal failing pair
        // keeps one component at its floor.
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let failure = runner
            .run_collect("meta_pair", &[], &(0u32..1000, 0u32..1000), &|(a, b)| {
                if u64::from(a) + u64::from(b) < 100 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("sum too large"))
                }
            })
            .expect("property must fail");
        let (a, b) = failure.value;
        assert_eq!(
            u64::from(a) + u64::from(b),
            100,
            "minimal sum is exactly 100"
        );
    }

    #[test]
    fn shrink_catches_panicking_bodies() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        let failure = runner
            .run_collect("meta_panic", &[], &(0i32..1000), &|x| {
                assert!(x < 10, "boom {x}");
                Ok(())
            })
            .expect("property must fail");
        assert_eq!(failure.value, 10);
        assert!(failure.message.contains("boom"));
    }

    #[test]
    fn passing_property_returns_none() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(128));
        let ok = runner.run_collect("meta_pass", &[], &(0u8..255), &|_| Ok(()));
        assert!(ok.is_none());
    }

    #[test]
    fn replay_seeds_run_before_generated_cases() {
        // A property that fails only for one specific planted value; the
        // replayed seed must reproduce it even with zero generated cases.
        let mut runner = TestRunner::new(ProptestConfig::with_cases(0));
        let seed = 0xDEAD_BEEF;
        let failure = runner
            .run_collect("meta_replay", &[seed], &(0u64..u64::MAX), &|_| {
                Err(TestCaseError::fail("always fails"))
            })
            .expect("replayed seed must fail");
        assert_eq!(failure.seed, seed);
    }

    #[test]
    fn regression_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("proptest-meta-{}", std::process::id()));
        let dir_str = dir.to_str().unwrap().to_string();
        let path = regression_path(&dir_str, "tests/some_suite.rs");
        let _ = std::fs::remove_file(&path);
        persist_regression_seed(&path, "prop_a", 0x1234, "(1, 2)");
        persist_regression_seed(&path, "prop_b", 0x5678, "huge\nvalue");
        persist_regression_seed(&path, "prop_a", 0x1234, "(1, 2)"); // dup: dropped
        assert_eq!(load_regression_seeds(&path, "prop_a"), vec![0x1234]);
        assert_eq!(load_regression_seeds(&path, "prop_b"), vec![0x5678]);
        assert_eq!(load_regression_seeds(&path, "prop_c"), Vec::<u64>::new());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2, "duplicate seed must dedup");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrink_budget_caps_iterations() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 4,
            max_shrink_iters: 3,
        });
        let failure = runner
            .run_collect("meta_budget", &[], &(0u64..u64::MAX), &|_| {
                Err(TestCaseError::fail("always"))
            })
            .expect("must fail");
        assert!(failure.shrink_iters <= 3);
    }
}
