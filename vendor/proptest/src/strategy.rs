//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps resampling until `f` returns `Some`; `reason` names the
    /// constraint in the exhaustion panic.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map: no candidate satisfied `{}` in 10000 tries",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among alternatives (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty list of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs alternatives");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
