//! Value-generation strategies with integrated shrinking.
//!
//! Every [`Strategy`] produces a [`ValueTree`]: the sampled value plus the
//! local search space around it. When a case fails, the runner walks the
//! tree — [`ValueTree::simplify`] moves toward a simpler candidate,
//! [`ValueTree::complicate`] backs off after an over-shrink — until it
//! arrives at a minimal failing input.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generated value together with the shrink search space around it.
///
/// The runner's shrink loop alternates the two moves: while the current
/// value still fails, `simplify`; when a move went too far and the value
/// passes, `complicate`. Both return `false` once no further candidate
/// exists in that direction. Implementations must terminate: the sequence
/// of successful moves is finite for every tree.
pub trait ValueTree {
    /// The generated type.
    type Value: Debug;

    /// The value this tree currently represents.
    fn current(&self) -> Self::Value;

    /// Moves to a simpler candidate. `false` if none remains.
    fn simplify(&mut self) -> bool;

    /// Moves back toward the last known-failing value. `false` if none
    /// remains.
    fn complicate(&mut self) -> bool;
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// The tree produced by [`Strategy::new_tree`].
    type Tree: ValueTree<Value = Self::Value>;

    /// Draws one value together with its shrink search space.
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree;

    /// Draws one value, discarding the shrink information.
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.new_tree(rng).current()
    }

    /// Transforms every generated value through `f`. Shrinking happens on
    /// the underlying strategy; `f` re-applies on every candidate.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f: Arc::new(f),
        }
    }

    /// Keeps resampling until `f` returns `Some`; `reason` names the
    /// constraint in the exhaustion panic. During shrinking, candidates
    /// rejected by `f` are skipped.
    fn prop_filter_map<O: Debug + Clone, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f: Arc::new(f),
            reason,
        }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Tree: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Binary search over an integer magnitude: the engine behind every
/// numeric shrink. Values are offsets from an *origin* (the simplest
/// value, usually 0 clamped into range); the search keeps the invariant
/// `lo <= curr <= hi` on magnitudes, where `hi` tracks the smallest
/// known-failing magnitude and `lo` bounds the passing region.
#[derive(Clone, Debug)]
pub(crate) struct BinarySearch {
    origin: i128,
    sign: i128,
    lo: i128,
    curr: i128,
    hi: i128,
}

impl BinarySearch {
    pub(crate) fn new(origin: i128, value: i128) -> BinarySearch {
        let off = value - origin;
        BinarySearch {
            origin,
            sign: off.signum(),
            lo: 0,
            curr: off.abs(),
            hi: off.abs(),
        }
    }

    pub(crate) fn current(&self) -> i128 {
        self.origin + self.sign * self.curr
    }

    pub(crate) fn simplify(&mut self) -> bool {
        if self.curr <= self.lo {
            return false;
        }
        self.hi = self.curr;
        // Midpoint rounds toward `lo`, so `curr` strictly decreases.
        self.curr = self.lo + (self.hi - self.lo) / 2;
        true
    }

    pub(crate) fn complicate(&mut self) -> bool {
        if self.curr >= self.hi {
            return false;
        }
        self.lo = self.curr + 1;
        self.curr = self.lo + (self.hi - self.lo) / 2;
        true
    }
}

/// Shrinking tree for a primitive integer type.
#[derive(Clone, Debug)]
pub struct IntTree<T> {
    search: BinarySearch,
    _marker: PhantomData<T>,
}

macro_rules! int_tree {
    ($($t:ty),*) => {$(
        impl ValueTree for IntTree<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn current(&self) -> $t {
                self.search.current() as $t
            }

            fn simplify(&mut self) -> bool {
                self.search.simplify()
            }

            fn complicate(&mut self) -> bool {
                self.search.complicate()
            }
        }
    )*};
}

int_tree!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn int_tree_in<T>(lo: i128, hi_incl: i128, value: i128) -> IntTree<T> {
    let origin = 0i128.clamp(lo.min(hi_incl), hi_incl.max(lo));
    IntTree {
        search: BinarySearch::new(origin, value),
        _marker: PhantomData,
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Arc<F>,
}

/// Tree for [`Map`].
pub struct MapTree<T, F> {
    inner: T,
    f: Arc<F>,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        MapTree {
            inner: self.inner.new_tree(rng),
            f: Arc::clone(&self.f),
        }
    }
}

impl<T: ValueTree, O: Debug, F: Fn(T::Value) -> O> ValueTree for MapTree<T, F> {
    type Value = O;

    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: Arc<F>,
    reason: &'static str,
}

/// Tree for [`FilterMap`]: caches the last accepted mapped value so that
/// rejected shrink candidates can be skipped without losing the current
/// value.
pub struct FilterMapTree<T, F, O> {
    inner: T,
    f: Arc<F>,
    curr: O,
}

impl<S: Strategy, O: Debug + Clone, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    type Tree = FilterMapTree<S::Tree, F, O>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        for _ in 0..10_000 {
            let tree = self.inner.new_tree(rng);
            if let Some(v) = (self.f)(tree.current()) {
                return FilterMapTree {
                    inner: tree,
                    f: Arc::clone(&self.f),
                    curr: v,
                };
            }
        }
        panic!(
            "prop_filter_map: no candidate satisfied `{}` in 10000 tries",
            self.reason
        );
    }
}

impl<T: ValueTree, O: Debug + Clone, F: Fn(T::Value) -> Option<O>> ValueTree
    for FilterMapTree<T, F, O>
{
    type Value = O;

    fn current(&self) -> O {
        self.curr.clone()
    }

    fn simplify(&mut self) -> bool {
        // Skip over candidates the filter rejects; the underlying tree's
        // own termination bounds this loop.
        while self.inner.simplify() {
            if let Some(v) = (self.f)(self.inner.current()) {
                self.curr = v;
                return true;
            }
        }
        false
    }

    fn complicate(&mut self) -> bool {
        while self.inner.complicate() {
            if let Some(v) = (self.f)(self.inner.current()) {
                self.curr = v;
                return true;
            }
        }
        false
    }
}

/// Always produces a clone of the given value. Does not shrink.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

/// Tree for [`Just`].
#[derive(Clone, Debug)]
pub struct JustTree<T>(T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    type Tree = JustTree<T>;

    fn new_tree(&self, _rng: &mut TestRng) -> JustTree<T> {
        JustTree(self.0.clone())
    }
}

impl<T: Clone + Debug> ValueTree for JustTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }

    fn simplify(&mut self) -> bool {
        false
    }

    fn complicate(&mut self) -> bool {
        false
    }
}

trait DynValueTree<V> {
    fn dyn_current(&self) -> V;
    fn dyn_simplify(&mut self) -> bool;
    fn dyn_complicate(&mut self) -> bool;
}

impl<T: ValueTree> DynValueTree<T::Value> for T {
    fn dyn_current(&self) -> T::Value {
        self.current()
    }

    fn dyn_simplify(&mut self) -> bool {
        self.simplify()
    }

    fn dyn_complicate(&mut self) -> bool {
        self.complicate()
    }
}

/// A type-erased value tree.
pub struct BoxedValueTree<V>(Box<dyn DynValueTree<V>>);

impl<V: Debug> ValueTree for BoxedValueTree<V> {
    type Value = V;

    fn current(&self) -> V {
        self.0.dyn_current()
    }

    fn simplify(&mut self) -> bool {
        self.0.dyn_simplify()
    }

    fn complicate(&mut self) -> bool {
        self.0.dyn_complicate()
    }
}

trait DynStrategy<V> {
    fn dyn_new_tree(&self, rng: &mut TestRng) -> BoxedValueTree<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S
where
    S::Tree: 'static,
{
    fn dyn_new_tree(&self, rng: &mut TestRng) -> BoxedValueTree<S::Value> {
        BoxedValueTree(Box::new(self.new_tree(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    type Tree = BoxedValueTree<V>;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedValueTree<V> {
        self.0.dyn_new_tree(rng)
    }
}

/// Uniform choice among alternatives (built by [`crate::prop_oneof!`]).
/// Shrinking stays within the chosen alternative.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty list of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs alternatives");
        Union { options }
    }
}

impl<V: Debug + 'static> Strategy for Union<V> {
    type Value = V;
    type Tree = BoxedValueTree<V>;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedValueTree<V> {
        let i = rng.below(self.options.len());
        self.options[i].new_tree(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Debug + Sized {
    /// The tree [`Arbitrary::arbitrary_tree`] produces.
    type Tree: ValueTree<Value = Self>;

    /// Draws one value from the type's full domain, with shrink space.
    fn arbitrary_tree(rng: &mut TestRng) -> Self::Tree;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Tree = IntTree<$t>;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary_tree(rng: &mut TestRng) -> IntTree<$t> {
                let value = rng.next_u64() as $t;
                IntTree {
                    search: BinarySearch::new(0, value as i128),
                    _marker: PhantomData,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tree for `any::<bool>()`: shrinks `true` to `false` exactly once.
#[derive(Clone, Debug)]
pub struct BoolTree {
    curr: bool,
    state: BoolShrink,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BoolShrink {
    Untouched,
    Simplified,
    Done,
}

impl ValueTree for BoolTree {
    type Value = bool;

    fn current(&self) -> bool {
        self.curr
    }

    fn simplify(&mut self) -> bool {
        if self.curr && self.state == BoolShrink::Untouched {
            self.curr = false;
            self.state = BoolShrink::Simplified;
            true
        } else {
            false
        }
    }

    fn complicate(&mut self) -> bool {
        if self.state == BoolShrink::Simplified {
            self.curr = true;
            self.state = BoolShrink::Done;
            true
        } else {
            false
        }
    }
}

impl Arbitrary for bool {
    type Tree = BoolTree;

    fn arbitrary_tree(rng: &mut TestRng) -> BoolTree {
        BoolTree {
            curr: rng.next_u64() & 1 == 1,
            state: BoolShrink::Untouched,
        }
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    type Tree = T::Tree;

    fn new_tree(&self, rng: &mut TestRng) -> T::Tree {
        T::arbitrary_tree(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Tree = IntTree<$t>;

            fn new_tree(&self, rng: &mut TestRng) -> IntTree<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as i128, self.end as i128 - 1);
                let span = (hi - lo) as u128 + 1;
                let v = lo + (u128::from(rng.next_u64()) % span) as i128;
                int_tree_in(lo, hi, v)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            type Tree = IntTree<$t>;

            fn new_tree(&self, rng: &mut TestRng) -> IntTree<$t> {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let v = lo + (u128::from(rng.next_u64()) % span) as i128;
                int_tree_in(lo, hi, v)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tree for `Range<f64>`: bisection toward the range start, stopping once
/// the remaining interval drops below a relative epsilon.
#[derive(Clone, Debug)]
pub struct F64Tree {
    lo: f64,
    curr: f64,
    hi: f64,
    eps: f64,
}

impl ValueTree for F64Tree {
    type Value = f64;

    fn current(&self) -> f64 {
        self.curr
    }

    fn simplify(&mut self) -> bool {
        if self.curr - self.lo <= self.eps {
            return false;
        }
        self.hi = self.curr;
        self.curr = self.lo + (self.hi - self.lo) / 2.0;
        true
    }

    fn complicate(&mut self) -> bool {
        if self.hi - self.curr <= self.eps {
            return false;
        }
        self.lo = self.curr;
        self.curr = self.curr + (self.hi - self.curr) / 2.0;
        true
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    type Tree = F64Tree;

    fn new_tree(&self, rng: &mut TestRng) -> F64Tree {
        assert!(self.start < self.end, "empty range strategy");
        let curr = self.start + rng.unit_f64() * (self.end - self.start);
        F64Tree {
            lo: self.start,
            curr,
            hi: curr,
            eps: (self.end - self.start) * 1e-6,
        }
    }
}

/// Tree for tuples: shrinks one component at a time, left to right;
/// `complicate` undoes the last component simplified.
pub struct TupleTree<T> {
    trees: T,
    last: Option<usize>,
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            type Tree = TupleTree<($($s::Tree,)+)>;

            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                TupleTree {
                    trees: ($(self.$idx.new_tree(rng),)+),
                    last: None,
                }
            }
        }

        impl<$($s: ValueTree),+> ValueTree for TupleTree<($($s,)+)> {
            type Value = ($($s::Value,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                $(
                    if self.trees.$idx.simplify() {
                        self.last = Some($idx);
                        return true;
                    }
                )+
                false
            }

            fn complicate(&mut self) -> bool {
                match self.last {
                    $(Some($idx) => self.trees.$idx.complicate(),)+
                    _ => false,
                }
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_search_converges_to_threshold() {
        // Property "fails iff x >= 42": the search must land exactly on 42.
        let mut bs = BinarySearch::new(0, 800);
        let fails = |x: i128| x >= 42;
        let mut best = bs.current();
        let mut failed = true;
        for _ in 0..200 {
            let moved = if failed {
                bs.simplify()
            } else {
                bs.complicate()
            };
            if !moved {
                break;
            }
            failed = fails(bs.current());
            if failed {
                best = bs.current();
            }
        }
        assert_eq!(best, 42);
    }

    #[test]
    fn int_tree_respects_range_bounds() {
        let strat = 5usize..17;
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let mut tree = strat.new_tree(&mut rng);
            loop {
                let v = tree.current();
                assert!((5..17).contains(&v), "value {v} escaped range");
                if !tree.simplify() {
                    break;
                }
            }
            // Fully simplified value is the range minimum (origin).
            assert_eq!(tree.current(), 5);
        }
    }

    #[test]
    fn negative_range_shrinks_toward_zero_side() {
        let strat = -50i32..-9;
        let mut rng = TestRng::new(9);
        let mut tree = strat.new_tree(&mut rng);
        while tree.simplify() {}
        assert_eq!(tree.current(), -10);
    }

    #[test]
    fn bool_tree_simplifies_once() {
        let mut t = BoolTree {
            curr: true,
            state: BoolShrink::Untouched,
        };
        assert!(t.simplify());
        assert!(!t.current());
        assert!(!t.simplify());
        assert!(t.complicate());
        assert!(t.current());
        assert!(!t.complicate());
        assert!(!t.simplify(), "bool tree must not oscillate");
    }

    #[test]
    fn f64_tree_stays_in_range_and_terminates() {
        let strat = -2.0f64..2.0;
        let mut rng = TestRng::new(11);
        let mut tree = strat.new_tree(&mut rng);
        let mut steps = 0;
        while tree.simplify() {
            steps += 1;
            assert!((-2.0..2.0).contains(&tree.current()));
            assert!(steps < 100, "f64 shrink must terminate");
        }
    }

    #[test]
    fn tuple_tree_shrinks_componentwise() {
        let strat = (0u32..100, 0u32..100);
        let mut rng = TestRng::new(7);
        let mut tree = strat.new_tree(&mut rng);
        while tree.simplify() {}
        assert_eq!(tree.current(), (0, 0));
    }

    #[test]
    fn map_tree_reapplies_function() {
        let strat = (0i64..100).prop_map(|x| x * 2);
        let mut rng = TestRng::new(13);
        let mut tree = strat.new_tree(&mut rng);
        assert_eq!(tree.current() % 2, 0);
        while tree.simplify() {}
        assert_eq!(tree.current(), 0);
    }

    #[test]
    fn filter_map_skips_rejected_candidates() {
        // Only odd values survive; shrinking must land on the smallest odd.
        let strat = (0u32..1000).prop_filter_map("odd", |x| (x % 2 == 1).then_some(x));
        let mut rng = TestRng::new(17);
        let mut tree = strat.new_tree(&mut rng);
        assert_eq!(tree.current() % 2, 1);
        while tree.simplify() {
            assert_eq!(tree.current() % 2, 1, "filter must hold during shrink");
        }
        assert_eq!(tree.current(), 1);
    }

    #[test]
    fn just_never_shrinks() {
        let mut rng = TestRng::new(1);
        let mut tree = Just(7u8).new_tree(&mut rng);
        assert!(!tree.simplify());
        assert!(!tree.complicate());
        assert_eq!(tree.current(), 7);
    }
}
