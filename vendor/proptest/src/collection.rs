//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Lengths a generated collection may take.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
