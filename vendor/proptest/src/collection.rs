//! Collection strategies.

use crate::strategy::{BinarySearch, Strategy, ValueTree};
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Lengths a generated collection may take.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    type Tree = VecTree<S::Tree>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        VecTree {
            elems: (0..len).map(|_| self.element.new_tree(rng)).collect(),
            len: BinarySearch::new(self.size.min as i128, len as i128),
            in_element_phase: false,
            elem_idx: 0,
            last_was_len: false,
        }
    }
}

/// Tree for [`vec`]: first binary-searches the length down toward the
/// minimum (dropping trailing elements), then shrinks the surviving
/// elements one at a time.
pub struct VecTree<T> {
    elems: Vec<T>,
    len: BinarySearch,
    in_element_phase: bool,
    elem_idx: usize,
    last_was_len: bool,
}

impl<T: ValueTree> VecTree<T> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn current_len(&self) -> usize {
        self.len.current() as usize
    }
}

impl<T: ValueTree> ValueTree for VecTree<T> {
    type Value = Vec<T::Value>;

    fn current(&self) -> Vec<T::Value> {
        self.elems[..self.current_len()]
            .iter()
            .map(ValueTree::current)
            .collect()
    }

    fn simplify(&mut self) -> bool {
        if !self.in_element_phase {
            if self.len.simplify() {
                self.last_was_len = true;
                return true;
            }
            self.in_element_phase = true;
        }
        while self.elem_idx < self.current_len() {
            if self.elems[self.elem_idx].simplify() {
                self.last_was_len = false;
                return true;
            }
            self.elem_idx += 1;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        if self.last_was_len {
            self.len.complicate()
        } else if self.elem_idx < self.current_len() {
            self.elems[self.elem_idx].complicate()
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_tree_shrinks_length_then_elements() {
        let strat = vec(0u32..100, 3..20);
        let mut rng = TestRng::new(5);
        let mut tree = strat.new_tree(&mut rng);
        while tree.simplify() {}
        let minimal = tree.current();
        assert_eq!(minimal.len(), 3, "length must shrink to the minimum");
        assert!(minimal.iter().all(|&x| x == 0), "elements must shrink to 0");
    }

    #[test]
    fn vec_tree_respects_size_bounds() {
        let strat = vec(0u8..10, 2..=5);
        let mut rng = TestRng::new(8);
        for _ in 0..50 {
            let mut tree = strat.new_tree(&mut rng);
            loop {
                let len = tree.current().len();
                assert!((2..=5).contains(&len), "length {len} out of bounds");
                if !tree.simplify() {
                    break;
                }
            }
        }
    }

    #[test]
    fn fixed_size_vec_skips_length_search() {
        let strat = vec(0u16..50, 4);
        let mut rng = TestRng::new(2);
        let mut tree = strat.new_tree(&mut rng);
        while tree.simplify() {}
        assert_eq!(tree.current(), vec![0, 0, 0, 0]);
    }
}
