//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest 1.x API its property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range /
//! tuple / [`strategy::Just`] / [`strategy::any`] strategies,
//! `prop_map` / `prop_filter_map`, [`prop_oneof!`],
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike the original stub, this is a real property-testing engine:
//!
//! * **Shrinking.** Every strategy yields a [`strategy::ValueTree`]; on
//!   failure the runner binary-searches integers toward their origin,
//!   drops vector elements, and simplifies tuple components until it
//!   reports a *minimal* failing input.
//! * **Seed persistence.** Failures found through the [`proptest!`]
//!   macro append their seed to
//!   `<crate>/proptest-regressions/<file>.txt`; those seeds replay
//!   before new cases on every later run, so a fixed bug stays fixed.
//! * **Env overrides.** `PROPTEST_CASES=N` scales the case budget (CI
//!   pins it; `ci.sh --fuzz` raises it); `PROPTEST_SEED=0x…` replays
//!   exactly one failing case from its reported seed.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestFailure, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new(config);
                // env!() expands in the crate that *uses* the macro, so
                // regression files land next to that crate's Cargo.toml
                // regardless of the test process working directory.
                runner.run_persisted(
                    stringify!($name),
                    concat!(env!("CARGO_MANIFEST_DIR"), "/proptest-regressions"),
                    file!(),
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
