//! Training demonstration: teach an MLP to classify synthetic digits with
//! the fixed-point backpropagation reference (the same MAC/LUT arithmetic
//! the hardware uses), then run the trained network on the Neurocube and
//! report both the timing of inference and of one simulated training step.
//!
//! ```sh
//! cargo run --release -p neurocube --example mnist_mlp
//! ```

use neurocube::{Neurocube, SystemConfig};
use neurocube_fixed::Q88;
use neurocube_nn::{workloads, Executor, Trainer, TrainerConfig};

fn main() {
    // A small MLP over 28x28 "digits" (procedurally generated — see
    // DESIGN.md on the dataset substitution).
    let spec = workloads::mnist_mlp(16);
    println!("MLP:\n{spec}");
    // Fixed-point SGD: the learning rate must be large enough that
    // gradient updates clear the 1/256 quantum of Q1.7.8.
    let exec = Executor::new(spec.clone(), spec.init_params(21, 0.05));
    let mut trainer = Trainer::new(
        exec,
        TrainerConfig {
            learning_rate: Q88::from_f64(2.0),
        },
    );

    let train = workloads::digit_dataset(100, 3);
    let losses = trainer.fit(&train, 10);
    println!(
        "training loss per epoch: {:?}",
        losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    let exec = trainer.into_executor();
    let mut correct = 0;
    let total = train.len();
    for (img, target) in &train {
        if exec.predict(img).argmax() == target.argmax() {
            correct += 1;
        }
    }
    println!(
        "training-set accuracy: {correct}/{total} (chance: {})",
        total / 10
    );

    // Now put the trained network on the cube and measure inference +
    // one training step.
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec, exec.params().to_vec());
    let sample = workloads::synthetic_digit(9999, 3);
    let (out, inference) = cube.run_inference(&loaded, &sample);
    assert_eq!(out, exec.predict(&sample), "cube matches trained reference");
    println!(
        "\ncycle-accurate inference: {} cycles, {:.1} GOPs/s @5GHz, class {}",
        inference.total_cycles(),
        inference.throughput_gops(),
        out.argmax()
    );
    let training = cube.run_training_step(&loaded, &sample);
    println!(
        "one simulated training step: {} cycles over {} passes, {:.1} GOPs/s @5GHz",
        training.total_cycles(),
        training.layers.len(),
        training.throughput_gops()
    );
}
