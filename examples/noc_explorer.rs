//! Architecture exploration: how NoC topology and memory concurrency shape
//! throughput for one convolutional layer — an interactive version of the
//! paper's Fig. 15 studies.
//!
//! ```sh
//! cargo run --release -p neurocube --example noc_explorer
//! ```

use neurocube::{Neurocube, RunReport, SystemConfig};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{LayerSpec, NetworkSpec, Shape, Tensor};

fn run(cfg: SystemConfig, spec: &NetworkSpec) -> RunReport {
    let params = spec.init_params(3, 0.25);
    let mut cube = Neurocube::new(cfg);
    let loaded = cube.load(spec.clone(), params);
    let s = spec.input_shape();
    let input = Tensor::from_vec(
        s.channels,
        s.height,
        s.width,
        (0..s.len())
            .map(|i| Q88::from_bits((i % 251) as i16))
            .collect(),
    );
    let (_, report) = cube.run_inference(&loaded, &input);
    report
}

fn main() {
    let spec = NetworkSpec::new(
        Shape::new(1, 64, 64),
        vec![LayerSpec::conv(16, 7, Activation::Tanh)],
    )
    .expect("valid geometry");
    println!("workload: conv 7x7, 16 maps, 64x64 input\n");
    println!(
        "{:<34} {:>10} {:>10} {:>10}",
        "configuration", "GOPs/s", "lateral%", "latency"
    );
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("HMC 16ch, mesh, duplication", SystemConfig::paper(true)),
        ("HMC 16ch, mesh, no duplication", SystemConfig::paper(false)),
        (
            "HMC 16ch, fully-connected NoC",
            SystemConfig::fully_connected_noc(false),
        ),
        ("HMC 8 channels", SystemConfig::hmc_with_channels(8)),
        ("HMC 4 channels", SystemConfig::hmc_with_channels(4)),
        ("HMC 2 channels", SystemConfig::hmc_with_channels(2)),
        ("DDR3 2 channels", SystemConfig::ddr3()),
    ];
    for (name, cfg) in configs {
        let r = run(cfg, &spec);
        println!(
            "{:<34} {:>10.1} {:>9.1}% {:>10.1}",
            name,
            r.throughput_gops(),
            100.0 * r.lateral_fraction(),
            r.layers[0].noc_mean_latency
        );
    }
    println!(
        "\nreadings: duplication removes conv lateral traffic; the fully connected NoC\n\
         shortens paths but cannot fix a memory-concurrency shortage; DDR3's two\n\
         controllers throttle all sixteen PEs (the paper's Fig. 15(a) conclusion)."
    );
}
