//! The paper's flagship workload: the 7-layer scene-labeling ConvNN
//! (Fig. 9) running on the Neurocube, with and without data duplication.
//!
//! ```sh
//! cargo run --release -p neurocube --example scene_labeling [height width]
//! ```
//!
//! Defaults to an 80×60 input so the cycle-level run finishes in seconds;
//! pass `240 320` for the paper's full geometry.

use neurocube::{Neurocube, SystemConfig};
use neurocube_nn::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (h, w) = match args.as_slice() {
        [_, h, w] => (
            h.parse().expect("height must be a number"),
            w.parse().expect("width must be a number"),
        ),
        _ => (60, 80),
    };
    let spec = workloads::scene_labeling(h, w)
        .expect("input too small for three 7x7 conv + pooling stages (min ~46x46)");
    println!("scene labeling ConvNN on a {w}x{h} RGB input:\n{spec}");
    let params = spec.init_params(9, 0.2);
    let scene = workloads::synthetic_scene(7, h, w);

    for duplicate in [true, false] {
        let label = if duplicate {
            "with duplication"
        } else {
            "without duplication"
        };
        println!("--- {label} ---");
        let mut cube = Neurocube::new(SystemConfig::paper(duplicate));
        let loaded = cube.load(spec.clone(), params.clone());
        let (output, report) = cube.run_inference(&loaded, &scene);
        println!("{report}");
        println!(
            "class scores: {:?} -> class {}",
            output
                .as_slice()
                .iter()
                .map(|q| (q.to_f64() * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            output.argmax()
        );
        println!(
            "frames/s: {:.2} @300MHz (28nm), {:.1} @5GHz (15nm); DRAM energy {:.2} mJ/frame\n",
            report.frames_per_second_at(300.0e6),
            report.frames_per_second_at(5.0e9),
            report.dram_energy_j() * 1e3
        );
    }
}
