//! Quickstart: load a small network into the Neurocube, run one inference
//! cycle-accurately, and check the result against the functional reference.
//!
//! ```sh
//! cargo run --release -p neurocube --example quickstart
//! ```

use neurocube::{Neurocube, SystemConfig};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{Executor, LayerSpec, NetworkSpec, Shape, Tensor};

fn main() {
    // 1. Describe a network, exactly as the host would: a 16x16 image,
    //    one conv layer, average pooling, a small classifier.
    let spec = NetworkSpec::new(
        Shape::new(1, 16, 16),
        vec![
            LayerSpec::conv(4, 3, Activation::ReLU),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::fc(10, Activation::Sigmoid),
        ],
    )
    .expect("valid geometry");
    let params = spec.init_params(42, 0.25);
    println!("network:\n{spec}");

    // 2. Build the paper's design point: 16-vault HMC, 4x4 mesh NoC,
    //    16 MACs per PE, input duplication on.
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params.clone());

    // 3. Make an input and run it through the cube, cycle by cycle.
    let input = Tensor::from_vec(
        1,
        16,
        16,
        (0..256)
            .map(|i| Q88::from_f64(((i % 16) as f64 - 8.0) / 8.0))
            .collect(),
    );
    let (output, report) = cube.run_inference(&loaded, &input);

    // 4. The timing simulator is value-accurate: its output is
    //    bit-identical to the functional fixed-point executor. With a
    //    fault injector attached (NEUROCUBE_FAULT_RATE > 0) the outputs
    //    legitimately diverge, so the check only applies to clean runs.
    let reference = Executor::new(spec, params).predict(&input);
    if report.fault.is_none() {
        assert_eq!(output, reference, "simulator must match the reference");
        println!("cycle-accurate output matches the functional reference bit-for-bit");
    } else {
        let changed = output
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        println!(
            "fault injection active: {changed}/{} output values differ from the \
             fault-free reference",
            reference.as_slice().len()
        );
    }
    println!("predicted class: {}", output.argmax());

    // 5. Performance statistics, per layer and total.
    println!("\n{report}");
    println!(
        "at the 15nm/5GHz design point this run takes {:.2} µs ({:.0} inferences/s)",
        report.seconds_at(5.0e9) * 1e6,
        report.frames_per_second_at(5.0e9)
    );
    println!(
        "\nnext: `cargo run --release -p neurocube-serve --example serve_demo` serves a\n\
         multi-tenant request stream over a pool of cubes — dynamic batching,\n\
         model-affinity placement, and deadline-aware load shedding."
    );
}
