//! The §VI extension in action: a recurrent network running on the
//! Neurocube as an unfolded MLP ("RNN is equivalent to a deep MLP after
//! unfolding in time"), bit-exact against the direct recurrence.
//!
//! ```sh
//! cargo run --release -p neurocube --example rnn_sequence
//! ```

use neurocube::{Neurocube, SystemConfig};
use neurocube_fixed::{AccumulatorWidth, Activation, Q88};
use neurocube_nn::{RecurrentSpec, Tensor};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // A small sequence model: 8 features per step, 12 hidden units,
    // 4 output classes, 6 timesteps. ReLU hidden state — the activation
    // class for which unfolding carries future inputs exactly (see the
    // neurocube_nn::recurrent docs for why tanh RNNs cannot unfold
    // losslessly).
    let rnn = RecurrentSpec {
        inputs: 8,
        hidden: 12,
        outputs: 4,
        activation: Activation::ReLU,
        output_activation: Activation::Sigmoid,
        steps: 6,
    };
    let mut rng = SmallRng::seed_from_u64(17);
    let (nx, nh, no) = rnn.weight_counts();
    let rand_w = |rng: &mut SmallRng, n: usize| -> Vec<Q88> {
        (0..n)
            .map(|_| Q88::from_f64(rng.random_range(-0.3..0.3)))
            .collect()
    };
    let w_x = rand_w(&mut rng, nx);
    let w_h = rand_w(&mut rng, nh);
    let w_o = rand_w(&mut rng, no);
    // Non-negative input sequence (exact ReLU carry).
    let xs: Vec<Vec<Q88>> = (0..rnn.steps)
        .map(|_| {
            (0..rnn.inputs)
                .map(|_| Q88::from_f64(rng.random_range(0.0..1.0)))
                .collect()
        })
        .collect();

    // Reference: step the recurrence directly.
    let direct = rnn.run_direct(&w_x, &w_h, &w_o, &xs, AccumulatorWidth::Wide32);

    // Unfold to an MLP and run it cycle-accurately on the cube.
    let spec = rnn.unfold().expect("valid recurrence");
    println!("unfolded network:\n{spec}");
    let params = rnn.unfolded_params(&w_x, &w_h, &w_o);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec, params);
    let (out, report) = cube.run_inference(&loaded, &rnn.pack_input(&xs));

    assert_eq!(
        out,
        Tensor::from_flat(direct.clone()),
        "unfolded-on-cube must equal the direct recurrence"
    );
    println!(
        "direct recurrence output : {:?}",
        direct.iter().map(|q| q.to_f64()).collect::<Vec<_>>()
    );
    println!("unfolded-on-Neurocube    : identical, bit-for-bit");
    println!(
        "\n{} unfolded layers in {} cycles ({:.1} GOPs/s @5GHz; carry rows add {:.1}% overhead ops)",
        report.layers.len(),
        report.total_cycles(),
        report.throughput_gops(),
        {
            let useful: u64 = {
                let per_step = (rnn.hidden * (rnn.hidden + rnn.inputs)) as u64;
                (per_step * rnn.steps as u64 + (rnn.outputs * rnn.hidden) as u64) * 2
            };
            100.0 * (report.total_ops() as f64 - useful as f64) / useful as f64
        }
    );
}
