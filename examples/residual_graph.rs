//! Graph compiler demo: build a residual layer DAG, compile it onto the
//! cube once, and run it pipelined — no host round-trips between layers.
//!
//! ```sh
//! cargo run --release -p neurocube-golden --example residual_graph
//! ```

use neurocube::{Neurocube, ProgrammingModel, SystemConfig};
use neurocube_fixed::{Activation, Q88};
use neurocube_golden::{plan_graph, GoldenGraph};
use neurocube_nn::{GraphBuilder, LayerSpec, Shape, Tensor, INPUT};

fn main() {
    // 1. Describe a ResNet-style DAG, node by node: a conv stem, a 1x1
    //    branch, their element-wise sum, pooling, and an FC head. The
    //    builder validates names, shapes and acyclicity.
    let mut g = GraphBuilder::new(Shape::new(1, 12, 12));
    g.layer("stem", INPUT, LayerSpec::conv(4, 3, Activation::Tanh));
    g.layer(
        "branch",
        "stem",
        LayerSpec::conv(4, 1, Activation::Identity),
    );
    g.add("res", &["stem", "branch"], Activation::ReLU);
    g.layer("pool", "res", LayerSpec::AvgPool { size: 2 });
    g.layer("head", "pool", LayerSpec::fc(6, Activation::Sigmoid));
    let graph = g.build().expect("valid residual graph");
    let params = graph.init_params(42, 0.25);

    // 2. Compare the compiler's two placements (duplicate vs partitioned
    //    input volumes) with the analytical cost model before running
    //    anything cycle-accurately.
    let plan = plan_graph(&SystemConfig::paper(true), &graph);
    println!(
        "planner: duplicated >= {} cycles, partitioned >= {} cycles -> prefer {}",
        plan.duplicated_cycles,
        plan.partitioned_cycles,
        if plan.prefer_duplicate() {
            "duplicated"
        } else {
            "partitioned"
        }
    );

    // 3. Compile the whole DAG onto the cube in one programming phase and
    //    run it pipelined; the GraphSequencer retargets the PNGs/PEs at
    //    each phase boundary without leaving the cycle loop.
    let mut cfg = SystemConfig::paper(plan.prefer_duplicate());
    cfg.programming = Some(ProgrammingModel::typical());
    let mut cube = Neurocube::new(cfg.clone());
    let loaded = cube
        .load_graph(&graph, params.clone())
        .expect("graph fits the paper cube");
    let input = Tensor::from_vec(
        1,
        12,
        12,
        (0..144)
            .map(|i| Q88::from_f64(((i % 12) as f64 - 6.0) / 6.0))
            .collect(),
    );
    let (output, report) = cube.run_graph_inference(&loaded, &input);
    println!("\npipelined run (programmed once):\n{report}");

    // 4. The replay baseline reprograms the cube before every phase. Same
    //    values, strictly more cycles.
    let mut replay_cube = Neurocube::new(cfg);
    let reloaded = replay_cube
        .load_graph(&graph, params.clone())
        .expect("graph fits the paper cube");
    let (replay_out, replay_report) = replay_cube.run_graph_replay(&reloaded, &input);
    assert_eq!(output, replay_out, "pipelining never changes values");
    println!(
        "replay baseline: {} cycles vs {} pipelined ({} saved, {:.2}x)",
        replay_report.total_cycles(),
        report.total_cycles(),
        replay_report.total_cycles() - report.total_cycles(),
        replay_report.total_cycles() as f64 / report.total_cycles() as f64
    );

    // 5. Differential check: every node volume the simulator committed to
    //    DRAM sits inside the golden model's composed error envelope.
    let golden = GoldenGraph::from_quantized(graph.clone(), params);
    let mut check_cube = Neurocube::new(SystemConfig::paper(true));
    let check_loaded = check_cube
        .load_graph(&graph, golden.graph().init_params(42, 0.25))
        .expect("graph fits the paper cube");
    let (volumes, _) = check_cube.run_graph_replay_collect(&check_loaded, &input);
    golden
        .check(&input, &volumes)
        .expect("all node volumes inside the golden envelope");
    println!(
        "\nall {} node volumes verified against the golden DAG model",
        volumes.len()
    );
}
