//! Serving demo: multi-tenant inference over a pool of Neurocubes with
//! dynamic batching, model-affinity placement and deadline-aware
//! load shedding.
//!
//! ```sh
//! cargo run --release -p neurocube-serve --example serve_demo
//! ```
//!
//! Knobs (see `neurocube_sim::env`): `NEUROCUBE_SERVE_SEED`,
//! `NEUROCUBE_SERVE_LOAD` (poisson | bursty | diurnal),
//! `NEUROCUBE_SERVE_POOL`, `NEUROCUBE_SERVE_MAX_BATCH`,
//! `NEUROCUBE_SERVE_MAX_DELAY`.

use neurocube::SystemConfig;
use neurocube_nn::workloads;
use neurocube_serve::{
    execute, generate, serve, ExecMode, LoadProfile, ModelCatalog, ServeConfig, TrafficSpec,
};

fn main() {
    // 1. Register the tenants' models: profiling one inference each
    //    captures exact service times (timing is input-independent).
    let mut catalog = ModelCatalog::new(SystemConfig::paper(true));
    catalog.register("mnist-mlp", workloads::mnist_mlp(128), 42);
    catalog.register("tiny-conv", workloads::tiny_convnet(), 43);
    for e in catalog.entries() {
        println!(
            "model {:<10} service {:>8} cycles  reprogram {:>6} cycles",
            e.name, e.service_cycles, e.reprogram_cycles
        );
    }

    // 2. Generate a deterministic open-loop trace around the pool's
    //    saturation rate: same seed, same trace, bit for bit.
    let seed = neurocube_sim::serve_seed().unwrap_or(7);
    let profile = neurocube_sim::serve_load()
        .and_then(|s| LoadProfile::parse(&s))
        .unwrap_or(LoadProfile::Bursty);
    let cfg = ServeConfig::from_env(4);
    let avg_service =
        catalog.entries().map(|e| e.service_cycles).sum::<u64>() as f64 / catalog.len() as f64;
    let mean_gap = avg_service / cfg.pool as f64 * 1.1;
    let spec = TrafficSpec {
        profile,
        ..TrafficSpec::poisson(
            seed,
            mean_gap,
            400,
            vec![("mnist-mlp".to_string(), 3), ("tiny-conv".to_string(), 1)],
        )
    };
    let trace = generate(&catalog, &spec);
    println!(
        "\ntrace: {} requests, {profile:?} arrivals, mean gap {mean_gap:.0} cycles, seed {seed}",
        trace.len()
    );
    println!(
        "pool: {} cubes, max batch {}, batching window {} cycles\n",
        cfg.pool, cfg.max_batch, cfg.max_delay
    );

    // 3. Schedule in virtual time and print the summary the registry
    //    exports (p50/p90/p99 latency, batch sizes, shed rate, ...).
    let report = serve(&catalog, &cfg, &trace);
    let window = (report.makespan / 8).max(1);
    println!("timeline (completions per {window}-cycle window):");
    let mut completions = [0u64; 8];
    for rec in &report.records {
        let w = ((rec.completes_at - 1) / window).min(7) as usize;
        completions[w] += rec.requests.len() as u64;
    }
    for (w, c) in completions.iter().enumerate() {
        let bar: String = "#".repeat((*c as usize).min(60));
        println!("  [{w}] {bar} {c}");
    }
    println!();
    print!("{}", report.stats.dump());

    let lat = report.latency();
    println!(
        "\ncompleted {} of {} offered; latency p50 {} p90 {} p99 {} cycles; \
         affinity hit rate {:.0}%; shed rate {:.1}%",
        report.completed(),
        report.stats.counter("serve.requests.offered"),
        lat.percentile(0.50).unwrap_or(0),
        lat.percentile(0.90).unwrap_or(0),
        lat.percentile(0.99).unwrap_or(0),
        report.stats.gauge("serve.rate.affinity_hit") * 100.0,
        report.stats.gauge("serve.rate.shed") * 100.0,
    );

    // 4. Replay the schedule on real cubes — serial and threaded runs
    //    must export identical registries (the determinism contract).
    let serial = execute(&catalog, &trace, &report.records, ExecMode::Serial);
    let batched = execute(&catalog, &trace, &report.records, ExecMode::Batched);
    assert_eq!(
        serial.first_difference(&batched),
        None,
        "serial and threaded execution must agree bitwise"
    );
    println!(
        "\nexecuted {} requests in {} batches on real cubes; serial and \
         BatchRunner replays agree bitwise (checksum {:#018x})",
        serial.counter("serve.exec.requests"),
        serial.counter("serve.exec.batches"),
        serial.counter("serve.exec.output_checksum"),
    );
}
