//! System-level tests of the assembled Neurocube.

use neurocube::{training_ops, Neurocube, SystemConfig};
use neurocube_fixed::Activation;
use neurocube_nn::{workloads, Executor, LayerSpec, NetworkSpec, Shape, Tensor};

fn ramp_input(shape: Shape) -> Tensor {
    let data = (0..shape.len())
        .map(|i| neurocube_fixed::Q88::from_f64(((i % 64) as f64 - 32.0) / 32.0))
        .collect();
    Tensor::from_vec(shape.channels, shape.height, shape.width, data)
}

/// The central claim: the cycle-level simulator computes *exactly* what the
/// functional reference computes — same fixed-point MACs, same LUTs, same
/// connection order — for every layer's stored output.
fn assert_bit_exact(cfg: SystemConfig, spec: NetworkSpec, seed: u64) {
    let params = spec.init_params(seed, 0.3);
    let exec = Executor::new(spec.clone(), params.clone());
    let input = ramp_input(spec.input_shape());
    let reference = exec.forward(&input);

    let mut cube = Neurocube::new(cfg);
    let loaded = cube.load(spec.clone(), params);
    let (output, report) = cube.run_inference(&loaded, &input);

    // Final output bit-exact.
    assert_eq!(output, *reference.last().unwrap(), "final output differs");
    // Every intermediate volume bit-exact too.
    for (i, want) in reference.iter().enumerate() {
        let vol = cube.read_volume(&loaded, i + 1);
        assert_eq!(&vol, want, "layer {i} output differs");
    }
    // The simulator actually did the work.
    let expected_macs: u64 = spec.macs_per_layer().iter().sum();
    let simulated: u64 = report.layers.iter().map(|l| l.macs).sum();
    assert_eq!(simulated, expected_macs);
}

#[test]
fn bit_exact_tiny_convnet_with_duplication() {
    assert_bit_exact(SystemConfig::paper(true), workloads::tiny_convnet(), 1);
}

#[test]
fn bit_exact_tiny_convnet_without_duplication() {
    assert_bit_exact(SystemConfig::paper(false), workloads::tiny_convnet(), 2);
}

#[test]
fn bit_exact_pure_mlp() {
    let spec = NetworkSpec::new(
        Shape::flat(40),
        vec![
            LayerSpec::fc(24, Activation::Tanh),
            LayerSpec::fc(8, Activation::Sigmoid),
        ],
    )
    .unwrap();
    assert_bit_exact(SystemConfig::paper(true), spec.clone(), 3);
    assert_bit_exact(SystemConfig::paper(false), spec, 4);
}

#[test]
fn bit_exact_on_fully_connected_noc() {
    assert_bit_exact(
        SystemConfig::fully_connected_noc(false),
        workloads::tiny_convnet(),
        5,
    );
}

#[test]
fn bit_exact_on_ddr3() {
    assert_bit_exact(SystemConfig::ddr3(), workloads::tiny_convnet(), 6);
}

#[test]
fn bit_exact_all_maps_convolution() {
    let spec = NetworkSpec::new(
        Shape::new(2, 10, 10),
        vec![
            LayerSpec::Conv2d {
                out_channels: 3,
                kernel: 3,
                stride: 1,
                connectivity: neurocube_nn::ConvConnectivity::AllMaps,
                activation: Activation::ReLU,
            },
            LayerSpec::fc(4, Activation::Sigmoid),
        ],
    )
    .unwrap();
    assert_bit_exact(SystemConfig::paper(true), spec, 7);
}

#[test]
fn bit_exact_strided_conv_and_pool() {
    let spec = NetworkSpec::new(
        Shape::new(1, 17, 17),
        vec![
            LayerSpec::Conv2d {
                out_channels: 2,
                kernel: 3,
                stride: 2,
                connectivity: neurocube_nn::ConvConnectivity::SingleMap,
                activation: Activation::Tanh,
            },
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::fc(5, Activation::Identity),
        ],
    )
    .unwrap();
    assert_bit_exact(SystemConfig::paper(true), spec.clone(), 8);
    assert_bit_exact(SystemConfig::paper(false), spec, 9);
}

#[test]
fn duplication_trades_memory_for_lateral_traffic_and_fc_speed() {
    // Big enough that operand traffic dominates halo maintenance (on toy
    // networks the halo fraction of a tile is enormous and duplication
    // cannot win — the paper's effect is a property of realistic tiles).
    let spec = NetworkSpec::new(
        Shape::new(1, 48, 48),
        vec![
            LayerSpec::conv(8, 5, Activation::Tanh),
            LayerSpec::AvgPool { size: 2 },
            // Wide enough (16 outputs per PE) that the FC stage actually
            // saturates the MAC arrays and the operand-supply difference
            // between mappings shows.
            LayerSpec::fc(256, Activation::Sigmoid),
        ],
    )
    .unwrap();
    let params = spec.init_params(11, 0.3);
    let input = ramp_input(spec.input_shape());

    let mut dup = Neurocube::new(SystemConfig::paper(true));
    let loaded = dup.load(spec.clone(), params.clone());
    let (out_dup, rep_dup) = dup.run_inference(&loaded, &input);

    let mut nodup = Neurocube::new(SystemConfig::paper(false));
    let loaded = nodup.load(spec, params);
    let (out_nodup, rep_nodup) = nodup.run_inference(&loaded, &input);

    assert_eq!(out_dup, out_nodup, "mapping must not change values");

    // Conv layer: duplication removes lateral *operand* traffic; what
    // remains is halo-copy write-back maintenance, far smaller.
    assert!(
        rep_dup.layers[0].lateral_packets < rep_nodup.layers[0].lateral_packets,
        "dup lateral {} vs nodup {}",
        rep_dup.layers[0].lateral_packets,
        rep_nodup.layers[0].lateral_packets
    );
    // FC layer: our compiler's spatial interleaving fine-grains the
    // shared-state broadcast across vaults, so (unlike the paper's coarse
    // Fig. 10(e) slicing) the no-dup FC layer avoids a single-vault
    // hot-spot; duplication must still not lose (see EXPERIMENTS.md).
    assert!(
        (rep_dup.layers[2].cycles as f64) < rep_nodup.layers[2].cycles as f64 * 1.1,
        "FC dup {} vs nodup {}",
        rep_dup.layers[2].cycles,
        rep_nodup.layers[2].cycles
    );
    // Duplication costs memory (Fig. 12(d)).
    assert!(rep_dup.memory_bytes > rep_nodup.memory_bytes);
    assert!(rep_dup.memory_overhead() > 0.0);
    assert!((rep_nodup.memory_overhead() - 0.0).abs() < 1e-12);
    // End to end, duplication is at worst marginally slower on this small
    // geometry and much faster on the FC stage.
    assert!(
        rep_dup.total_cycles() as f64 <= rep_nodup.total_cycles() as f64 * 1.25,
        "dup {} vs nodup {}",
        rep_dup.total_cycles(),
        rep_nodup.total_cycles()
    );
}

#[test]
fn ddr3_is_slower_than_hmc() {
    let spec = NetworkSpec::new(
        Shape::new(1, 24, 24),
        vec![LayerSpec::conv(4, 5, Activation::Tanh)],
    )
    .unwrap();
    let params = spec.init_params(13, 0.3);
    let input = ramp_input(spec.input_shape());

    let mut hmc = Neurocube::new(SystemConfig::paper(false));
    let loaded = hmc.load(spec.clone(), params.clone());
    let (out_hmc, rep_hmc) = hmc.run_inference(&loaded, &input);

    let mut ddr3 = Neurocube::new(SystemConfig::ddr3());
    let loaded = ddr3.load(spec, params);
    let (out_ddr3, rep_ddr3) = ddr3.run_inference(&loaded, &input);

    assert_eq!(
        out_hmc, out_ddr3,
        "memory technology must not change values"
    );
    assert!(
        rep_ddr3.total_cycles() > 2 * rep_hmc.total_cycles(),
        "DDR3 {} vs HMC {}",
        rep_ddr3.total_cycles(),
        rep_hmc.total_cycles()
    );
    // DDR3's two injection points force nearly all traffic across the mesh.
    assert!(rep_ddr3.lateral_fraction() > 0.5);
}

#[test]
fn training_step_runs_all_passes() {
    let spec = workloads::tiny_convnet();
    let params = spec.init_params(17, 0.3);
    let input = ramp_input(spec.input_shape());
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let report = cube.run_training_step(&loaded, &input);

    // Pass count: forward (4) + backward passes.
    let expected_passes: usize = (0..spec.depth())
        .map(|i| neurocube::training_passes(&spec, i).len())
        .sum();
    assert_eq!(report.layers.len(), expected_passes);

    // Simulated training ops match the analytical schedule.
    let simulated: u64 = report.layers.iter().map(|l| l.ops()).sum();
    assert_eq!(simulated, training_ops(&spec));
    // Training throughput is in the same regime as inference (the paper's
    // 126.8 vs 132.4 GOPs/s relationship).
    assert!(report.throughput_gops() > 0.0);
}

#[test]
fn channel_count_sweep_is_monotone() {
    let spec = NetworkSpec::new(
        Shape::new(1, 24, 24),
        vec![LayerSpec::conv(4, 5, Activation::Tanh)],
    )
    .unwrap();
    let params = spec.init_params(19, 0.3);
    let input = ramp_input(spec.input_shape());
    let mut cycles = Vec::new();
    for ch in [2, 4, 8, 16] {
        let mut cube = Neurocube::new(SystemConfig::hmc_with_channels(ch));
        let loaded = cube.load(spec.clone(), params.clone());
        let (_, rep) = cube.run_inference(&loaded, &input);
        cycles.push(rep.total_cycles());
    }
    for w in cycles.windows(2) {
        assert!(w[1] <= w[0], "more channels must not be slower: {cycles:?}");
    }
    assert!(
        cycles[0] > cycles[3] * 2,
        "2 channels should be much slower than 16: {cycles:?}"
    );
}
