//! The Neurocube system simulator.
//!
//! This crate assembles the substrates into the paper's full architecture
//! (Fig. 5): an HMC-style [`MemorySystem`](neurocube_dram::MemorySystem)
//! whose 16 vaults each carry a [`Png`](neurocube_png::Png), a 2D-mesh
//! [`Network`](neurocube_noc::Network) on the logic die, and 16
//! [`ProcessingElement`](neurocube_pe::ProcessingElement)s — then drives
//! them cycle by cycle through whole-network inference and training runs.
//!
//! The simulator is **value-accurate**: the DRAM image, the packets and the
//! MACs carry real `Q1.7.8` data, so [`Neurocube::run_inference`] returns
//! the network's actual output tensor, bit-identical to
//! [`neurocube_nn::Executor`] — the central correctness property of the
//! whole reproduction (checked in this crate's tests and the integration
//! suite).
//!
//! # Quick start
//!
//! ```
//! use neurocube::{Neurocube, SystemConfig};
//! use neurocube_nn::{workloads, Tensor};
//!
//! let net = workloads::tiny_convnet();
//! let params = net.init_params(7, 0.25);
//! let mut cube = Neurocube::new(SystemConfig::paper(true));
//! let loaded = cube.load(net, params);
//! let input = Tensor::zeros(1, 12, 12);
//! let (output, report) = cube.run_inference(&loaded, &input);
//! assert_eq!(output.len(), 3);
//! assert!(report.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod multicube;
mod pool;
mod report;
mod system;
mod training;

pub use config::{ProgrammingModel, SystemConfig};
pub use multicube::{LinkModel, MultiCube, MultiCubeReport, MultiLayerReport};
pub use pool::{CubePool, PoolCube};
pub use report::{FaultSummary, LayerReport, RunReport};
pub use system::{LoadedGraph, LoadedNetwork, Neurocube};
pub use training::{training_ops, training_passes, PassKind};
