//! Multi-cube scaling — the paper's concluding "next steps": *"scaling
//! this implementation across multiple cubes to support much larger
//! networks than can be feasibly supported today."*
//!
//! Mapping: data-parallel banding. Each layer's output rows are split into
//! one horizontal band per cube; every cube runs its band of the layer on
//! its own full Neurocube (16 vaults, 16 PEs), and between layers the
//! *halo rows* a neighbour's band needs travel over the HMC external
//! SERDES links (Table I's HMC-Ext interface). Fully connected layers are
//! split by output neuron, which requires all-gathering the input vector
//! across cubes first — the links, not the MACs, are the scaling hazard
//! the harness quantifies.
//!
//! The implementation is value-accurate like everything else: each band
//! executes on the cycle-level simulator, the host gathers real band
//! outputs, and the combined result is bit-identical to a single-cube run
//! (and to the functional reference).

use crate::config::SystemConfig;
use crate::report::LayerReport;
use crate::system::Neurocube;
use neurocube_dram::REF_CLOCK_HZ;
use neurocube_fixed::Q88;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape, Tensor};
use neurocube_png::layout::{input_rect_for, Rect};
use neurocube_sim::BatchRunner;
use std::fmt;

/// Inter-cube link model: the HMC external interface (Table I HMC-Ext:
/// 40 GB/s per link, 4 links per cube; we model the aggregate neighbour
/// bandwidth and a fixed per-layer synchronization latency).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Aggregate neighbour-to-neighbour bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-layer synchronization/SerDes latency in nanoseconds.
    pub latency_ns: f64,
}

impl LinkModel {
    /// The HMC-Ext default: one 40 GB/s link per neighbour direction and
    /// ~100 ns of SerDes/synchronization latency per exchange.
    pub fn hmc_ext() -> LinkModel {
        LinkModel {
            bandwidth_gbps: 40.0,
            latency_ns: 100.0,
        }
    }

    /// Reference cycles to move `bytes` over the link.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let seconds = bytes as f64 / (self.bandwidth_gbps * 1e9) + self.latency_ns * 1e-9;
        (seconds * REF_CLOCK_HZ).ceil() as u64
    }
}

/// One layer's multi-cube execution record.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiLayerReport {
    /// Layer index.
    pub layer_index: usize,
    /// Layer kind.
    pub kind: &'static str,
    /// Per-cube compute reports for this layer's band.
    pub per_cube: Vec<LayerReport>,
    /// Inter-cube link cycles charged before this layer (halo exchange or
    /// FC input all-gather).
    pub link_cycles: u64,
}

impl MultiLayerReport {
    /// The layer's critical-path cycles: the slowest cube plus the link
    /// exchange preceding it.
    pub fn cycles(&self) -> u64 {
        self.link_cycles + self.per_cube.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Total useful arithmetic operations across cubes.
    pub fn ops(&self) -> u64 {
        self.per_cube.iter().map(LayerReport::ops).sum()
    }
}

/// A whole run's record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiCubeReport {
    /// Per-layer breakdown.
    pub layers: Vec<MultiLayerReport>,
    /// Cube count.
    pub cubes: usize,
}

impl MultiCubeReport {
    /// End-to-end critical-path cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(MultiLayerReport::cycles).sum()
    }

    /// Total arithmetic operations (including halo recompute, if any).
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(MultiLayerReport::ops).sum()
    }

    /// Aggregate throughput in GOPs/s at the reference clock.
    pub fn throughput_gops(&self) -> f64 {
        let c = self.total_cycles();
        if c == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / (c as f64 / REF_CLOCK_HZ) / 1e9
    }

    /// Cycles spent on inter-cube links.
    pub fn link_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.link_cycles).sum()
    }

    /// Scaling efficiency against a single-cube run of the same workload:
    /// `(single_cycles / cubes) / multi_cycles`.
    pub fn scaling_efficiency(&self, single_cycles: u64) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        single_cycles as f64 / self.cubes as f64 / self.total_cycles() as f64
    }
}

impl fmt::Display for MultiCubeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.layers {
            writeln!(
                f,
                "L{} {:<5} {:>12} compute cycles (max of {}), {:>9} link cycles",
                l.layer_index + 1,
                l.kind,
                l.cycles() - l.link_cycles,
                l.per_cube.len(),
                l.link_cycles
            )?;
        }
        writeln!(
            f,
            "total: {} cycles ({} on links), {:.1} GOPs/s aggregate",
            self.total_cycles(),
            self.link_cycles(),
            self.throughput_gops()
        )
    }
}

/// A cluster of Neurocubes executing one network data-parallel.
#[derive(Clone, Debug)]
pub struct MultiCube {
    cfg: SystemConfig,
    cubes: usize,
    link: LinkModel,
}

impl MultiCube {
    /// Builds a cluster of `cubes` cubes, each configured with `cfg`,
    /// linked by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `cubes` is zero.
    pub fn new(cfg: SystemConfig, cubes: usize, link: LinkModel) -> MultiCube {
        assert!(cubes > 0, "at least one cube");
        cfg.validate();
        MultiCube { cfg, cubes, link }
    }

    /// Cube count.
    pub fn cubes(&self) -> usize {
        self.cubes
    }

    /// The output row band of cube `b` for a plane of `rows` rows.
    fn band(&self, rows: usize, b: usize) -> (usize, usize) {
        (b * rows / self.cubes, (b + 1) * rows / self.cubes)
    }

    /// Runs one inference across the cluster. Returns the network output
    /// (bit-identical to a single-cube run) and the scaling report.
    ///
    /// # Panics
    ///
    /// Panics if any cube's band would be empty (more cubes than output
    /// rows / neurons in some layer), or if `params` does not match `spec`.
    pub fn run_inference(
        &self,
        spec: &NetworkSpec,
        params: &[Vec<Q88>],
        input: &Tensor,
    ) -> (Tensor, MultiCubeReport) {
        let mut report = MultiCubeReport {
            layers: Vec::with_capacity(spec.depth()),
            cubes: self.cubes,
        };
        let mut cur = input.clone();
        for (i, layer) in spec.layers().iter().enumerate() {
            let in_shape = spec.layer_input(i);
            let out_shape = spec.layer_output(i);
            let (next, entry) = match layer {
                LayerSpec::Conv2d { kernel, stride, .. } => self.run_spatial_layer(
                    i, layer, in_shape, out_shape, *kernel, *stride, &params[i], &cur,
                ),
                LayerSpec::AvgPool { size } => self.run_spatial_layer(
                    i, layer, in_shape, out_shape, *size, *size, &params[i], &cur,
                ),
                // Element-wise sums are per-pixel: a 1×1 "kernel" with no
                // halo rows between bands.
                LayerSpec::Eltwise { .. } => {
                    self.run_spatial_layer(i, layer, in_shape, out_shape, 1, 1, &params[i], &cur)
                }
                LayerSpec::FullyConnected { .. } => {
                    self.run_fc_layer(i, layer, in_shape, out_shape, &params[i], &cur)
                }
            };
            cur = next;
            report.layers.push(entry);
        }
        (cur, report)
    }

    #[allow(clippy::too_many_arguments)] // one call site; mirrors the layer math
    fn run_spatial_layer(
        &self,
        index: usize,
        layer: &LayerSpec,
        in_shape: Shape,
        out_shape: Shape,
        kernel: usize,
        stride: usize,
        weights: &[Q88],
        cur: &Tensor,
    ) -> (Tensor, MultiLayerReport) {
        // Validate every band before any cube is dispatched, so geometry
        // errors surface deterministically and never from a worker thread.
        for b in 0..self.cubes {
            let (oy0, oy1) = self.band(out_shape.height, b);
            assert!(oy1 > oy0, "cube {b} has an empty band in layer {index}");
        }

        // Each band runs on its own (deterministic, single-threaded)
        // Neurocube; the cluster's cubes genuinely run concurrently.
        let bands = BatchRunner::new().run(self.cubes, |b| {
            let (oy0, oy1) = self.band(out_shape.height, b);
            // Input rows this band needs (the same arithmetic as vault
            // halos, at cube granularity).
            let need = input_rect_for(
                Rect {
                    y0: oy0,
                    y1: oy1,
                    x0: 0,
                    x1: out_shape.width,
                },
                kernel,
                stride,
                in_shape,
            );
            // Rows beyond the band's own share of the input travel over
            // the links from the neighbouring cubes' bands.
            let (own_in0, own_in1) = self.band(in_shape.height, b);
            let foreign_rows = own_in0.saturating_sub(need.y0) + need.y1.saturating_sub(own_in1);
            let halo_bytes = (foreign_rows * in_shape.width * in_shape.channels * 2) as u64;

            // Build and run the band as a single-layer network.
            let band_in = Shape::new(in_shape.channels, need.y1 - need.y0, in_shape.width);
            let band_spec = NetworkSpec::new(band_in, vec![*layer])
                .expect("band geometry follows from the full layer");
            let mut slice = Tensor::zeros(band_in.channels, band_in.height, band_in.width);
            for c in 0..band_in.channels {
                for y in 0..band_in.height {
                    for x in 0..band_in.width {
                        slice.set(c, y, x, cur.get(c, need.y0 + y, x));
                    }
                }
            }
            let mut cube = Neurocube::new(self.cfg.clone());
            let loaded = cube.load(band_spec, vec![weights.to_vec()]);
            let (band_out, band_report) = cube.run_inference(&loaded, &slice);
            (band_out, band_report, halo_bytes)
        });

        // Serial merge in band order keeps the combined result identical
        // to a serial (or single-cube) run.
        let mut out = Tensor::zeros(out_shape.channels, out_shape.height, out_shape.width);
        let mut per_cube = Vec::with_capacity(self.cubes);
        let mut halo_bytes = 0u64;
        for (b, (band_out, band_report, band_halo)) in bands.into_iter().enumerate() {
            let (oy0, oy1) = self.band(out_shape.height, b);
            halo_bytes += band_halo;
            for c in 0..out_shape.channels {
                for y in oy0..oy1 {
                    for x in 0..out_shape.width {
                        out.set(c, y, x, band_out.get(c, y - oy0, x));
                    }
                }
            }
            per_cube.push(band_report.layers.into_iter().next().expect("one layer"));
        }
        let link_cycles = if self.cubes > 1 {
            self.link.transfer_cycles(halo_bytes)
        } else {
            0
        };
        (
            out,
            MultiLayerReport {
                layer_index: index,
                kind: layer.kind_name(),
                per_cube,
                link_cycles,
            },
        )
    }

    fn run_fc_layer(
        &self,
        index: usize,
        layer: &LayerSpec,
        in_shape: Shape,
        out_shape: Shape,
        weights: &[Q88],
        cur: &Tensor,
    ) -> (Tensor, MultiLayerReport) {
        let n_in = in_shape.len();
        let n_out = out_shape.len();
        // Validate every slice before dispatch (see run_spatial_layer).
        for b in 0..self.cubes {
            let (o0, o1) = self.band(n_out, b);
            assert!(
                o1 > o0,
                "cube {b} has an empty output slice in layer {index}"
            );
        }
        // Each cube computes a slice of the output neurons over the full
        // input vector, which must first be all-gathered across cubes.
        let slices = BatchRunner::new().run(self.cubes, |b| {
            let (o0, o1) = self.band(n_out, b);
            let slice_spec = NetworkSpec::new(
                Shape::flat(n_in),
                vec![LayerSpec::FullyConnected {
                    outputs: o1 - o0,
                    activation: layer.activation(),
                }],
            )
            .expect("slice geometry is valid");
            let w = weights[o0 * n_in..o1 * n_in].to_vec();
            let mut cube = Neurocube::new(self.cfg.clone());
            let loaded = cube.load(slice_spec, vec![w]);
            let flat_in = Tensor::from_flat(cur.as_slice().to_vec());
            cube.run_inference(&loaded, &flat_in)
        });
        let mut out_values = vec![Q88::ZERO; n_out];
        let mut per_cube = Vec::with_capacity(self.cubes);
        for (b, (slice_out, slice_report)) in slices.into_iter().enumerate() {
            let (o0, o1) = self.band(n_out, b);
            out_values[o0..o1].copy_from_slice(slice_out.as_slice());
            per_cube.push(slice_report.layers.into_iter().next().expect("one layer"));
        }
        // All-gather: every cube must receive the input rows it does not
        // hold — (cubes − 1)/cubes of the vector, per cube, ring-style.
        let gather_bytes = if self.cubes > 1 {
            (n_in * 2) as u64 * (self.cubes as u64 - 1)
        } else {
            0
        };
        (
            Tensor::from_flat(out_values),
            MultiLayerReport {
                layer_index: index,
                kind: layer.kind_name(),
                per_cube,
                link_cycles: self.link.transfer_cycles(gather_bytes),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;
    use neurocube_nn::Executor;

    fn workload() -> (NetworkSpec, Vec<Vec<Q88>>, Tensor) {
        let spec = NetworkSpec::new(
            Shape::new(1, 26, 20),
            vec![
                LayerSpec::conv(4, 3, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(8, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = spec.init_params(3, 0.25);
        let s = spec.input_shape();
        let input = Tensor::from_vec(
            s.channels,
            s.height,
            s.width,
            (0..s.len())
                .map(|i| Q88::from_bits(((i * 97) % 500) as i16))
                .collect(),
        );
        (spec, params, input)
    }

    #[test]
    fn multicube_output_is_bit_exact() {
        let (spec, params, input) = workload();
        let reference = Executor::new(spec.clone(), params.clone()).predict(&input);
        for cubes in [1, 2, 4] {
            let cluster = MultiCube::new(SystemConfig::paper(true), cubes, LinkModel::hmc_ext());
            let (out, report) = cluster.run_inference(&spec, &params, &input);
            assert_eq!(out, reference, "{cubes}-cube output differs");
            assert_eq!(report.cubes, cubes);
            assert_eq!(report.layers.len(), spec.depth());
        }
    }

    #[test]
    fn more_cubes_cut_critical_path() {
        // Large enough that band compute dominates pipeline fill and the
        // per-layer link latency (tiny workloads do not scale — measured
        // honestly by the scaling harness).
        let spec = NetworkSpec::new(
            Shape::new(1, 64, 64),
            vec![LayerSpec::conv(16, 5, Activation::Tanh)],
        )
        .unwrap();
        let params = spec.init_params(5, 0.25);
        let input = Tensor::zeros(1, 64, 64);
        let one = MultiCube::new(SystemConfig::paper(true), 1, LinkModel::hmc_ext());
        let (_, r1) = one.run_inference(&spec, &params, &input);
        let two = MultiCube::new(SystemConfig::paper(true), 2, LinkModel::hmc_ext());
        let (_, r2) = two.run_inference(&spec, &params, &input);
        assert!(
            r2.total_cycles() < r1.total_cycles(),
            "2 cubes {} vs 1 cube {}",
            r2.total_cycles(),
            r1.total_cycles()
        );
        assert_eq!(r1.link_cycles(), 0, "a single cube never uses links");
        assert!(r2.link_cycles() > 0, "banding must exchange halos");
        let eff = r2.scaling_efficiency(r1.total_cycles());
        assert!(eff > 0.4 && eff <= 1.2, "efficiency {eff}");
    }

    #[test]
    fn link_model_transfer_times() {
        let link = LinkModel::hmc_ext();
        assert_eq!(link.transfer_cycles(0), 0);
        // 40 GB at 40 GB/s = 1 s = 5e9 cycles (+latency).
        let c = link.transfer_cycles(40_000_000_000);
        assert!((c as f64 - 5.0e9).abs() < 1e6);
        // Latency floor.
        assert!(link.transfer_cycles(2) >= 500);
    }

    #[test]
    #[should_panic(expected = "empty band")]
    fn too_many_cubes_rejected() {
        let (spec, params, input) = workload();
        // Pool output has 12 rows; 16 cubes cannot all get a row of conv
        // output at 24 rows? 24 rows / 16 cubes is fine, but the pooled
        // 12 rows over 16 cubes is not.
        let cluster = MultiCube::new(SystemConfig::paper(true), 16, LinkModel::hmc_ext());
        let _ = cluster.run_inference(&spec, &params, &input);
    }
}
