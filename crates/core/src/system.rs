//! The assembled Neurocube and its cycle loop.

use crate::config::SystemConfig;
use crate::report::{FaultSummary, LayerReport, RunReport};
use crate::training::{training_passes, PassKind};
use neurocube_dram::MemorySystem;
use neurocube_fault::{FaultConfig, PeFaultCounts};
use neurocube_fixed::Q88;
use neurocube_nn::{GraphOp, GraphSpec, NetworkSpec, Tensor};
use neurocube_noc::Network;
use neurocube_pe::ProcessingElement;
use neurocube_png::layout::NetworkLayout;
use neurocube_png::{compile_graph, compile_layer, graph_load_weights, LayerProgram, Png};
use neurocube_png::{program, CompileError, MultiLayerProgram, PngHookup};
use neurocube_sim::{
    simd_default, sparsity_default, stage_par_default, Clocked, CycleLoop, StatSource,
    StatsRegistry,
};
use std::sync::Arc;

/// A network loaded into the cube: its placement, parameters and compiled
/// per-layer programs.
#[derive(Clone, Debug)]
pub struct LoadedNetwork {
    spec: NetworkSpec,
    params: Vec<Vec<neurocube_fixed::Q88>>,
    layout: NetworkLayout,
    programs: Vec<Arc<LayerProgram>>,
}

impl LoadedNetwork {
    /// The network description.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The placement of the network in the cube.
    pub fn layout(&self) -> &NetworkLayout {
        &self.layout
    }

    /// The compiled per-layer programs.
    pub fn programs(&self) -> &[Arc<LayerProgram>] {
        &self.programs
    }
}

/// A compiled graph loaded into the cube: its multi-layer program and the
/// per-node parameters.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    program: MultiLayerProgram,
    params: Vec<Vec<Q88>>,
}

impl LoadedGraph {
    /// The validated graph description.
    pub fn graph(&self) -> &GraphSpec {
        &self.program.graph
    }

    /// The compiled multi-layer program (phases, placements, footprint).
    pub fn program(&self) -> &MultiLayerProgram {
        &self.program
    }

    /// The per-node parameter arrays.
    pub fn params(&self) -> &[Vec<Q88>] {
        &self.params
    }
}

/// In-flight state of a compiled-graph inference: the phase sequence the
/// [`GraphSequencer`] steps through without leaving the cycle loop, plus
/// the per-phase boundaries it records for cycle attribution.
#[derive(Debug)]
struct GraphRun {
    phases: Vec<Arc<LayerProgram>>,
    /// Per phase: the PE weight-memory image.
    images: Vec<Vec<Q88>>,
    /// Next phase to configure when the current one completes.
    next: usize,
    /// All phases have completed; the run's done predicate.
    complete: bool,
    /// Cycle at which each phase hand-off happened (length `phases - 1`:
    /// the final phase ends when the loop exits).
    boundaries: Vec<u64>,
    /// Statistics snapshot at each hand-off, for per-node attribution.
    snapshots: Vec<StatsRegistry>,
}

/// The full Neurocube: memory + PNGs + NoC + PEs, plus the host-side
/// controller that programs them layer by layer.
#[derive(Debug)]
pub struct Neurocube {
    cfg: SystemConfig,
    mem: MemorySystem,
    net: Network,
    pes: Vec<ProcessingElement>,
    pngs: Vec<Png>,
    /// Per mesh node: the regions whose PNGs inject there.
    attach_groups: Vec<Vec<u8>>,
    now: u64,
    /// The canonical per-PE operation-counter array (the credit-return
    /// path): refreshed from the PEs at the top of the credit-return
    /// stage and read in place by every PNG's run-ahead gate, so there is
    /// exactly one copy of the credit state. Initialized to `u64::MAX`
    /// per node — the "no progress seen" value that never gates.
    progress: Vec<u64>,
    /// Stage-parallel PE ticking: resolved from `NEUROCUBE_STAGE_PAR` at
    /// construction, overridable per cube via [`Neurocube::set_stage_par`].
    stage_par: bool,
    /// Per-cube override of the fast-forward default (`NEUROCUBE_NO_SKIP`);
    /// `None` inherits the process default.
    skip_override: Option<bool>,
    /// Cumulative fast-forward jumps across all passes run on this cube.
    horizon_jumps: u64,
    /// Cumulative cycles crossed by fast-forward jumps instead of ticking.
    skipped_cycles: u64,
    /// The attached fault-injection configuration, if any. `None` (and any
    /// all-zero-rate, ECC-off config, which is normalized to `None`) leaves
    /// every component untouched and every statistic bitwise identical to a
    /// build without the injector.
    faults: Option<FaultConfig>,
    /// Active compiled-graph run, stepped by the [`GraphSequencer`] stage.
    /// `None` for linear runs, which leaves the sequencer inert and every
    /// per-layer run bitwise identical to a build without it.
    graph_run: Option<GraphRun>,
}

impl Neurocube {
    /// Builds an idle Neurocube.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]) or the topology exceeds the fabric's
    /// hard limits (see [`Neurocube::try_new`] for the non-panicking
    /// constructor).
    pub fn new(cfg: SystemConfig) -> Neurocube {
        match Neurocube::try_new(cfg) {
            Ok(cube) => cube,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds an idle Neurocube, surfacing fabric-construction failures
    /// (oversized topologies) as [`CompileError::Noc`] instead of
    /// panicking.
    ///
    /// # Panics
    ///
    /// Still panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]) — those are caller bugs, not inputs.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Noc`] when the topology wires more routers
    /// or ports than the fabric's occupancy masks and arbiter pointers can
    /// index.
    pub fn try_new(cfg: SystemConfig) -> Result<Neurocube, CompileError> {
        cfg.validate();
        let mem = MemorySystem::new(cfg.memory.clone());
        let net = Network::try_new(cfg.topology)?;
        let pes = (0..cfg.nodes() as u8)
            .map(|p| ProcessingElement::with_cache(p, cfg.accumulator, cfg.cache_entries_per_bank))
            .collect();
        let word_bytes = u64::from(cfg.memory.channel.word_bits / 8);
        let regions_per_channel = (cfg.memory.regions / cfg.memory.channels) as usize;
        let pngs = (0..cfg.nodes() as u8)
            .map(|v| {
                Png::new(
                    v,
                    PngHookup {
                        attach: cfg.attach[usize::from(v)],
                        word_bytes,
                        // Half the queue per sharing PNG stays available so
                        // write-backs can never be starved by reads.
                        max_outstanding_reads: (cfg.memory.channel.queue_capacity
                            / regions_per_channel
                            / 2)
                        .max(2),
                        run_ahead_ops: cfg.run_ahead_ops,
                    },
                )
            })
            .collect();
        let attach_groups = (0..cfg.nodes() as u8)
            .map(|node| {
                (0..cfg.nodes() as u8)
                    .filter(|&v| cfg.attach[usize::from(v)] == node)
                    .collect()
            })
            .collect();
        let nodes = cfg.nodes();
        let mut cube = Neurocube {
            cfg,
            mem,
            net,
            pes,
            pngs,
            attach_groups,
            now: 0,
            progress: vec![u64::MAX; nodes],
            stage_par: stage_par_default(),
            skip_override: None,
            horizon_jumps: 0,
            skipped_cycles: 0,
            faults: None,
            graph_run: None,
        };
        // Environment default: NEUROCUBE_FAULT_RATE / _SEED / _ECC attach
        // an injector at construction (explicit `set_fault_config` wins).
        if let Some(fault_cfg) = FaultConfig::from_env() {
            cube.set_fault_config(Some(fault_cfg));
        }
        Ok(cube)
    }

    /// Attaches (or detaches, with `None`) a deterministic fault injector:
    /// per-channel DRAM lenses, the NoC link lens, one lens per PE, and
    /// lenient packet handling throughout. A config with all rates zero
    /// and ECC off is normalized to `None`, so a zero-rate sweep point is
    /// bitwise identical to a run without any injector.
    pub fn set_fault_config(&mut self, cfg: Option<FaultConfig>) {
        self.faults = cfg.filter(|c| c.enabled() || c.ecc);
        let attach = self.faults.as_ref();
        self.mem.set_faults(attach);
        self.net.set_faults(attach);
        for pe in &mut self.pes {
            pe.set_faults(attach);
        }
        let lenient = attach.is_some();
        self.net.set_lenient(lenient);
        for pe in &mut self.pes {
            pe.set_lenient(lenient);
        }
        for png in &mut self.pngs {
            png.set_lenient(lenient);
        }
    }

    /// The attached fault configuration, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref()
    }

    /// Aggregated fault counters across every component, or `None` when no
    /// injector is attached.
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        self.faults.as_ref()?;
        let d = self.mem.fault_counts();
        let n = self.net.fault_counts();
        let mut pe = PeFaultCounts::default();
        for p in &self.pes {
            pe.merge(&p.fault_counts());
        }
        let png_dropped: u64 = self.pngs.iter().map(Png::dropped_packets).sum();
        let png_unknown: u64 = self.pngs.iter().map(Png::unknown_completions).sum();
        Some(FaultSummary {
            dram_read_flips: d.read_flips,
            dram_stuck_bits: d.stuck_bits,
            dram_upsets: d.upsets,
            ecc_corrected: d.ecc_corrected,
            ecc_detected: d.ecc_detected,
            ecc_words: d.ecc_words,
            noc_corrupt: n.corrupt,
            noc_drops: n.drops,
            noc_misroutes: n.misroutes,
            noc_retransmits: n.retransmits,
            pe_mac_faults: pe.mac_faults,
            dropped_packets: n.unroutable
                + n.dropped_packets
                + pe.dropped_packets
                + png_dropped
                + png_unknown,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory subsystem (statistics, storage inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// The NoC (statistics).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current reference cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Overrides the process-default fast-forward setting for this cube:
    /// `Some(true)` forces event-horizon skipping on, `Some(false)` forces
    /// the naive per-cycle loop (the differential oracle), `None` inherits
    /// the `NEUROCUBE_NO_SKIP` environment default. Both modes produce
    /// bitwise-identical cycle counts and statistics.
    pub fn set_cycle_skip(&mut self, enabled: Option<bool>) {
        self.skip_override = enabled;
    }

    /// Selects every PE's MAC arithmetic path: `Some(true)` forces the SoA
    /// batch kernels, `Some(false)` forces the per-lane scalar `MacUnit`
    /// oracle, `None` re-reads the `NEUROCUBE_NO_SIMD` environment default
    /// fresh (never a cached value, so tests that restore the variable get
    /// the restored behaviour). Both paths are bitwise identical in every
    /// observable — the equivalence suite runs the same workload down each
    /// and compares full registries.
    ///
    /// # Panics
    ///
    /// Panics if any PE is mid-layer (call between runs, not during one).
    pub fn set_simd(&mut self, simd: Option<bool>) {
        for pe in &mut self.pes {
            pe.set_simd(simd);
        }
    }

    /// Whether the PEs currently use the SoA batch kernels.
    pub fn simd(&self) -> bool {
        self.pes
            .first()
            .map_or_else(simd_default, ProcessingElement::simd)
    }

    /// Selects every PE's zero-operand fast paths: `Some(true)` lets a PE
    /// skip host work for gated lanes, `Some(false)` forces the dense
    /// kernels, `None` re-reads the `NEUROCUBE_NO_SPARSITY` environment
    /// default fresh. The modes are bitwise identical in every observable
    /// — gated lanes still charge full architectural cost and zero
    /// operands are the MAC's additive identity (DESIGN.md §13) — so this
    /// knob only changes host throughput.
    pub fn set_sparsity(&mut self, sparsity: Option<bool>) {
        for pe in &mut self.pes {
            pe.set_sparsity(sparsity);
        }
    }

    /// Whether the PEs currently use the zero-operand fast paths.
    pub fn sparsity(&self) -> bool {
        self.pes
            .first()
            .map_or_else(sparsity_default, ProcessingElement::sparsity)
    }

    /// Overrides the stage-parallel setting for this cube: `Some(true)`
    /// ticks the PEs from a scoped thread pool each cycle, `Some(false)`
    /// forces the serial loop, `None` re-reads the `NEUROCUBE_STAGE_PAR`
    /// environment default fresh (never a cached value). Both modes are
    /// bitwise identical (the PEs are mutually independent within a tick);
    /// the parallel mode exists to *prove* that claim under the
    /// equivalence suite, and is off by default.
    pub fn set_stage_par(&mut self, enabled: Option<bool>) {
        self.stage_par = enabled.unwrap_or_else(stage_par_default);
    }

    /// Whether this cube ticks its PEs from a scoped thread pool.
    pub fn stage_par(&self) -> bool {
        self.stage_par
    }

    /// Fast-forward jumps taken across every pass run on this cube.
    pub fn horizon_jumps(&self) -> u64 {
        self.horizon_jumps
    }

    /// Simulated cycles crossed by fast-forward jumps instead of per-cycle
    /// ticking (a measure of how much work event-horizon skipping saved).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Uniform snapshot of every component's counters in one registry —
    /// the source of [`LayerReport`] numbers, diagnostic dumps and the
    /// CSV/JSON exports the experiment harnesses emit.
    pub fn stats_registry(&self) -> StatsRegistry {
        let mut reg = StatsRegistry::new();
        for (i, pe) in self.pes.iter().enumerate() {
            pe.report(&mut reg.scoped(&format!("pe{i}")));
        }
        for (i, png) in self.pngs.iter().enumerate() {
            png.report(&mut reg.scoped(&format!("png{i}")));
        }
        self.net.report(&mut reg.scoped("noc"));
        self.mem.report(&mut reg.scoped("mem"));
        // Always-on sparsity rollup (DESIGN.md §13): zero-operand
        // classification summed across components. Present in every
        // registry — with or without the fast paths enabled — because it
        // is pure classification; `neurocube_power::gating` prices these
        // counters into would-be energy savings after the fact.
        {
            let mut s = reg.scoped("sparsity");
            s.counter(
                "pe.lanes_gated",
                self.pes.iter().map(|p| p.stats().lanes_gated).sum(),
            );
            s.counter(
                "png.zero_state_operands",
                self.pngs
                    .iter()
                    .map(|p| p.stats().zero_state_operands)
                    .sum(),
            );
            s.counter(
                "png.zero_weight_operands",
                self.pngs
                    .iter()
                    .map(|p| p.stats().zero_weight_operands)
                    .sum(),
            );
            s.counter(
                "png.zero_activations",
                self.pngs.iter().map(|p| p.stats().zero_activations).sum(),
            );
            s.counter("dram.zero_words_read", self.mem.total_zero_words_read());
            s.counter(
                "dram.zero_words_written",
                self.mem.total_zero_words_written(),
            );
            s.counter("dram.zero_read_runs", self.mem.total_zero_read_runs());
        }
        // The `fault` scope exists only while an injector is attached, so
        // fault-free registries stay bitwise identical to builds that never
        // heard of fault injection.
        if self.faults.is_some() {
            let mut s = reg.scoped("fault");
            let d = self.mem.fault_counts();
            s.counter("dram.read_flips", d.read_flips);
            s.counter("dram.stuck_bits", d.stuck_bits);
            s.counter("dram.upsets", d.upsets);
            s.counter("dram.upsets_absorbed", d.upsets_absorbed);
            s.counter("dram.ecc_corrected", d.ecc_corrected);
            s.counter("dram.ecc_detected", d.ecc_detected);
            s.counter("dram.ecc_words", d.ecc_words);
            let n = self.net.fault_counts();
            s.counter("noc.corrupt", n.corrupt);
            s.counter("noc.drops", n.drops);
            s.counter("noc.misroutes", n.misroutes);
            s.counter("noc.retransmits", n.retransmits);
            s.counter("noc.unroutable", n.unroutable);
            s.counter("noc.dropped_packets", n.dropped_packets);
            let mut pe = PeFaultCounts::default();
            for p in &self.pes {
                pe.merge(&p.fault_counts());
            }
            s.counter("pe.mac_faults", pe.mac_faults);
            s.counter("pe.dropped_packets", pe.dropped_packets);
            s.counter(
                "png.dropped_packets",
                self.pngs.iter().map(Png::dropped_packets).sum(),
            );
            s.counter(
                "png.unknown_completions",
                self.pngs.iter().map(Png::unknown_completions).sum(),
            );
        }
        reg
    }

    /// Multi-line diagnostic snapshot of every component's counters —
    /// for performance debugging and the ablation reports. One `key =
    /// value` line per statistic, in deterministic key order.
    pub fn debug_dump(&self) -> String {
        self.stats_registry().dump()
    }

    /// Loads a network: builds the layout, writes streamed weights into the
    /// DRAM image and compiles one program per layer — the host's untimed
    /// programming phase (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if the network does not fit the cube or `params` does not
    /// match the spec.
    pub fn load(
        &mut self,
        spec: NetworkSpec,
        params: Vec<Vec<neurocube_fixed::Q88>>,
    ) -> LoadedNetwork {
        let counts = spec.weights_per_layer();
        assert_eq!(params.len(), counts.len(), "one weight array per layer");
        for (i, (p, &n)) in params.iter().zip(&counts).enumerate() {
            assert_eq!(p.len(), n, "layer {i} expects {n} weights");
        }
        let (gw, gh) = self.cfg.grid();
        let layout = NetworkLayout::build(
            &spec,
            gw,
            gh,
            self.cfg.duplicate,
            self.cfg.n_mac as usize,
            self.mem.map(),
        );
        program::load_weights(&spec, &params, &layout, self.mem.storage_mut());
        let programs = (0..spec.depth())
            .map(|i| compile_layer(&spec, &layout, i, self.cfg.mapping()))
            .collect();
        LoadedNetwork {
            spec,
            params,
            layout,
            programs,
        }
    }

    /// Loads an input image into volume 0 (all vaults holding copies),
    /// untimed like the host's data-loading phase.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not match the network's input shape.
    pub fn set_input(&mut self, loaded: &LoadedNetwork, input: &Tensor) {
        assert_eq!(
            input.len(),
            loaded.spec.input_shape().len(),
            "input shape mismatch"
        );
        program::load_volume(
            &loaded.layout.volumes[0],
            input.as_slice(),
            self.cfg.nodes(),
            self.mem.storage_mut(),
        );
    }

    /// Reads volume `i` (0 = input, `i` = output of layer `i-1`) back out
    /// of the DRAM image in canonical order.
    pub fn read_volume(&self, loaded: &LoadedNetwork, i: usize) -> Tensor {
        let vol = &loaded.layout.volumes[i];
        let values = program::read_volume(vol, self.mem.storage());
        Tensor::from_vec(
            vol.shape.channels,
            vol.shape.height,
            vol.shape.width,
            values,
        )
    }

    /// Executes one layer to completion and reports its statistics.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (no forward progress for 2M cycles) —
    /// which would indicate a protocol bug, never a workload property.
    pub fn run_layer(&mut self, loaded: &LoadedNetwork, index: usize) -> LayerReport {
        self.run_pass(loaded, index, PassKind::Forward)
    }

    /// Executes one (possibly backward) pass of a layer. Backward passes
    /// re-run the layer's dataflow — identical loop structure and operand
    /// volume, per the training model in `DESIGN.md`.
    pub fn run_pass(
        &mut self,
        loaded: &LoadedNetwork,
        index: usize,
        pass: PassKind,
    ) -> LayerReport {
        let prog = Arc::clone(&loaded.programs[index]);
        let image = prog.pe_weight_image(&loaded.params[index]);
        let kind = loaded.spec.layers()[index].kind_name();
        self.execute_program(&prog, &image, index, kind, pass)
    }

    /// Configures PNGs and PEs for `prog` (untimed host register writes).
    fn configure_program(&mut self, prog: &Arc<LayerProgram>, image: &[Q88]) {
        for png in &mut self.pngs {
            png.configure(Arc::clone(prog));
        }
        for p in 0..self.cfg.nodes() as u8 {
            if let Some(pe_cfg) = prog.pe_config(p) {
                self.pes[usize::from(p)].configure(pe_cfg, image.to_vec());
            }
        }
    }

    /// Programs and executes one compiled layer program to completion —
    /// the shared engine behind [`Neurocube::run_pass`] (linear layers)
    /// and per-layer graph replay. `layer_index` and `kind` label the
    /// report.
    fn execute_program(
        &mut self,
        prog: &Arc<LayerProgram>,
        image: &[Q88],
        layer_index: usize,
        kind: &'static str,
        pass: PassKind,
    ) -> LayerReport {
        self.configure_program(prog, image);

        // Snapshot statistics.
        let start_cycle = self.now;

        // Host programming phase: charge the configuration-register write
        // time when a programming model is configured (Fig. 8(c); the
        // paper's evaluation leaves this phase untimed), counted against
        // this layer's cycles.
        if let Some(model) = self.cfg.programming {
            self.now += model.layer_cycles(self.cfg.nodes() as u32);
        }
        let before = self.stats_registry();

        // The data-driven execution phase: the per-cycle pipeline, in
        // dependency order. The kernel's CycleLoop owns the completion
        // check and the stalled-simulation watchdog.
        let exec_start = self.now;
        let mut pipeline = Self::pipeline();
        if let Some(enabled) = self.skip_override {
            pipeline = pipeline.with_skip(enabled);
        }
        pipeline.run(
            self,
            exec_start,
            Neurocube::layer_complete,
            Neurocube::total_mac_ops,
            |cube, idle| cube.stall_diagnostic(layer_index, idle),
        );
        self.horizon_jumps += pipeline.jumps();
        self.skipped_cycles += pipeline.skipped_cycles();

        let delta = self.stats_registry().diff(&before);
        let delivered = delta.counter("noc.delivered");
        LayerReport {
            layer_index,
            kind,
            pass: pass.label(),
            cycles: self.now - start_cycle,
            macs: delta.sum_suffix(".mac_ops"),
            packets: delivered,
            lateral_packets: delta.counter("noc.lateral"),
            noc_mean_latency: if delivered > 0 {
                delta.counter("noc.total_latency") as f64 / delivered as f64
            } else {
                0.0
            },
            dram_bits: delta.counter("mem.bits_transferred"),
            dram_energy_j: delta.metric("mem.energy_j"),
            row_misses: delta.counter("mem.row_misses"),
        }
    }

    /// The cube's per-cycle pipeline as kernel stages, in dependency
    /// order: graph sequencer (inert for linear runs) → PNG credit return
    /// → DRAM channels → mem-port ejection → PNG injection → NoC → PEs →
    /// clock.
    fn pipeline() -> CycleLoop<Neurocube> {
        CycleLoop::new()
            .stage(GraphSequencer)
            .stage(PngCreditReturn)
            .stage(DramChannels)
            .stage(MemPortEjection)
            .stage(PngInjection)
            .stage(NocTick)
            .stage(PeTick)
            .stage(AdvanceClock)
    }

    /// Completion predicate for one layer/pass: every PE and PNG reports
    /// done and the fabric has drained.
    fn layer_complete(&self) -> bool {
        self.pes.iter().all(ProcessingElement::layer_done)
            && self.pngs.iter().all(Png::layer_done)
            && self.net.is_idle()
    }

    /// The watchdog's progress measure: useful arithmetic performed.
    fn total_mac_ops(&self) -> u64 {
        self.pes.iter().map(|p| p.stats().mac_ops).sum()
    }

    /// Diagnostic message for a stalled layer — enough component state to
    /// localise the deadlock, plus the full statistics dump.
    fn stall_diagnostic(&self, index: usize, idle_cycles: u64) -> String {
        format!(
            "deadlock in layer {index}: cycle {}, no progress for {idle_cycles} cycles, pngs done {:?}, pes done {:?}, png dumps {:?}, pe positions {:?}, pe progress {:?}, mem pending {:?}, stats:\n{}",
            self.now,
            self.pngs.iter().map(Png::layer_done).collect::<Vec<_>>(),
            self.pes
                .iter()
                .map(ProcessingElement::layer_done)
                .collect::<Vec<_>>(),
            self.pngs.iter().map(Png::debug_state).collect::<Vec<_>>(),
            self.pes
                .iter()
                .map(ProcessingElement::debug_position)
                .collect::<Vec<_>>(),
            self.pes
                .iter()
                .map(ProcessingElement::progress)
                .collect::<Vec<_>>(),
            (0..self.mem.regions())
                .map(|r| self.mem.pending(r))
                .collect::<Vec<_>>(),
            self.debug_dump()
        )
    }

    /// Runs a full inference: loads `input`, executes every layer and
    /// returns the network output (read back from DRAM) plus the run
    /// report.
    pub fn run_inference(&mut self, loaded: &LoadedNetwork, input: &Tensor) -> (Tensor, RunReport) {
        self.set_input(loaded, input);
        let mut report = RunReport {
            layers: Vec::with_capacity(loaded.spec.depth()),
            memory_bytes: loaded.layout.total_bytes(),
            memory_minimal_bytes: loaded.layout.minimal_bytes(),
            fault: None,
        };
        for i in 0..loaded.spec.depth() {
            report.layers.push(self.run_layer(loaded, i));
        }
        report.fault = self.fault_summary();
        let output = self.read_volume(loaded, loaded.spec.depth());
        (output, report)
    }

    /// Runs one training step's worth of passes (forward + backward +
    /// weight update, §VI-2). Timing-accurate; gradient values are modeled
    /// by re-running each layer's dataflow (see `DESIGN.md` — functional
    /// training lives in `neurocube-nn`).
    pub fn run_training_step(&mut self, loaded: &LoadedNetwork, input: &Tensor) -> RunReport {
        self.set_input(loaded, input);
        let mut report = RunReport {
            layers: Vec::new(),
            memory_bytes: loaded.layout.total_bytes(),
            memory_minimal_bytes: loaded.layout.minimal_bytes(),
            fault: None,
        };
        // Forward sweep (activations must be stored for backprop).
        for i in 0..loaded.spec.depth() {
            report
                .layers
                .push(self.run_pass(loaded, i, PassKind::Forward));
        }
        // Backward sweep.
        for i in (0..loaded.spec.depth()).rev() {
            for pass in training_passes(&loaded.spec, i) {
                if pass != PassKind::Forward {
                    report.layers.push(self.run_pass(loaded, i, pass));
                }
            }
        }
        report
    }

    /// Compiles a layer DAG onto this cube and writes its weights into the
    /// DRAM image — the host's untimed programming phase, done once per
    /// graph instead of once per layer.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the graph cannot be placed in the
    /// cube or `params` does not match the graph's weight counts.
    pub fn load_graph(
        &mut self,
        graph: &GraphSpec,
        params: Vec<Vec<Q88>>,
    ) -> Result<LoadedGraph, CompileError> {
        let program = compile_graph(graph, self.cfg.mapping(), self.mem.map())?;
        graph_load_weights(&program, &params, self.mem.storage_mut())?;
        Ok(LoadedGraph { program, params })
    }

    /// Loads an input image into the graph's input buffer, untimed like
    /// the host's data-loading phase.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not match the graph's input shape.
    pub fn set_graph_input(&mut self, loaded: &LoadedGraph, input: &Tensor) {
        assert_eq!(
            input.len(),
            loaded.graph().input_shape().len(),
            "input shape mismatch"
        );
        program::load_volume(
            &loaded.program.input_vol,
            input.as_slice(),
            self.cfg.nodes(),
            self.mem.storage_mut(),
        );
    }

    /// Reads graph node `i`'s output volume back out of the DRAM image in
    /// canonical order.
    pub fn read_node_volume(&self, loaded: &LoadedGraph, i: usize) -> Tensor {
        let vol = &loaded.program.node_vols[i];
        let values = program::read_volume(vol, self.mem.storage());
        Tensor::from_vec(
            vol.shape.channels,
            vol.shape.height,
            vol.shape.width,
            values,
        )
    }

    /// Runs a full graph inference with the cube programmed **once**: the
    /// host charges a single programming phase up front and the
    /// `GraphSequencer` stage then retargets the PNGs/PEs at each phase
    /// boundary without leaving the cycle loop. Returns the output node's
    /// tensor plus a report with one entry per phase, `layer_index` set to
    /// the graph node each phase executed.
    pub fn run_graph_inference(
        &mut self,
        loaded: &LoadedGraph,
        input: &Tensor,
    ) -> (Tensor, RunReport) {
        self.set_graph_input(loaded, input);
        let report = self.run_graph_pass(loaded);
        let output = self.read_node_volume(loaded, loaded.program.graph.output_node());
        (output, report)
    }

    /// Runs a full graph inference the pre-compiler way — one host
    /// programming round-trip per phase — as the replay baseline. Values
    /// are bitwise identical to [`Neurocube::run_graph_inference`]; only
    /// timing differs.
    pub fn run_graph_replay(
        &mut self,
        loaded: &LoadedGraph,
        input: &Tensor,
    ) -> (Tensor, RunReport) {
        let (volumes, report) = self.run_graph_replay_collect(loaded, input);
        let output = volumes
            .into_iter()
            .nth(loaded.program.graph.output_node())
            .expect("graph has an output node");
        (output, report)
    }

    /// Per-layer replay that also collects every node's output tensor,
    /// read back as soon as the phase that finalizes it completes — the
    /// differential harness's view of all intermediate volumes.
    pub fn run_graph_replay_collect(
        &mut self,
        loaded: &LoadedGraph,
        input: &Tensor,
    ) -> (Vec<Tensor>, RunReport) {
        self.set_graph_input(loaded, input);
        let prog = &loaded.program;
        let depth = prog.graph.depth();
        let mut volumes: Vec<Option<Tensor>> = vec![None; depth];
        // Concat-of-inputs nodes are final before any phase runs.
        for (node, slot) in volumes.iter_mut().enumerate() {
            if prog.ready_after_phase(node).is_none() {
                *slot = Some(self.read_node_volume(loaded, node));
            }
        }
        let mut report = RunReport {
            layers: Vec::with_capacity(prog.phases.len()),
            memory_bytes: prog.total_bytes(),
            memory_minimal_bytes: prog.minimal_bytes(),
            fault: None,
        };
        for k in 0..prog.phases.len() {
            report.layers.push(self.run_graph_phase(loaded, k));
            for (node, slot) in volumes.iter_mut().enumerate() {
                if prog.ready_after_phase(node) == Some(k) {
                    *slot = Some(self.read_node_volume(loaded, node));
                }
            }
        }
        report.fault = self.fault_summary();
        let volumes = volumes
            .into_iter()
            .map(|v| v.expect("every node is finalized by some phase"))
            .collect();
        (volumes, report)
    }

    /// Executes one phase of a compiled graph in isolation (with its own
    /// programming charge) — the replay baseline's unit of work.
    fn run_graph_phase(&mut self, loaded: &LoadedGraph, k: usize) -> LayerReport {
        let prog = Arc::clone(&loaded.program.phases[k]);
        let node = loaded.program.node_of(k);
        let image = prog.pe_weight_image(&loaded.params[node]);
        let kind = Self::node_kind(&loaded.program, node);
        self.execute_program(&prog, &image, node, kind, PassKind::Forward)
    }

    /// Report label for a graph node's operation.
    fn node_kind(prog: &MultiLayerProgram, node: usize) -> &'static str {
        match prog.graph.nodes()[node].op {
            GraphOp::Layer(spec) => spec.kind_name(),
            GraphOp::Concat => "concat",
        }
    }

    /// The pipelined execution engine: charges one programming phase,
    /// configures phase 0 and runs the cycle loop to graph completion,
    /// with the [`GraphSequencer`] retargeting the cube at each phase
    /// hand-off. Attribution uses the sequencer's recorded boundaries and
    /// statistics snapshots.
    fn run_graph_pass(&mut self, loaded: &LoadedGraph) -> RunReport {
        let prog = &loaded.program;
        let n = prog.phases.len();
        let images: Vec<Vec<Q88>> = (0..n)
            .map(|k| prog.phases[k].pe_weight_image(&loaded.params[prog.node_of(k)]))
            .collect();
        let phase0 = Arc::clone(&prog.phases[0]);
        self.configure_program(&phase0, &images[0]);

        let start_cycle = self.now;
        // One host programming charge for the whole graph — the point of
        // compiling it (Fig. 8(c) amortized across every layer).
        if let Some(model) = self.cfg.programming {
            self.now += model.layer_cycles(self.cfg.nodes() as u32);
        }
        let before = self.stats_registry();

        self.graph_run = Some(GraphRun {
            phases: prog.phases.clone(),
            images,
            next: 1,
            complete: false,
            boundaries: Vec::with_capacity(n.saturating_sub(1)),
            snapshots: Vec::with_capacity(n.saturating_sub(1)),
        });
        let exec_start = self.now;
        let mut pipeline = Self::pipeline();
        if let Some(enabled) = self.skip_override {
            pipeline = pipeline.with_skip(enabled);
        }
        pipeline.run(
            self,
            exec_start,
            Neurocube::graph_done,
            Neurocube::total_mac_ops,
            |cube, idle| cube.graph_stall_diagnostic(idle),
        );
        self.horizon_jumps += pipeline.jumps();
        self.skipped_cycles += pipeline.skipped_cycles();

        let run = self.graph_run.take().expect("graph run in progress");
        let final_stats = self.stats_registry();
        let mut layers = Vec::with_capacity(n);
        let mut prev_cycle = start_cycle;
        let mut prev_stats = &before;
        for k in 0..n {
            let (end_cycle, stats) = if k + 1 < n {
                (run.boundaries[k], &run.snapshots[k])
            } else {
                // The final phase absorbs the loop-exit overshoot so the
                // per-phase cycles sum to the end-to-end count.
                (self.now, &final_stats)
            };
            let delta = stats.diff(prev_stats);
            let delivered = delta.counter("noc.delivered");
            let node = prog.node_of(k);
            layers.push(LayerReport {
                layer_index: node,
                kind: Self::node_kind(prog, node),
                pass: PassKind::Forward.label(),
                cycles: end_cycle - prev_cycle,
                macs: delta.sum_suffix(".mac_ops"),
                packets: delivered,
                lateral_packets: delta.counter("noc.lateral"),
                noc_mean_latency: if delivered > 0 {
                    delta.counter("noc.total_latency") as f64 / delivered as f64
                } else {
                    0.0
                },
                dram_bits: delta.counter("mem.bits_transferred"),
                dram_energy_j: delta.metric("mem.energy_j"),
                row_misses: delta.counter("mem.row_misses"),
            });
            prev_cycle = end_cycle;
            prev_stats = stats;
        }
        RunReport {
            layers,
            memory_bytes: prog.total_bytes(),
            memory_minimal_bytes: prog.minimal_bytes(),
            fault: self.fault_summary(),
        }
    }

    /// Phase hand-off, called by the [`GraphSequencer`] the first cycle
    /// the current phase reports complete: records the boundary and
    /// statistics snapshot, then retargets PNGs and PEs at the next phase
    /// (or marks the run complete).
    fn graph_advance(&mut self, now: u64) {
        let mut run = self.graph_run.take().expect("graph run in progress");
        if run.next < run.phases.len() {
            run.boundaries.push(now);
            run.snapshots.push(self.stats_registry());
            let prog = Arc::clone(&run.phases[run.next]);
            let image = run.images[run.next].clone();
            self.configure_program(&prog, &image);
            run.next += 1;
        } else {
            run.complete = true;
        }
        self.graph_run = Some(run);
    }

    /// Completion predicate for a compiled-graph run.
    fn graph_done(&self) -> bool {
        self.graph_run.as_ref().is_some_and(|r| r.complete)
    }

    /// Stall diagnostic for a compiled-graph run, labelled with the phase
    /// that hung.
    fn graph_stall_diagnostic(&self, idle_cycles: u64) -> String {
        let phase = self
            .graph_run
            .as_ref()
            .map_or(0, |r| r.next.saturating_sub(1));
        self.stall_diagnostic(phase, idle_cycles)
    }
}

/// Credit return: PNGs observe PE progress for run-ahead flow control,
/// then issue writes + prefetch reads.
struct PngCreditReturn;

impl Clocked<Neurocube> for PngCreditReturn {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        // Credit capture: `cube.progress` is the canonical counter array
        // every PNG reads in place (no per-PNG mirrors — the old delta
        // broadcast fanned each change out to all sixteen PNGs, a 16 × 16
        // store pattern on saturated cubes). Refreshing it is sixteen
        // loads and stores into one cache line.
        for (i, pe) in cube.pes.iter().enumerate() {
            cube.progress[i] = pe.progress();
        }
        let Neurocube {
            pngs,
            mem,
            progress,
            ..
        } = cube;
        for png in pngs.iter_mut() {
            png.tick(now, mem, progress);
        }
    }

    fn next_event(&self, now: u64, cube: &Neurocube) -> Option<u64> {
        // A fresh credit broadcast can un-gate a held operand batch, so the
        // tick is only null while PE progress still matches what the PNGs
        // last saw.
        if cube.pes.len() != cube.progress.len()
            || cube
                .pes
                .iter()
                .zip(&cube.progress)
                .any(|(pe, &seen)| pe.progress() != seen)
        {
            return None;
        }
        let mut horizon = u64::MAX;
        for png in &cube.pngs {
            horizon = horizon.min(png.next_event(now, &cube.mem, &cube.progress)?);
        }
        Some(horizon)
    }

    fn skip(&mut self, from: u64, to: u64, cube: &mut Neurocube) {
        let Neurocube {
            pngs,
            mem,
            progress,
            ..
        } = cube;
        for png in pngs.iter_mut() {
            png.skip(from, to, mem, progress);
        }
    }

    fn name(&self) -> &'static str {
        "png-credit-return"
    }
}

/// Physical memory channels; completions dispatch to the issuing PNG.
struct DramChannels;

impl Clocked<Neurocube> for DramChannels {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        for ch in 0..cube.mem.channels() {
            if let Some(c) = cube.mem.tick_channel(ch, now) {
                let v = Png::vault_of_tag(c.tag);
                cube.pngs[usize::from(v)].on_completion(c.tag, c.data);
            }
        }
    }

    fn next_event(&self, now: u64, cube: &Neurocube) -> Option<u64> {
        // A channel that would serve (and so complete a request into a
        // PNG) reports `None`; quiescent channels bound the horizon by
        // their bank-ready and refresh timers.
        cube.mem.next_event(now)
    }

    fn skip(&mut self, from: u64, to: u64, cube: &mut Neurocube) {
        cube.mem.skip(from, to);
    }

    fn name(&self) -> &'static str {
        "dram-channels"
    }
}

/// NoC mem-port ejection: one packet per node per cycle, routed to the
/// owning PNG (the packet's source vault when controllers are shared).
struct MemPortEjection;

impl Clocked<Neurocube> for MemPortEjection {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        for node in 0..cube.cfg.nodes() as u8 {
            let src = match cube.net.peek_for_mem(node, now) {
                Some(pkt) => pkt.src,
                None => continue,
            };
            let handler = if cube.cfg.identity_attach() {
                node
            } else {
                src
            };
            if cube.pngs[usize::from(handler)].can_take_result(src) {
                let pkt = cube
                    .net
                    .pop_for_mem(node, now)
                    .expect("peeked packet vanished");
                cube.pngs[usize::from(handler)].on_result(pkt, now);
            }
        }
    }

    fn next_event(&self, _now: u64, cube: &Neurocube) -> Option<u64> {
        // Ejection only acts while flits are buffered; an empty fabric is
        // purely reactive. (Any buffered flit already forces the NoC stage
        // to demand ticks, so a coarse idle check loses nothing.)
        if cube.net.is_idle() {
            Some(u64::MAX)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "mem-port-ejection"
    }
}

/// PNG packet injection: one per node per cycle; round-robin among PNGs
/// sharing an attach node.
struct PngInjection;

impl Clocked<Neurocube> for PngInjection {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        for node in 0..cube.cfg.nodes() as u8 {
            let sharing = &cube.attach_groups[usize::from(node)];
            if sharing.is_empty() {
                continue;
            }
            // Single-owner attach nodes (every HMC node) take the no-spin
            // path: the round-robin reduction is a real `div` per node per
            // cycle otherwise.
            let n = sharing.len();
            let offset = if n == 1 { 0 } else { (now as usize) % n };
            for i in 0..n {
                let mut slot = offset + i;
                if slot >= n {
                    slot -= n;
                }
                let v = sharing[slot];
                if let Some(&pkt) = cube.pngs[usize::from(v)].peek_outgoing() {
                    if cube.net.try_inject_from_mem(node, pkt, now) {
                        cube.pngs[usize::from(v)].pop_outgoing();
                    } else {
                        cube.pngs[usize::from(v)].note_inject_stall();
                    }
                    break;
                }
            }
        }
    }

    fn next_event(&self, _now: u64, cube: &Neurocube) -> Option<u64> {
        // Injection mutates state exactly when some PNG holds an outgoing
        // packet (the round-robin offset is derived from `now`, not
        // stored, so idle cycles leave no trace).
        if cube.pngs.iter().any(|p| p.peek_outgoing().is_some()) {
            None
        } else {
            Some(u64::MAX)
        }
    }

    fn name(&self) -> &'static str {
        "png-injection"
    }
}

/// One fabric cycle: flits advance one link.
struct NocTick;

impl Clocked<Neurocube> for NocTick {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        cube.net.tick(now);
    }

    fn next_event(&self, _now: u64, cube: &Neurocube) -> Option<u64> {
        // Buffered flits advance every cycle; an empty fabric only rotates
        // arbitration priorities, which `skip` replays in O(routers).
        if cube.net.is_idle() {
            Some(u64::MAX)
        } else {
            None
        }
    }

    fn skip(&mut self, from: u64, to: u64, cube: &mut Neurocube) {
        cube.net.skip_cycles(to - from);
    }

    fn name(&self) -> &'static str {
        "noc"
    }
}

/// PEs: operand delivery, firing, result injection.
struct PeTick;

impl PeTick {
    /// Stage-parallel variant of the PE tick. The serial loop fuses three
    /// per-PE steps (accept → compute → inject); here they become three
    /// phases so the compute step — the only one that needs no NoC access
    /// — can fan out across a scoped thread pool.
    ///
    /// Bitwise equivalence to the serial loop rests on two facts. First,
    /// each PE's own accept → compute → inject order is preserved: phase 1
    /// completes every accept before any compute, phase 3 injects after
    /// every compute. Second, the cross-PE reorderings the phase split
    /// introduces only commute operations on *disjoint* state: accepts
    /// pop from per-node PE-port *output* queues while injects push to
    /// per-node PE-port *input* queues, `ProcessingElement::tick` touches
    /// only that PE, and the NoC counters both paths bump are sums —
    /// order within a cycle cannot change their totals. Each serial phase
    /// walks nodes in ascending order, so even per-queue effects land in
    /// a deterministic sequence.
    fn tick_parallel(now: u64, cube: &mut Neurocube) {
        // Phase 1 (serial): operand acceptance from the NoC.
        for p in 0..cube.cfg.nodes() as u8 {
            let pe = &mut cube.pes[usize::from(p)];
            if !pe.layer_done() {
                if let Some(&pkt) = cube.net.peek_for_pe(p, now) {
                    if pe.try_accept(pkt) {
                        let _ = cube.net.pop_for_pe(p, now);
                    }
                }
            }
        }
        // Phase 2 (parallel): compute. PEs are mutually independent
        // within a tick, so disjoint chunks may run concurrently.
        let shards = std::thread::available_parallelism()
            .map_or(1, usize::from)
            .clamp(1, cube.pes.len());
        let chunk = cube.pes.len().div_ceil(shards);
        std::thread::scope(|s| {
            for slice in cube.pes.chunks_mut(chunk) {
                s.spawn(move || {
                    for pe in slice {
                        if !pe.layer_done() {
                            pe.tick(now);
                        }
                    }
                });
            }
        });
        // Phase 3 (serial): result injection.
        for p in 0..cube.cfg.nodes() as u8 {
            let pe = &mut cube.pes[usize::from(p)];
            if let Some(&r) = pe.peek_result() {
                let mut phys = r;
                phys.dst = cube.cfg.attach[usize::from(r.dst)];
                if cube.net.try_inject_from_pe(p, phys, now) {
                    pe.pop_result();
                }
            }
        }
    }
}

impl Clocked<Neurocube> for PeTick {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        if cube.stage_par {
            Self::tick_parallel(now, cube);
            return;
        }
        for p in 0..cube.cfg.nodes() as u8 {
            let pe = &mut cube.pes[usize::from(p)];
            if !pe.layer_done() {
                if let Some(&pkt) = cube.net.peek_for_pe(p, now) {
                    if pe.try_accept(pkt) {
                        let _ = cube.net.pop_for_pe(p, now);
                    }
                }
                pe.tick(now);
            }
            if let Some(&r) = pe.peek_result() {
                // Physical routing: results travel to the mesh node of
                // the region's controller.
                let mut phys = r;
                phys.dst = cube.cfg.attach[usize::from(r.dst)];
                if cube.net.try_inject_from_pe(p, phys, now) {
                    pe.pop_result();
                }
            }
        }
    }

    fn next_event(&self, now: u64, cube: &Neurocube) -> Option<u64> {
        // Operand acceptance needs buffered flits (fabric idle rules that
        // out); result injection needs a pending result; computation is
        // each PE's own horizon (its cadence timer).
        if !cube.net.is_idle() {
            return None;
        }
        let mut horizon = u64::MAX;
        for pe in &cube.pes {
            if pe.peek_result().is_some() {
                return None;
            }
            horizon = horizon.min(pe.next_event(now)?);
        }
        Some(horizon)
    }

    fn skip(&mut self, from: u64, to: u64, cube: &mut Neurocube) {
        for pe in &mut cube.pes {
            pe.skip(from, to);
        }
    }

    fn name(&self) -> &'static str {
        "pe"
    }
}

/// Keeps the cube's reference clock in step with the kernel's cycle
/// counter (must be the last stage of the pipeline).
struct AdvanceClock;

impl Clocked<Neurocube> for AdvanceClock {
    fn tick(&mut self, _now: u64, cube: &mut Neurocube) {
        cube.now += 1;
    }

    fn next_event(&self, _now: u64, _cube: &Neurocube) -> Option<u64> {
        // Purely mechanical: never vetoes a jump, never bounds one.
        Some(u64::MAX)
    }

    fn skip(&mut self, from: u64, to: u64, cube: &mut Neurocube) {
        cube.now += to - from;
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

/// First pipeline stage of a compiled-graph run: the on-cube controller
/// that retargets PNGs and PEs at the next phase the first cycle the
/// current one reports complete, so a whole layer DAG executes without a
/// host round-trip. Inert (purely reactive) when no graph run is active,
/// leaving linear runs bitwise identical to a pipeline without it.
struct GraphSequencer;

impl Clocked<Neurocube> for GraphSequencer {
    fn tick(&mut self, now: u64, cube: &mut Neurocube) {
        let active = matches!(&cube.graph_run, Some(run) if !run.complete);
        if active && cube.layer_complete() {
            cube.graph_advance(now);
        }
    }

    fn next_event(&self, _now: u64, cube: &Neurocube) -> Option<u64> {
        match &cube.graph_run {
            // A hand-off is pending the moment the phase completes; until
            // then the drain is bounded by the other stages' events, so a
            // jump can never skip past the completion cycle (the loop's
            // done-check cadence caps every jump).
            Some(run) if !run.complete => {
                if cube.layer_complete() {
                    None
                } else {
                    Some(u64::MAX)
                }
            }
            _ => Some(u64::MAX),
        }
    }

    fn name(&self) -> &'static str {
        "graph-sequencer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;
    use neurocube_nn::{LayerSpec, Shape};

    /// A stalled simulation is a bug, and the watchdog must turn it into
    /// a diagnosable panic instead of a hang: configure a real layer but
    /// drive a crippled pipeline with no PNG stages, so operands can
    /// never reach the PEs and progress stays flat forever.
    #[test]
    fn watchdog_panics_with_diagnostic_dump_on_crafted_stall() {
        let spec = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![LayerSpec::conv(2, 3, Activation::Tanh)],
        )
        .unwrap();
        let params = spec.init_params(1, 0.25);
        let mut cube = Neurocube::new(SystemConfig::paper(true));
        let loaded = cube.load(spec, params);
        let prog = Arc::clone(&loaded.programs[0]);
        for png in &mut cube.pngs {
            png.configure(Arc::clone(&prog));
        }
        for p in 0..cube.cfg.nodes() as u8 {
            if let Some(pe_cfg) = prog.pe_config(p) {
                let image = prog.pe_weight_image(&loaded.params[0]);
                cube.pes[usize::from(p)].configure(pe_cfg, image);
            }
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CycleLoop::new()
                .stage(NocTick)
                .stage(PeTick)
                .stage(AdvanceClock)
                .run(
                    &mut cube,
                    0,
                    Neurocube::layer_complete,
                    Neurocube::total_mac_ops,
                    |c, idle| c.stall_diagnostic(0, idle),
                );
        }))
        .expect_err("a starved pipeline must trip the watchdog");
        let msg = err
            .downcast_ref::<String>()
            .expect("watchdog panics with a formatted message");
        assert!(msg.contains("deadlock in layer 0"), "got: {msg}");
        assert!(
            msg.contains("noc.delivered"),
            "diagnostic must include the stats dump, got: {msg}"
        );
    }

    /// Event-horizon fast-forwarding must be invisible in every observable:
    /// identical output tensor, identical final cycle counter, identical
    /// statistics registry — while actually skipping a meaningful number
    /// of cycles (otherwise the test proves nothing).
    #[test]
    fn fast_forward_matches_naive_loop_bitwise() {
        let spec = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::fc(10, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = spec.init_params(1, 0.25);
        let input = Tensor::from_vec(
            1,
            12,
            12,
            (0..144)
                .map(|i| neurocube_fixed::Q88::from_f64(f64::from(i % 7) * 0.1 - 0.3))
                .collect(),
        );

        let run = |skip: bool| {
            let mut cube = Neurocube::new(SystemConfig::paper(true));
            cube.set_cycle_skip(Some(skip));
            let loaded = cube.load(spec.clone(), params.clone());
            let (out, report) = cube.run_inference(&loaded, &input);
            let cycles: Vec<u64> = report.layers.iter().map(|l| l.cycles).collect();
            (
                out,
                cycles,
                cube.now(),
                cube.stats_registry(),
                cube.skipped_cycles(),
                cube.horizon_jumps(),
            )
        };

        let (out_fast, cyc_fast, now_fast, stats_fast, skipped, jumps) = run(true);
        let (out_ref, cyc_ref, now_ref, stats_ref, skipped_ref, jumps_ref) = run(false);

        assert_eq!(skipped_ref, 0, "the oracle must not fast-forward");
        assert_eq!(jumps_ref, 0);
        assert!(
            skipped > 0 && jumps > 0,
            "fast mode never jumped ({skipped} cycles, {jumps} jumps): \
             the workload no longer exercises skipping"
        );
        assert_eq!(now_fast, now_ref, "final cycle counters diverge");
        assert_eq!(cyc_fast, cyc_ref, "per-layer cycle counts diverge");
        assert_eq!(
            out_fast.as_slice(),
            out_ref.as_slice(),
            "output tensors diverge"
        );
        assert_eq!(stats_fast, stats_ref, "statistics registries diverge");
    }

    fn tiny_net() -> (NetworkSpec, Vec<Vec<neurocube_fixed::Q88>>, Tensor) {
        let spec = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::fc(10, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = spec.init_params(1, 0.25);
        let input = Tensor::from_vec(
            1,
            12,
            12,
            (0..144)
                .map(|i| neurocube_fixed::Q88::from_f64(f64::from(i % 7) * 0.1 - 0.3))
                .collect(),
        );
        (spec, params, input)
    }

    /// A zero-rate, ECC-off fault config is normalized away: the run is
    /// bitwise identical to one on a cube that never saw the fault crate
    /// (same registry key set, same values, no `fault` report section).
    #[test]
    fn zero_rate_fault_config_is_bitwise_identical_to_no_injector() {
        let (spec, params, input) = tiny_net();
        let run = |cfg: Option<FaultConfig>| {
            let mut cube = Neurocube::new(SystemConfig::paper(true));
            cube.set_fault_config(cfg);
            let loaded = cube.load(spec.clone(), params.clone());
            let (out, report) = cube.run_inference(&loaded, &input);
            (out, report, cube.stats_registry())
        };
        let (out_ref, rep_ref, stats_ref) = run(None);
        let (out_zero, rep_zero, stats_zero) = run(Some(FaultConfig::uniform(7, 0.0)));
        assert_eq!(out_zero.as_slice(), out_ref.as_slice());
        assert_eq!(rep_zero, rep_ref);
        assert!(rep_zero.fault.is_none(), "zero-rate config must detach");
        assert_eq!(stats_zero, stats_ref, "registries diverge at rate 0");
        assert!(
            !stats_zero.counters().any(|(k, _)| k.starts_with("fault.")),
            "no fault scope without an injector"
        );
    }

    /// With faults enabled, event-horizon skipping must still be invisible:
    /// skip and naive runs see the *same* faults at the same cycles and end
    /// with bitwise-identical outputs, reports, and registries.
    #[test]
    fn faulty_run_skip_matches_naive_bitwise() {
        let (spec, params, input) = tiny_net();
        let cfg = FaultConfig::uniform(0xFA017, 2e-5);
        let run = |skip: bool| {
            let mut cube = Neurocube::new(SystemConfig::paper(true));
            cube.set_cycle_skip(Some(skip));
            cube.set_fault_config(Some(cfg.clone()));
            let loaded = cube.load(spec.clone(), params.clone());
            let (out, report) = cube.run_inference(&loaded, &input);
            (out, report, cube.stats_registry(), cube.horizon_jumps())
        };
        let (out_fast, rep_fast, stats_fast, jumps) = run(true);
        let (out_ref, rep_ref, stats_ref, jumps_ref) = run(false);
        assert_eq!(jumps_ref, 0, "the oracle must not fast-forward");
        assert!(jumps > 0, "fault mode no longer exercises skipping");
        let summary = rep_fast.fault.expect("injector attached");
        assert!(
            !summary.is_clean(),
            "rate 2e-5 must materialize at least one fault: {summary}"
        );
        assert_eq!(out_fast.as_slice(), out_ref.as_slice());
        assert_eq!(rep_fast, rep_ref, "reports diverge under faults");
        assert_eq!(stats_fast, stats_ref, "registries diverge under faults");
        assert!(
            stats_fast.counters().any(|(k, _)| k.starts_with("fault.")),
            "fault scope missing from the registry"
        );
    }

    /// Stage-parallel PE ticking must be invisible in every observable:
    /// same outputs, reports, cycle counters and statistics registries as
    /// the serial loop — the direct test of the phase-split argument on
    /// [`PeTick::tick_parallel`].
    #[test]
    fn stage_parallel_pe_tick_matches_serial_bitwise() {
        let (spec, params, input) = tiny_net();
        let run = |par: bool| {
            let mut cube = Neurocube::new(SystemConfig::paper(true));
            cube.set_stage_par(Some(par));
            let loaded = cube.load(spec.clone(), params.clone());
            let (out, report) = cube.run_inference(&loaded, &input);
            (out, report, cube.now(), cube.stats_registry())
        };
        let (out_par, rep_par, now_par, stats_par) = run(true);
        let (out_ser, rep_ser, now_ser, stats_ser) = run(false);
        assert_eq!(out_par.as_slice(), out_ser.as_slice(), "outputs diverge");
        assert_eq!(rep_par, rep_ser, "reports diverge");
        assert_eq!(now_par, now_ser, "cycle counters diverge");
        assert_eq!(stats_par, stats_ser, "registries diverge");
    }

    /// The same configured layer on the full pipeline completes without
    /// tripping the watchdog — the budget only punishes genuine stalls.
    #[test]
    fn full_pipeline_completes_without_tripping_watchdog() {
        let spec = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![LayerSpec::conv(2, 3, Activation::Tanh)],
        )
        .unwrap();
        let params = spec.init_params(1, 0.25);
        let mut cube = Neurocube::new(SystemConfig::paper(true));
        let loaded = cube.load(spec, params);
        let report = cube.run_layer(&loaded, 0);
        assert!(report.macs > 0);
        assert!(report.cycles < 2_000_000, "healthy layers finish quickly");
    }

    fn graph_input() -> Tensor {
        Tensor::from_vec(
            1,
            12,
            12,
            (0..144)
                .map(|i| Q88::from_f64(f64::from(i % 7) * 0.1 - 0.3))
                .collect(),
        )
    }

    /// Pipelined graph execution (one host programming round-trip,
    /// sequencer-driven phase hand-offs) must produce bitwise the same
    /// output and every-node intermediate values as per-layer replay —
    /// the sequencer only changes *when* the host reprograms, never what
    /// flows through the vaults.
    #[test]
    fn pipelined_graph_matches_replay_bitwise() {
        let graph = neurocube_nn::workloads::residual_toy();
        let params = graph.init_params(11, 0.25);
        let input = graph_input();

        let mut cube = Neurocube::new(SystemConfig::paper(true));
        let loaded = cube.load_graph(&graph, params.clone()).unwrap();
        let (out_pipe, rep_pipe) = cube.run_graph_inference(&loaded, &input);

        let mut cube2 = Neurocube::new(SystemConfig::paper(true));
        let loaded2 = cube2.load_graph(&graph, params).unwrap();
        let (volumes, rep_replay) = cube2.run_graph_replay_collect(&loaded2, &input);

        assert_eq!(
            out_pipe.as_slice(),
            volumes[graph.output_node()].as_slice(),
            "pipelined and replayed outputs diverge"
        );
        // Both runs issue identical DRAM traffic, so the *end-state* bytes
        // of every node region must agree bitwise — including regions the
        // allocator recycled for later phases (equally stale in both).
        for node in 0..graph.depth() {
            assert_eq!(
                cube.read_node_volume(&loaded, node).as_slice(),
                cube2.read_node_volume(&loaded2, node).as_slice(),
                "node {node} end-state regions diverge"
            );
        }
        // Same phases, same labels, same MAC work per phase.
        assert_eq!(rep_pipe.layers.len(), rep_replay.layers.len());
        for (p, r) in rep_pipe.layers.iter().zip(&rep_replay.layers) {
            assert_eq!(p.layer_index, r.layer_index);
            assert_eq!(p.kind, r.kind);
            assert_eq!(p.macs, r.macs);
        }
    }

    /// Per-phase attribution must tile the run exactly: one report entry
    /// per phase labelled with its graph node, cycles summing to the
    /// end-to-end count with no gaps or double counting.
    #[test]
    fn graph_attribution_tiles_the_run() {
        let graph = neurocube_nn::workloads::residual_toy();
        let params = graph.init_params(11, 0.25);
        let mut cube = Neurocube::new(SystemConfig::paper(true));
        let start = cube.now();
        let loaded = cube.load_graph(&graph, params).unwrap();
        let (_, report) = cube.run_graph_inference(&loaded, &graph_input());
        let prog = loaded.program();
        assert_eq!(report.layers.len(), prog.phases.len());
        for (k, layer) in report.layers.iter().enumerate() {
            assert_eq!(layer.layer_index, prog.node_of(k));
            assert!(layer.cycles > 0, "phase {k} attributed zero cycles");
            assert!(layer.macs > 0, "phase {k} attributed zero MACs");
        }
        assert_eq!(
            report.total_cycles(),
            cube.now() - start,
            "per-phase cycles must sum to the end-to-end count"
        );
        assert_eq!(
            report.memory_bytes,
            prog.total_bytes(),
            "report must carry the graph footprint"
        );
    }

    /// Event-horizon skipping must stay invisible across sequencer-driven
    /// phase hand-offs: identical outputs, cycle counters and registries,
    /// while still actually jumping.
    #[test]
    fn graph_skip_matches_naive_bitwise() {
        let graph = neurocube_nn::workloads::residual_toy();
        let params = graph.init_params(11, 0.25);
        let input = graph_input();
        let run = |skip: bool| {
            let mut cube = Neurocube::new(SystemConfig::paper(true));
            cube.set_cycle_skip(Some(skip));
            let loaded = cube.load_graph(&graph, params.clone()).unwrap();
            let (out, report) = cube.run_graph_inference(&loaded, &input);
            let cycles: Vec<u64> = report.layers.iter().map(|l| l.cycles).collect();
            (
                out,
                cycles,
                cube.now(),
                cube.stats_registry(),
                cube.horizon_jumps(),
            )
        };
        let (out_fast, cyc_fast, now_fast, stats_fast, jumps) = run(true);
        let (out_ref, cyc_ref, now_ref, stats_ref, jumps_ref) = run(false);
        assert_eq!(jumps_ref, 0, "the oracle must not fast-forward");
        assert!(jumps > 0, "graph runs no longer exercise skipping");
        assert_eq!(now_fast, now_ref, "final cycle counters diverge");
        assert_eq!(cyc_fast, cyc_ref, "per-phase cycle counts diverge");
        assert_eq!(out_fast.as_slice(), out_ref.as_slice());
        assert_eq!(stats_fast, stats_ref, "registries diverge");
    }

    /// A linear chain expressed as a graph must produce exactly the values
    /// of the same chain run through the linear [`Neurocube::run_inference`]
    /// path — the graph compiler is a strict generalization.
    #[test]
    fn linear_graph_embedding_matches_linear_runner() {
        let spec = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(5, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let graph = spec.to_graph();
        let params = spec.init_params(3, 0.25);
        let input = graph_input();

        let mut linear_cube = Neurocube::new(SystemConfig::paper(true));
        let loaded = linear_cube.load(spec, params.clone());
        let (out_linear, _) = linear_cube.run_inference(&loaded, &input);

        let mut graph_cube = Neurocube::new(SystemConfig::paper(true));
        let lg = graph_cube.load_graph(&graph, params).unwrap();
        let (out_graph, report) = graph_cube.run_graph_inference(&lg, &input);

        assert_eq!(out_graph.as_slice(), out_linear.as_slice());
        assert_eq!(report.layers.len(), 3);
    }
}
