//! The assembled Neurocube and its cycle loop.

use crate::config::SystemConfig;
use crate::report::{LayerReport, RunReport};
use crate::training::{training_passes, PassKind};
use neurocube_dram::MemorySystem;
use neurocube_nn::{NetworkSpec, Tensor};
use neurocube_noc::{Network, NodeId, Packet};
use neurocube_pe::ProcessingElement;
use neurocube_png::layout::NetworkLayout;
use neurocube_png::{compile_layer, LayerProgram, Png};
use neurocube_png::{program, PngHookup};
use std::sync::Arc;

/// A network loaded into the cube: its placement, parameters and compiled
/// per-layer programs.
#[derive(Clone, Debug)]
pub struct LoadedNetwork {
    spec: NetworkSpec,
    params: Vec<Vec<neurocube_fixed::Q88>>,
    layout: NetworkLayout,
    programs: Vec<Arc<LayerProgram>>,
}

impl LoadedNetwork {
    /// The network description.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The placement of the network in the cube.
    pub fn layout(&self) -> &NetworkLayout {
        &self.layout
    }

    /// The compiled per-layer programs.
    pub fn programs(&self) -> &[Arc<LayerProgram>] {
        &self.programs
    }
}

/// The full Neurocube: memory + PNGs + NoC + PEs, plus the host-side
/// controller that programs them layer by layer.
#[derive(Debug)]
pub struct Neurocube {
    cfg: SystemConfig,
    mem: MemorySystem,
    net: Network,
    pes: Vec<ProcessingElement>,
    pngs: Vec<Png>,
    /// Per mesh node: the regions whose PNGs inject there.
    attach_groups: Vec<Vec<u8>>,
    now: u64,
}

impl Neurocube {
    /// Builds an idle Neurocube.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn new(cfg: SystemConfig) -> Neurocube {
        cfg.validate();
        let mem = MemorySystem::new(cfg.memory.clone());
        let net = Network::new(cfg.topology);
        let pes = (0..cfg.nodes() as u8)
            .map(|p| {
                ProcessingElement::with_cache(p, cfg.accumulator, cfg.cache_entries_per_bank)
            })
            .collect();
        let word_bytes = u64::from(cfg.memory.channel.word_bits / 8);
        let regions_per_channel = (cfg.memory.regions / cfg.memory.channels) as usize;
        let pngs = (0..cfg.nodes() as u8)
            .map(|v| {
                Png::new(
                    v,
                    PngHookup {
                        attach: cfg.attach[usize::from(v)],
                        word_bytes,
                        // Half the queue per sharing PNG stays available so
                        // write-backs can never be starved by reads.
                        max_outstanding_reads: (cfg.memory.channel.queue_capacity
                            / regions_per_channel
                            / 2)
                        .max(2),
                        run_ahead_ops: cfg.run_ahead_ops,
                    },
                )
            })
            .collect();
        let attach_groups = (0..cfg.nodes() as u8)
            .map(|node| {
                (0..cfg.nodes() as u8)
                    .filter(|&v| cfg.attach[usize::from(v)] == node)
                    .collect()
            })
            .collect();
        Neurocube {
            cfg,
            mem,
            net,
            pes,
            pngs,
            attach_groups,
            now: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory subsystem (statistics, storage inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// The NoC (statistics).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current reference cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Multi-line diagnostic snapshot of every PE's and PNG's counters —
    /// for performance debugging and the ablation reports.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, pe) in self.pes.iter().enumerate() {
            let s = pe.stats();
            let _ = writeln!(
                out,
                "PE{i:<2} macs {:>9} fired {:>8} starved {:>9} cached {:>8} cache_hw {:>3}",
                s.mac_ops,
                s.ops_fired,
                s.starved_cycles,
                s.cached_packets,
                pe.cache_high_water()
            );
        }
        for (i, png) in self.pngs.iter().enumerate() {
            let s = png.stats();
            let _ = writeln!(
                out,
                "PNG{i:<2} ops {:>9} reads {:>8} inj_stall {:>8} wb {:>7} copies {:>6} writes {:>6} gate {:>8} q {:>6} outq {:>8}",
                s.operands_sent,
                s.reads_issued,
                s.inject_stalls,
                s.writebacks_received,
                s.copies_forwarded,
                s.writes_issued,
                s.gate_stalls,
                s.queue_stalls,
                s.outq_stalls
            );
        }
        out
    }

    /// Loads a network: builds the layout, writes streamed weights into the
    /// DRAM image and compiles one program per layer — the host's untimed
    /// programming phase (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if the network does not fit the cube or `params` does not
    /// match the spec.
    pub fn load(
        &mut self,
        spec: NetworkSpec,
        params: Vec<Vec<neurocube_fixed::Q88>>,
    ) -> LoadedNetwork {
        let counts = spec.weights_per_layer();
        assert_eq!(params.len(), counts.len(), "one weight array per layer");
        for (i, (p, &n)) in params.iter().zip(&counts).enumerate() {
            assert_eq!(p.len(), n, "layer {i} expects {n} weights");
        }
        let (gw, gh) = self.cfg.grid();
        let layout = NetworkLayout::build(&spec, gw, gh, self.cfg.duplicate, self.cfg.n_mac as usize, self.mem.map());
        program::load_weights(&spec, &params, &layout, self.mem.storage_mut());
        let programs = (0..spec.depth())
            .map(|i| compile_layer(&spec, &layout, i, self.cfg.mapping()))
            .collect();
        LoadedNetwork {
            spec,
            params,
            layout,
            programs,
        }
    }

    /// Loads an input image into volume 0 (all vaults holding copies),
    /// untimed like the host's data-loading phase.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not match the network's input shape.
    pub fn set_input(&mut self, loaded: &LoadedNetwork, input: &Tensor) {
        assert_eq!(
            input.len(),
            loaded.spec.input_shape().len(),
            "input shape mismatch"
        );
        program::load_volume(
            &loaded.layout.volumes[0],
            input.as_slice(),
            self.cfg.nodes(),
            self.mem.storage_mut(),
        );
    }

    /// Reads volume `i` (0 = input, `i` = output of layer `i-1`) back out
    /// of the DRAM image in canonical order.
    pub fn read_volume(&self, loaded: &LoadedNetwork, i: usize) -> Tensor {
        let vol = &loaded.layout.volumes[i];
        let values = program::read_volume(vol, self.mem.storage());
        Tensor::from_vec(vol.shape.channels, vol.shape.height, vol.shape.width, values)
    }

    /// Executes one layer to completion and reports its statistics.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (no forward progress for 2M cycles) —
    /// which would indicate a protocol bug, never a workload property.
    pub fn run_layer(&mut self, loaded: &LoadedNetwork, index: usize) -> LayerReport {
        self.run_pass(loaded, index, PassKind::Forward)
    }

    /// Executes one (possibly backward) pass of a layer. Backward passes
    /// re-run the layer's dataflow — identical loop structure and operand
    /// volume, per the training model in `DESIGN.md`.
    pub fn run_pass(
        &mut self,
        loaded: &LoadedNetwork,
        index: usize,
        pass: PassKind,
    ) -> LayerReport {
        let prog = Arc::clone(&loaded.programs[index]);
        for png in &mut self.pngs {
            png.configure(Arc::clone(&prog));
        }
        for p in 0..self.cfg.nodes() as u8 {
            if let Some(pe_cfg) = prog.pe_config(p) {
                let image = prog.pe_weight_image(&loaded.params[index]);
                self.pes[usize::from(p)].configure(pe_cfg, image);
            }
        }

        // Snapshot statistics.
        let start_cycle = self.now;

        // Host programming phase: charge the configuration-register write
        // time when a programming model is configured (Fig. 8(c); the
        // paper's evaluation leaves this phase untimed), counted against
        // this layer's cycles.
        if let Some(model) = self.cfg.programming {
            self.now += model.layer_cycles(self.cfg.nodes() as u32);
        }
        let noc0 = *self.net.stats();
        let bits0 = self.mem.total_bits_transferred();
        let energy0 = self.mem.total_energy_joules();
        let rows0 = self.mem.total_row_misses();
        let macs0: u64 = self.pes.iter().map(|p| p.stats().mac_ops).sum();

        // The data-driven execution phase.
        let nodes = self.cfg.nodes() as u8;
        let mut idle_cycles = 0u64;
        let mut last_progress = macs0;
        loop {
            let now = self.now;

            // Credit return: PNGs observe PE progress for run-ahead flow
            // control, then issue writes + prefetch reads.
            let progress: Vec<u64> = self.pes.iter().map(ProcessingElement::progress).collect();
            for png in &mut self.pngs {
                png.set_pe_progress(&progress);
                png.tick(now, &mut self.mem);
            }

            // Physical channels; dispatch completions to the issuing PNG.
            for ch in 0..self.mem.channels() {
                if let Some(c) = self.mem.tick_channel(ch, now) {
                    let v = Png::vault_of_tag(c.tag);
                    self.pngs[usize::from(v)].on_completion(c.tag, c.data);
                }
            }

            // NoC mem-port ejection: one packet per node per cycle, routed
            // to the owning PNG.
            for node in 0..nodes {
                let handler = match self.net.peek_for_mem_src(node, now) {
                    Some(src) => {
                        if self.cfg.identity_attach() {
                            node
                        } else {
                            src
                        }
                    }
                    None => continue,
                };
                let src = self
                    .net
                    .peek_for_mem(node, now)
                    .map(|p| p.src)
                    .expect("peeked above");
                if self.pngs[usize::from(handler)].can_take_result(src) {
                    let pkt = self
                        .net
                        .pop_for_mem(node, now)
                        .expect("peeked packet vanished");
                    self.pngs[usize::from(handler)].on_result(pkt, now);
                }
            }

            // PNG packet injection: one per node per cycle; round-robin
            // among PNGs sharing an attach node.
            for node in 0..nodes {
                let sharing = &self.attach_groups[usize::from(node)];
                if sharing.is_empty() {
                    continue;
                }
                let offset = (now as usize) % sharing.len();
                for i in 0..sharing.len() {
                    let v = sharing[(offset + i) % sharing.len()];
                    if let Some(&pkt) = self.pngs[usize::from(v)].peek_outgoing() {
                        if self.net.try_inject_from_mem(node, pkt, now) {
                            self.pngs[usize::from(v)].pop_outgoing();
                        } else {
                            self.pngs[usize::from(v)].note_inject_stall();
                        }
                        break;
                    }
                }
            }

            self.net.tick(now);

            // PEs: operand delivery, firing, result injection.
            for p in 0..nodes {
                let pe = &mut self.pes[usize::from(p)];
                if !pe.layer_done() {
                    if let Some(&pkt) = self.net.peek_for_pe(p, now) {
                        if pe.try_accept(pkt) {
                            let _ = self.net.pop_for_pe(p, now);
                        }
                    }
                    pe.tick(now);
                }
                if let Some(&r) = pe.peek_result() {
                    // Physical routing: results travel to the mesh node of
                    // the region's controller.
                    let mut phys = r;
                    phys.dst = self.cfg.attach[usize::from(r.dst)];
                    if self.net.try_inject_from_pe(p, phys, now) {
                        pe.pop_result();
                    }
                }
            }

            self.now += 1;

            // Completion / watchdog check.
            if self.now.is_multiple_of(64) {
                let done = self.pes.iter().all(ProcessingElement::layer_done)
                    && self.pngs.iter().all(Png::layer_done)
                    && self.net.is_idle();
                if done {
                    break;
                }
                let macs_now: u64 = self.pes.iter().map(|p| p.stats().mac_ops).sum();
                if macs_now == last_progress {
                    idle_cycles += 64;
                    assert!(
                        idle_cycles < 2_000_000,
                        "deadlock in layer {index}: cycle {}, pngs done {:?}, pes done {:?}, noc {:?}, png dumps {:?}, pe positions {:?}, pe progress {:?}, mem pending {:?}, noc occupancy {}",
                        self.now,
                        self.pngs.iter().map(Png::layer_done).collect::<Vec<_>>(),
                        self.pes
                            .iter()
                            .map(ProcessingElement::layer_done)
                            .collect::<Vec<_>>(),
                        self.net.stats(),
                        self.pngs.iter().map(Png::debug_state).collect::<Vec<_>>(),
                        self.pes
                            .iter()
                            .map(ProcessingElement::debug_position)
                            .collect::<Vec<_>>(),
                        self.pes
                            .iter()
                            .map(ProcessingElement::progress)
                            .collect::<Vec<_>>(),
                        (0..self.mem.regions()).map(|r| self.mem.pending(r)).collect::<Vec<_>>(),
                        self.net.occupancy()
                    );
                } else {
                    idle_cycles = 0;
                    last_progress = macs_now;
                }
            }
        }

        let noc1 = *self.net.stats();
        let macs1: u64 = self.pes.iter().map(|p| p.stats().mac_ops).sum();
        let layer = &loaded.spec.layers()[index];
        LayerReport {
            layer_index: index,
            kind: layer.kind_name(),
            pass: pass.label(),
            cycles: self.now - start_cycle,
            macs: macs1 - macs0,
            packets: noc1.delivered - noc0.delivered,
            lateral_packets: noc1.lateral - noc0.lateral,
            noc_mean_latency: if noc1.delivered > noc0.delivered {
                (noc1.total_latency - noc0.total_latency) as f64
                    / (noc1.delivered - noc0.delivered) as f64
            } else {
                0.0
            },
            dram_bits: self.mem.total_bits_transferred() - bits0,
            dram_energy_j: self.mem.total_energy_joules() - energy0,
            row_misses: self.mem.total_row_misses() - rows0,
        }
    }

    /// Runs a full inference: loads `input`, executes every layer and
    /// returns the network output (read back from DRAM) plus the run
    /// report.
    pub fn run_inference(
        &mut self,
        loaded: &LoadedNetwork,
        input: &Tensor,
    ) -> (Tensor, RunReport) {
        self.set_input(loaded, input);
        let mut report = RunReport {
            layers: Vec::with_capacity(loaded.spec.depth()),
            memory_bytes: loaded.layout.total_bytes(),
            memory_minimal_bytes: loaded.layout.minimal_bytes(),
        };
        for i in 0..loaded.spec.depth() {
            report.layers.push(self.run_layer(loaded, i));
        }
        let output = self.read_volume(loaded, loaded.spec.depth());
        (output, report)
    }

    /// Runs one training step's worth of passes (forward + backward +
    /// weight update, §VI-2). Timing-accurate; gradient values are modeled
    /// by re-running each layer's dataflow (see `DESIGN.md` — functional
    /// training lives in `neurocube-nn`).
    pub fn run_training_step(&mut self, loaded: &LoadedNetwork, input: &Tensor) -> RunReport {
        self.set_input(loaded, input);
        let mut report = RunReport {
            layers: Vec::new(),
            memory_bytes: loaded.layout.total_bytes(),
            memory_minimal_bytes: loaded.layout.minimal_bytes(),
        };
        // Forward sweep (activations must be stored for backprop).
        for i in 0..loaded.spec.depth() {
            report.layers.push(self.run_pass(loaded, i, PassKind::Forward));
        }
        // Backward sweep.
        for i in (0..loaded.spec.depth()).rev() {
            for pass in training_passes(&loaded.spec, i) {
                if pass != PassKind::Forward {
                    report.layers.push(self.run_pass(loaded, i, pass));
                }
            }
        }
        report
    }
}

/// Extension used by the run loop: the source of the packet at a node's
/// mem port, for PNG demultiplexing on shared controllers.
trait MemPeek {
    fn peek_for_mem_src(&self, node: NodeId, now: u64) -> Option<NodeId>;
}

impl MemPeek for Network {
    fn peek_for_mem_src(&self, node: NodeId, now: u64) -> Option<NodeId> {
        self.peek_for_mem(node, now).map(|p: &Packet| p.src)
    }
}
