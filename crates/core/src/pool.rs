//! A pool of Neurocubes with model-affinity tracking.
//!
//! The serving layer schedules batches onto many cubes; what makes
//! placement interesting is that a cube *keeps its last-programmed PNG
//! configuration* — dispatching a batch of the model a cube already
//! holds skips the host's reprogramming phase entirely, while switching
//! models pays the full per-layer configuration-register write time
//! (Fig. 8(c), [`crate::ProgrammingModel`]). [`PoolCube`] models exactly
//! that: it caches the [`LoadedNetwork`] under an opaque model tag and
//! reports whether each `ensure_loaded` was an affinity hit or a
//! reprogram.
//!
//! Cubes in a pool are fully independent deterministic simulators, so a
//! pool can be driven serially or with one cube per
//! [`neurocube_sim::BatchRunner`] job and produce bitwise-identical
//! results — the property the serving layer's determinism contract
//! builds on.

use crate::{LoadedGraph, LoadedNetwork, Neurocube, RunReport, SystemConfig};
use neurocube_fixed::Q88;
use neurocube_nn::{GraphSpec, NetworkSpec, Tensor};
use neurocube_sim::StatsRegistry;

/// One cube of a serving pool, remembering which model it last
/// programmed — either a linear network or a compiled graph (the two
/// share the cube's DRAM image, so programming one evicts the other).
pub struct PoolCube {
    cube: Neurocube,
    loaded: Option<(u64, LoadedNetwork)>,
    graph_loaded: Option<(u64, LoadedGraph)>,
}

impl PoolCube {
    /// A fresh cube with nothing programmed.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> PoolCube {
        PoolCube {
            cube: Neurocube::new(cfg),
            loaded: None,
            graph_loaded: None,
        }
    }

    /// The tag of the model currently programmed (linear or graph),
    /// `None` when fresh.
    #[must_use]
    pub fn loaded_tag(&self) -> Option<u64> {
        self.loaded
            .as_ref()
            .map(|(tag, _)| *tag)
            .or_else(|| self.graph_loaded.as_ref().map(|(tag, _)| *tag))
    }

    /// Ensures the model `tag` is programmed, reloading (layout, weights
    /// and layer programs) only when the cube holds a different model.
    /// Returns `true` on an affinity hit — the caller charges the
    /// reprogramming time on `false`.
    ///
    /// # Panics
    ///
    /// Panics if the network does not fit the cube or `params` does not
    /// match the spec (see [`Neurocube::load`]).
    pub fn ensure_loaded(&mut self, tag: u64, spec: &NetworkSpec, params: &[Vec<Q88>]) -> bool {
        if self.loaded.as_ref().is_some_and(|(t, _)| *t == tag) {
            return true;
        }
        let loaded = self.cube.load(spec.clone(), params.to_vec());
        self.loaded = Some((tag, loaded));
        // The weight image just written overlaps whatever graph placement
        // the cube held; its cached compilation is now stale.
        self.graph_loaded = None;
        false
    }

    /// Ensures the compiled graph `tag` is programmed, recompiling and
    /// rewriting weights only when the cube holds a different model.
    /// Returns `true` on an affinity hit, like [`PoolCube::ensure_loaded`].
    ///
    /// # Panics
    ///
    /// Panics if the graph does not fit the cube or `params` does not
    /// match it (see [`Neurocube::load_graph`]).
    pub fn ensure_graph_loaded(
        &mut self,
        tag: u64,
        graph: &GraphSpec,
        params: &[Vec<Q88>],
    ) -> bool {
        if self.graph_loaded.as_ref().is_some_and(|(t, _)| *t == tag) {
            return true;
        }
        let loaded = self
            .cube
            .load_graph(graph, params.to_vec())
            .expect("graph fits the cube");
        self.graph_loaded = Some((tag, loaded));
        // Same DRAM image: the linear model's weights were overwritten.
        self.loaded = None;
        false
    }

    /// Runs one inference on the currently programmed linear model.
    ///
    /// # Panics
    ///
    /// Panics if no linear model has been programmed yet.
    pub fn run(&mut self, input: &Tensor) -> (Tensor, RunReport) {
        let (_, loaded) = self.loaded.as_ref().expect("a model is programmed");
        self.cube.run_inference(loaded, input)
    }

    /// Runs one pipelined inference on the currently programmed graph.
    ///
    /// # Panics
    ///
    /// Panics if no graph has been programmed yet.
    pub fn run_graph(&mut self, input: &Tensor) -> (Tensor, RunReport) {
        let (_, loaded) = self.graph_loaded.as_ref().expect("a graph is programmed");
        self.cube.run_graph_inference(loaded, input)
    }

    /// Runs one inference on whatever model the cube currently holds —
    /// the linear network or the compiled graph, whichever is programmed.
    /// The audit-replay hook of the two-speed serving path: callers that
    /// programmed the cube through `ensure_loaded`/`ensure_graph_loaded`
    /// need not re-dispatch on the payload kind.
    ///
    /// # Panics
    ///
    /// Panics if the cube is fresh (nothing programmed).
    pub fn run_service(&mut self, input: &Tensor) -> (Tensor, RunReport) {
        if self.loaded.is_some() {
            self.run(input)
        } else if self.graph_loaded.is_some() {
            self.run_graph(input)
        } else {
            panic!("a model is programmed before service")
        }
    }

    /// Forces fast-forwarding on/off for this cube (see
    /// [`Neurocube::set_cycle_skip`]).
    pub fn set_cycle_skip(&mut self, enabled: Option<bool>) {
        self.cube.set_cycle_skip(enabled);
    }

    /// Snapshot of the underlying cube's statistics registry.
    #[must_use]
    pub fn stats_registry(&self) -> StatsRegistry {
        self.cube.stats_registry()
    }

    /// Read access to the underlying cube.
    #[must_use]
    pub fn cube(&self) -> &Neurocube {
        &self.cube
    }
}

/// A fixed-size pool of identical [`PoolCube`]s.
pub struct CubePool {
    cubes: Vec<PoolCube>,
}

impl CubePool {
    /// Builds `n` fresh cubes sharing one configuration.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero — an empty pool can never serve.
    #[must_use]
    pub fn new(cfg: &SystemConfig, n: usize) -> CubePool {
        assert!(n > 0, "a serving pool needs at least one cube");
        CubePool {
            cubes: (0..n).map(|_| PoolCube::new(cfg.clone())).collect(),
        }
    }

    /// Number of cubes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Always false — the constructor rejects empty pools.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// One cube by index.
    #[must_use]
    pub fn get(&self, i: usize) -> &PoolCube {
        &self.cubes[i]
    }

    /// Mutable access to one cube by index.
    pub fn get_mut(&mut self, i: usize) -> &mut PoolCube {
        &mut self.cubes[i]
    }

    /// The model tag each cube currently holds, in cube order.
    #[must_use]
    pub fn loaded_tags(&self) -> Vec<Option<u64>> {
        self.cubes.iter().map(PoolCube::loaded_tag).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_nn::workloads;

    #[test]
    fn affinity_hit_skips_reload_and_miss_reprograms() {
        let a = workloads::tiny_convnet();
        let pa = a.init_params(1, 0.25);
        let b = workloads::mnist_mlp(8);
        let pb = b.init_params(2, 0.25);
        let mut cube = PoolCube::new(SystemConfig::paper(true));
        assert_eq!(cube.loaded_tag(), None);
        assert!(!cube.ensure_loaded(10, &a, &pa), "first load is a miss");
        assert!(cube.ensure_loaded(10, &a, &pa), "same tag is a hit");
        assert!(
            !cube.ensure_loaded(20, &b, &pb),
            "switching models is a miss"
        );
        assert_eq!(cube.loaded_tag(), Some(20));
        assert!(!cube.ensure_loaded(10, &a, &pa), "switching back reloads");
    }

    #[test]
    fn reloaded_model_matches_a_fresh_cube_bitwise() {
        let a = workloads::tiny_convnet();
        let pa = a.init_params(1, 0.25);
        let b = workloads::mnist_mlp(8);
        let pb = b.init_params(2, 0.25);
        let input = Tensor::zeros(1, 12, 12);

        // Fresh cube running model A once.
        let mut fresh = PoolCube::new(SystemConfig::paper(true));
        fresh.ensure_loaded(10, &a, &pa);
        let (fresh_out, fresh_report) = fresh.run(&input);

        // Pool cube that served model B in between: reprogramming back to
        // A reproduces the output bit for bit and the same work counts.
        // Timing fields (cycles, row misses) legitimately differ — DRAM
        // row-buffer state persists across runs, so a warm cube is not a
        // cold cube; value-accuracy is what reloading must preserve.
        let mut reused = PoolCube::new(SystemConfig::paper(true));
        reused.ensure_loaded(10, &a, &pa);
        let _ = reused.run(&input);
        reused.ensure_loaded(20, &b, &pb);
        let mnist_in = Tensor::zeros(1, 28, 28);
        let _ = reused.run(&mnist_in);
        reused.ensure_loaded(10, &a, &pa);
        let (out, report) = reused.run(&input);
        assert_eq!(out, fresh_out);
        assert_eq!(report.layers.len(), fresh_report.layers.len());
        for (l, f) in report.layers.iter().zip(&fresh_report.layers) {
            assert_eq!(l.macs, f.macs);
            assert_eq!(l.packets, f.packets);
        }
    }

    #[test]
    fn run_service_dispatches_on_the_programmed_kind() {
        let lin = workloads::tiny_convnet();
        let lp = lin.init_params(1, 0.25);
        let graph = workloads::residual_toy();
        let gp = graph.init_params(5, 0.25);
        let input = Tensor::zeros(1, 12, 12);
        let mut cube = PoolCube::new(SystemConfig::paper(true));

        cube.ensure_loaded(10, &lin, &lp);
        let (via_service, _) = cube.run_service(&input);
        let mut direct = PoolCube::new(SystemConfig::paper(true));
        direct.ensure_loaded(10, &lin, &lp);
        assert_eq!(via_service, direct.run(&input).0);

        cube.ensure_graph_loaded(30, &graph, &gp);
        let (via_service, _) = cube.run_service(&input);
        let mut direct = PoolCube::new(SystemConfig::paper(true));
        direct.ensure_graph_loaded(30, &graph, &gp);
        assert_eq!(via_service, direct.run_graph(&input).0);
    }

    #[test]
    #[should_panic(expected = "a model is programmed before service")]
    fn run_service_rejects_fresh_cubes() {
        let mut cube = PoolCube::new(SystemConfig::paper(true));
        let _ = cube.run_service(&Tensor::zeros(1, 12, 12));
    }

    #[test]
    #[should_panic(expected = "at least one cube")]
    fn empty_pool_is_rejected() {
        let _ = CubePool::new(&SystemConfig::paper(true), 0);
    }

    /// Graph and linear models share the cube's DRAM image, so loading
    /// one must invalidate the other's affinity — and reloading a graph
    /// after a linear model served in between reproduces a fresh cube's
    /// output bit for bit.
    #[test]
    fn graph_affinity_cross_invalidates_with_linear_models() {
        let graph = workloads::residual_toy();
        let gp = graph.init_params(5, 0.25);
        let lin = workloads::tiny_convnet();
        let lp = lin.init_params(1, 0.25);
        let input = Tensor::zeros(1, 12, 12);

        let mut fresh = PoolCube::new(SystemConfig::paper(true));
        assert!(!fresh.ensure_graph_loaded(30, &graph, &gp));
        let (fresh_out, _) = fresh.run_graph(&input);

        let mut reused = PoolCube::new(SystemConfig::paper(true));
        assert!(!reused.ensure_graph_loaded(30, &graph, &gp));
        assert!(reused.ensure_graph_loaded(30, &graph, &gp), "same tag hits");
        assert_eq!(reused.loaded_tag(), Some(30));
        assert!(
            !reused.ensure_loaded(10, &lin, &lp),
            "linear load is a miss"
        );
        assert_eq!(reused.loaded_tag(), Some(10));
        let _ = reused.run(&input);
        assert!(
            !reused.ensure_graph_loaded(30, &graph, &gp),
            "the linear model overwrote the graph's weights: a reload"
        );
        let (out, _) = reused.run_graph(&input);
        assert_eq!(out, fresh_out, "reloaded graph diverges from fresh");
    }
}
