//! Whole-system configuration.

use neurocube_dram::MemoryConfig;
use neurocube_fixed::AccumulatorWidth;
use neurocube_noc::{NodeId, Topology};
use neurocube_png::Mapping;

/// Configuration of a Neurocube instance: memory technology, NoC topology,
/// data-duplication policy and MAC accumulator width.
///
/// The paper's design point is [`SystemConfig::paper`]; the evaluation
/// variants ([`ddr3`](SystemConfig::ddr3),
/// [`fully_connected_noc`](SystemConfig::fully_connected_noc),
/// [`hmc_with_channels`](SystemConfig::hmc_with_channels)) reproduce the
/// Fig. 15 comparisons.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Memory subsystem.
    pub memory: MemoryConfig,
    /// On-chip network wiring.
    pub topology: Topology,
    /// Input duplication (halos / replicated FC vectors, Fig. 10).
    pub duplicate: bool,
    /// MAC accumulator width.
    pub accumulator: AccumulatorWidth,
    /// MACs per PE.
    pub n_mac: u32,
    /// Mesh node each memory region's PNG attaches to (identity for the
    /// HMC; the shared controller node for low-channel-count memories).
    pub attach: Vec<NodeId>,
    /// PE cache sub-bank capacity (the paper's design point is 64).
    pub cache_entries_per_bank: usize,
    /// PNG run-ahead credit window in operations (default 16; see the
    /// `neurocube-png` crate docs for the deadlock/throughput constraints).
    pub run_ahead_ops: u64,
    /// Host programming-phase timing (Fig. 8(c)): when set, each layer is
    /// charged the configuration-register write time before execution.
    /// `None` reproduces the paper's evaluation, which does not count the
    /// per-layer programming time.
    pub programming: Option<ProgrammingModel>,
}

/// Timing of the host's per-layer PNG/PE configuration phase (Fig. 8(c)):
/// the host asserts configuration-enable, writes every PNG's registers
/// through the HMC external links, then deasserts to start the FSMs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgrammingModel {
    /// Configuration registers written per PNG per layer (the three loop
    /// counters, kernel geometry, base addresses, LUT select, ...).
    pub registers_per_png: u32,
    /// Nanoseconds per register write over the host link (request/response
    /// latency dominated; writes are serialized by the single host).
    pub ns_per_register: f64,
}

impl ProgrammingModel {
    /// A plausible default: 12 registers per PNG at 10 ns per serialized
    /// link write.
    pub fn typical() -> ProgrammingModel {
        ProgrammingModel {
            registers_per_png: 12,
            ns_per_register: 10.0,
        }
    }

    /// Reference cycles to program one layer on `pngs` vault controllers.
    pub fn layer_cycles(&self, pngs: u32) -> u64 {
        let ns = f64::from(self.registers_per_png) * f64::from(pngs) * self.ns_per_register;
        (ns * 1e-9 * neurocube_dram::REF_CLOCK_HZ).ceil() as u64
    }

    /// Reference cycles to reprogram a whole network: the per-layer
    /// programming phases summed over `pngs_per_layer` (one entry per
    /// layer, each the number of vault controllers that layer programs).
    /// This is the host-side charge a serving pool pays on a
    /// model-affinity miss.
    pub fn network_cycles(&self, pngs_per_layer: impl IntoIterator<Item = u32>) -> u64 {
        pngs_per_layer
            .into_iter()
            .map(|p| self.layer_cycles(p))
            .sum()
    }
}

impl SystemConfig {
    /// The paper's design point: 16-vault HMC, 4×4 mesh, 16 MACs/PE.
    pub fn paper(duplicate: bool) -> SystemConfig {
        let memory = MemoryConfig::hmc_int();
        SystemConfig {
            attach: (0..memory.regions as u8).collect(),
            memory,
            topology: Topology::mesh4x4(),
            duplicate,
            accumulator: AccumulatorWidth::Wide32,
            n_mac: 16,
            cache_entries_per_bank: 64,
            run_ahead_ops: 16,
            programming: None,
        }
    }

    /// The paper's design point with a fully connected NoC (Fig. 15(b)).
    pub fn fully_connected_noc(duplicate: bool) -> SystemConfig {
        SystemConfig {
            topology: Topology::FullyConnected { nodes: 16 },
            ..SystemConfig::paper(duplicate)
        }
    }

    /// DDR3 main memory: 2 channels shared by the 16 PEs, controllers at
    /// opposite mesh corners (Fig. 15(a) baseline). Duplication is not
    /// supported on shared-controller memories (see `DESIGN.md`), so this
    /// configuration always runs without it.
    pub fn ddr3() -> SystemConfig {
        let memory = MemoryConfig::ddr3();
        let attach = region_attach(memory.regions, memory.channels);
        SystemConfig {
            memory,
            topology: Topology::mesh4x4(),
            duplicate: false,
            accumulator: AccumulatorWidth::Wide32,
            n_mac: 16,
            attach,
            cache_entries_per_bank: 64,
            run_ahead_ops: 16,
            programming: None,
        }
    }

    /// HMC-style memory with `channels` physical channels (Fig. 15(a)
    /// concurrency sweep). Controllers are spread evenly over the mesh.
    ///
    /// # Panics
    ///
    /// Panics unless `channels` divides 16.
    pub fn hmc_with_channels(channels: u32) -> SystemConfig {
        let memory = MemoryConfig::hmc_with_channels(channels);
        let attach = region_attach(memory.regions, memory.channels);
        SystemConfig {
            duplicate: channels == memory.regions,
            memory,
            topology: Topology::mesh4x4(),
            accumulator: AccumulatorWidth::Wide32,
            n_mac: 16,
            attach,
            cache_entries_per_bank: 64,
            run_ahead_ops: 16,
            programming: None,
        }
    }

    /// Number of PEs / mesh nodes.
    pub fn nodes(&self) -> usize {
        usize::from(self.topology.nodes())
    }

    /// PE grid width (mesh width; 4 for a fully connected 16-node NoC).
    pub fn grid(&self) -> (usize, usize) {
        match self.topology {
            Topology::Mesh { width, height } => (usize::from(width), usize::from(height)),
            Topology::FullyConnected { nodes } => {
                let w = (f64::from(nodes)).sqrt() as usize;
                assert_eq!(w * w, usize::from(nodes), "square grids only");
                (w, w)
            }
        }
    }

    /// The compiler mapping induced by this configuration.
    pub fn mapping(&self) -> Mapping {
        let (gw, gh) = self.grid();
        Mapping {
            grid_w: gw,
            grid_h: gh,
            duplicate: self.duplicate,
            n_mac: self.n_mac,
        }
    }

    /// `true` when every region's PNG sits at its own mesh node.
    pub fn identity_attach(&self) -> bool {
        self.attach
            .iter()
            .enumerate()
            .all(|(i, &n)| i == usize::from(n))
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the region count does not match the node count, or if
    /// duplication is requested on a shared-controller memory (write-back
    /// copies need per-node PNGs to demultiplex).
    pub fn validate(&self) {
        assert_eq!(
            self.memory.regions as usize,
            self.nodes(),
            "one memory region per PE"
        );
        assert_eq!(
            self.attach.len(),
            self.nodes(),
            "one attach entry per region"
        );
        if !self.identity_attach() {
            assert!(
                !self.duplicate,
                "duplication requires per-node vault controllers"
            );
        }
        // Deadlock-freedom coupling: every operand a PNG may have in
        // flight must fit the PE cache — up to ceil(window/16) ops per
        // OP-ID residue class, at most 17 packets each (FC dataflow).
        assert!(
            self.run_ahead_ops.div_ceil(16) * 17 <= self.cache_entries_per_bank as u64,
            "run-ahead window {} overflows {}-entry cache sub-banks",
            self.run_ahead_ops,
            self.cache_entries_per_bank
        );
    }
}

/// Evenly spreads `channels` controllers over `regions` mesh nodes:
/// region `r` attaches at the first node of its channel's block.
fn region_attach(regions: u32, channels: u32) -> Vec<NodeId> {
    let per = regions / channels;
    (0..regions).map(|r| ((r / per) * per) as NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_identity_attached() {
        let cfg = SystemConfig::paper(true);
        cfg.validate();
        assert!(cfg.identity_attach());
        assert_eq!(cfg.nodes(), 16);
        assert_eq!(cfg.grid(), (4, 4));
        assert_eq!(cfg.mapping().vaults(), 16);
    }

    #[test]
    fn ddr3_attaches_eight_regions_per_controller() {
        let cfg = SystemConfig::ddr3();
        cfg.validate();
        assert!(!cfg.identity_attach());
        assert_eq!(cfg.attach[0], 0);
        assert_eq!(cfg.attach[7], 0);
        assert_eq!(cfg.attach[8], 8);
        assert_eq!(cfg.attach[15], 8);
        assert!(!cfg.duplicate);
    }

    #[test]
    fn channel_sweep_attach_points() {
        let cfg = SystemConfig::hmc_with_channels(4);
        cfg.validate();
        assert_eq!(cfg.attach[0], 0);
        assert_eq!(cfg.attach[5], 4);
        assert_eq!(cfg.attach[10], 8);
        assert_eq!(cfg.attach[15], 12);
        // Full 16-channel sweep degenerates to the paper config.
        let full = SystemConfig::hmc_with_channels(16);
        assert!(full.identity_attach());
    }

    #[test]
    fn programming_model_cycles() {
        let m = ProgrammingModel::typical();
        // 12 regs x 16 PNGs x 10 ns = 1.92 µs = 9600 cycles at 5 GHz.
        assert_eq!(m.layer_cycles(16), 9601); // ceil of fp rounding
        assert!(SystemConfig::paper(true).programming.is_none());
    }

    #[test]
    fn fully_connected_grid_is_4x4() {
        let cfg = SystemConfig::fully_connected_noc(true);
        cfg.validate();
        assert_eq!(cfg.grid(), (4, 4));
        assert_eq!(cfg.topology.ports(), 17);
    }
}
