//! The training-pass schedule (§VI-2, Fig. 13).
//!
//! Backpropagation's passes have exactly the forward pass's three-nested-
//! loop MAC structure, so the host programs the same PNG machinery once per
//! pass per layer:
//!
//! * **grad-input** (`∂L/∂X`): a convolution with the rotated kernel (conv)
//!   or the transposed weight matrix (FC) — operand volume identical to the
//!   forward pass. Skipped for the first layer (no upstream consumer).
//! * **grad-weight** (`∂L/∂W`): correlation of stored activations with
//!   output errors — one MAC per (weight, output) pair, again the forward
//!   pass's operand volume. Skipped for pooling (no weights).
//! * **weight-update** (`W ← W − η·∂W`): one MAC per weight. Negligible for
//!   conv kernels (they live in PE weight memory); a full weight-matrix
//!   streaming pass for FC layers, whose `∂W` already equals one
//!   forward-equivalent pass (`n_out × n_in` MACs).
//!
//! The timing simulator models each backward pass by re-running the layer's
//! dataflow (identical addresses, packet counts and MAC counts); gradient
//! *values* are verified functionally in `neurocube-nn`'s trainer, which
//! shares the MAC/LUT semantics. See `DESIGN.md`.

use neurocube_nn::{LayerSpec, NetworkSpec};

/// One pass of a training step over a single layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// The inference dataflow (also the first phase of training).
    Forward,
    /// Back-propagation of errors to the layer's inputs.
    GradInput,
    /// Accumulation of weight gradients.
    GradWeight,
    /// SGD weight update (FC layers only; conv kernels update in place in
    /// the PE weight memories during host reprogramming).
    WeightUpdate,
}

impl PassKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PassKind::Forward => "forward",
            PassKind::GradInput => "grad-input",
            PassKind::GradWeight => "grad-weight",
            PassKind::WeightUpdate => "weight-upd",
        }
    }
}

/// The passes layer `index` contributes to one training step, in backward-
/// sweep order (the forward pass is listed first; the system runs forward
/// passes in a separate forward sweep).
pub fn training_passes(net: &NetworkSpec, index: usize) -> Vec<PassKind> {
    let layer = &net.layers()[index];
    let mut passes = vec![PassKind::Forward];
    if index > 0 {
        passes.push(PassKind::GradInput);
    }
    match layer {
        // Pooling and element-wise sums carry no trainable weights.
        LayerSpec::AvgPool { .. } | LayerSpec::Eltwise { .. } => {}
        LayerSpec::Conv2d { .. } => passes.push(PassKind::GradWeight),
        LayerSpec::FullyConnected { .. } => {
            passes.push(PassKind::GradWeight);
            passes.push(PassKind::WeightUpdate);
        }
    }
    passes
}

/// Total training-step operations implied by the pass schedule (2 ops per
/// MAC), for cross-checking simulated op counts against Fig. 13(a).
pub fn training_ops(net: &NetworkSpec) -> u64 {
    let macs = net.macs_per_layer();
    (0..net.depth())
        .map(|i| macs[i] * 2 * training_passes(net, i).len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;
    use neurocube_nn::Shape;

    fn net() -> NetworkSpec {
        NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(4, Activation::Sigmoid),
            ],
        )
        .unwrap()
    }

    #[test]
    fn first_conv_skips_grad_input() {
        assert_eq!(
            training_passes(&net(), 0),
            vec![PassKind::Forward, PassKind::GradWeight]
        );
    }

    #[test]
    fn pooling_has_no_weight_passes() {
        assert_eq!(
            training_passes(&net(), 1),
            vec![PassKind::Forward, PassKind::GradInput]
        );
    }

    #[test]
    fn fc_has_all_four_passes() {
        assert_eq!(
            training_passes(&net(), 2),
            vec![
                PassKind::Forward,
                PassKind::GradInput,
                PassKind::GradWeight,
                PassKind::WeightUpdate,
            ]
        );
    }

    #[test]
    fn training_ops_roughly_triple_inference() {
        let n = net();
        let inference = n.total_ops();
        let training = training_ops(&n);
        assert!(training > 2 * inference);
        assert!(training < 4 * inference);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            PassKind::Forward,
            PassKind::GradInput,
            PassKind::GradWeight,
            PassKind::WeightUpdate,
        ]
        .into_iter()
        .map(PassKind::label)
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
