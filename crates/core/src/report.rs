//! Run statistics — the raw material of the paper's Figs. 12–15.

use neurocube_dram::REF_CLOCK_HZ;
use std::fmt;

/// Statistics of one layer execution (or one training pass).
#[derive(Clone, Debug, PartialEq)]
pub struct LayerReport {
    /// Layer index in the network.
    pub layer_index: usize,
    /// Layer kind ("conv", "pool", "fc").
    pub kind: &'static str,
    /// Label for training passes ("forward", "grad-input", ...); "forward"
    /// for inference.
    pub pass: &'static str,
    /// Reference cycles the layer took.
    pub cycles: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// NoC packets delivered while the layer ran.
    pub packets: u64,
    /// Delivered packets that crossed at least one mesh link.
    pub lateral_packets: u64,
    /// Mean in-fabric packet latency (cycles).
    pub noc_mean_latency: f64,
    /// Bits moved across DRAM channels.
    pub dram_bits: u64,
    /// DRAM access energy (joules).
    pub dram_energy_j: f64,
    /// DRAM row activations.
    pub row_misses: u64,
}

impl LayerReport {
    /// Arithmetic operations (2 per MAC), the paper's op unit.
    pub fn ops(&self) -> u64 {
        self.macs * 2
    }

    /// Throughput in GOPs/s at the reference clock (5 GHz, the 15 nm
    /// design point; scale by `f / 5 GHz` for other nodes).
    pub fn throughput_gops(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops() as f64 / (self.cycles as f64 / REF_CLOCK_HZ) / 1e9
    }

    /// Fraction of delivered packets that crossed a mesh link — the
    /// paper's "lateral traffic" metric (Figs. 14–15).
    pub fn lateral_fraction(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.lateral_packets as f64 / self.packets as f64
        }
    }

    /// MAC-array utilization against the peak of `pes × macs` MACs/cycle...
    /// expressed for the paper's 256-MAC design (16 PEs × 16 MACs, one MAC
    /// op per PE per cycle at `f_MAC = f_PE/16`).
    pub fn mac_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * 16.0)
    }
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L{} {:<5} {:<11} {:>12} cycles {:>14} ops {:>7.1} GOPs/s {:>5.1}% lateral",
            self.layer_index + 1,
            self.kind,
            self.pass,
            self.cycles,
            self.ops(),
            self.throughput_gops(),
            100.0 * self.lateral_fraction()
        )
    }
}

/// Fault-injection outcome of a run — present only when an injector (or
/// ECC) was attached, so fault-free runs stay bitwise identical to builds
/// that never heard of the fault crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// DRAM read words with at least one transient bit-flip applied.
    pub dram_read_flips: u64,
    /// DRAM read words that hit a stuck-at cell.
    pub dram_stuck_bits: u64,
    /// Background upsets landed on resident pages.
    pub dram_upsets: u64,
    /// Faulty DRAM words corrected by SECDED (single-bit).
    pub ecc_corrected: u64,
    /// Faulty DRAM words detected but uncorrectable (multi-bit).
    pub ecc_detected: u64,
    /// Words that paid the SECDED check-bit/decode cost.
    pub ecc_words: u64,
    /// NoC flits caught by link parity (retransmitted).
    pub noc_corrupt: u64,
    /// NoC flits dropped in flight (retransmitted after timeout).
    pub noc_drops: u64,
    /// NoC flits forwarded out the wrong mesh port.
    pub noc_misroutes: u64,
    /// Link-level retransmissions (corrupt + dropped flits).
    pub noc_retransmits: u64,
    /// PE MAC operations with a flipped operand bit.
    pub pe_mac_faults: u64,
    /// Malformed/unroutable packets consumed as counted drops instead of
    /// panics (NoC + PE + PNG, including unknown completion tags).
    pub dropped_packets: u64,
}

impl FaultSummary {
    /// True when no fault of any kind materialized (ECC may still have
    /// charged its per-word overhead).
    pub fn is_clean(&self) -> bool {
        self.dram_read_flips == 0
            && self.dram_stuck_bits == 0
            && self.dram_upsets == 0
            && self.noc_corrupt == 0
            && self.noc_drops == 0
            && self.noc_misroutes == 0
            && self.pe_mac_faults == 0
            && self.dropped_packets == 0
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: dram {} flips/{} stuck/{} upsets, ecc {}/{} of {} words, \
             noc {} corrupt/{} drops/{} misroutes ({} retx), {} mac faults, {} dropped",
            self.dram_read_flips,
            self.dram_stuck_bits,
            self.dram_upsets,
            self.ecc_corrected,
            self.ecc_detected,
            self.ecc_words,
            self.noc_corrupt,
            self.noc_drops,
            self.noc_misroutes,
            self.noc_retransmits,
            self.pe_mac_faults,
            self.dropped_packets
        )
    }
}

/// Statistics of a whole run (inference or one training step).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Per-layer (or per-pass) breakdown, in execution order.
    pub layers: Vec<LayerReport>,
    /// Bytes stored across the cube for this network.
    pub memory_bytes: u64,
    /// Bytes a duplication-free layout would need.
    pub memory_minimal_bytes: u64,
    /// Fault-injection summary; `None` when no injector was attached.
    pub fault: Option<FaultSummary>,
}

impl RunReport {
    /// Total cycles across all layers/passes.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total arithmetic operations.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(LayerReport::ops).sum()
    }

    /// End-to-end throughput in GOPs/s at the 5 GHz reference clock.
    pub fn throughput_gops(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / (cycles as f64 / REF_CLOCK_HZ) / 1e9
    }

    /// Throughput at an arbitrary logic clock (e.g. 300 MHz for the 28 nm
    /// node — cycle counts are frequency-independent).
    pub fn throughput_gops_at(&self, clock_hz: f64) -> f64 {
        self.throughput_gops() * clock_hz / REF_CLOCK_HZ
    }

    /// Wall-clock seconds per run at a given clock.
    pub fn seconds_at(&self, clock_hz: f64) -> f64 {
        self.total_cycles() as f64 / clock_hz
    }

    /// Runs (frames) per second at a given clock — the paper's
    /// frames/second metric (§VI-3).
    pub fn frames_per_second_at(&self, clock_hz: f64) -> f64 {
        1.0 / self.seconds_at(clock_hz)
    }

    /// Total DRAM energy in joules.
    pub fn dram_energy_j(&self) -> f64 {
        self.layers.iter().map(|l| l.dram_energy_j).sum()
    }

    /// Overall lateral-traffic fraction.
    pub fn lateral_fraction(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.packets).sum();
        let lateral: u64 = self.layers.iter().map(|l| l.lateral_packets).sum();
        if total == 0 {
            0.0
        } else {
            lateral as f64 / total as f64
        }
    }

    /// Duplication memory overhead over the minimal layout (Fig. 12(d)).
    pub fn memory_overhead(&self) -> f64 {
        if self.memory_minimal_bytes == 0 {
            return 0.0;
        }
        (self.memory_bytes as f64 - self.memory_minimal_bytes as f64)
            / self.memory_minimal_bytes as f64
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.layers {
            writeln!(f, "{l}")?;
        }
        writeln!(
            f,
            "total: {} cycles, {} ops, {:.1} GOPs/s @5GHz, {:.1}% memory overhead",
            self.total_cycles(),
            self.total_ops(),
            self.throughput_gops(),
            100.0 * self.memory_overhead()
        )?;
        if let Some(fault) = &self.fault {
            writeln!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, macs: u64) -> LayerReport {
        LayerReport {
            layer_index: 0,
            kind: "conv",
            pass: "forward",
            cycles,
            macs,
            packets: 100,
            lateral_packets: 25,
            noc_mean_latency: 4.0,
            dram_bits: 3200,
            dram_energy_j: 1e-9,
            row_misses: 2,
        }
    }

    #[test]
    fn throughput_math() {
        let l = layer(1000, 8000);
        assert_eq!(l.ops(), 16_000);
        // 16000 ops / (1000 / 5e9 s) = 8e10 ops/s = 80 GOPs/s.
        assert!((l.throughput_gops() - 80.0).abs() < 1e-9);
        assert_eq!(l.lateral_fraction(), 0.25);
        // 8000 MACs over 1000 cycles with 256-MAC peak/16 per cycle...
        assert!((l.mac_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_totals_and_scaling() {
        let r = RunReport {
            layers: vec![layer(1000, 8000), layer(3000, 8000)],
            memory_bytes: 150,
            memory_minimal_bytes: 100,
            fault: None,
        };
        assert_eq!(r.total_cycles(), 4000);
        assert_eq!(r.total_ops(), 32_000);
        assert!((r.throughput_gops() - 40.0).abs() < 1e-9);
        // 300 MHz scaling: 40 * 0.3/5 = 2.4 GOPs/s.
        assert!((r.throughput_gops_at(300e6) - 2.4).abs() < 1e-9);
        assert!((r.memory_overhead() - 0.5).abs() < 1e-12);
        assert!((r.frames_per_second_at(5e9) - 5e9 / 4000.0).abs() < 1e-3);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let l = layer(0, 0);
        assert_eq!(l.throughput_gops(), 0.0);
        assert_eq!(l.mac_utilization(), 0.0);
        let r = RunReport::default();
        assert_eq!(r.throughput_gops(), 0.0);
        assert_eq!(r.lateral_fraction(), 0.0);
        assert_eq!(r.memory_overhead(), 0.0);
    }

    #[test]
    fn display_mentions_layer_and_totals() {
        let r = RunReport {
            layers: vec![layer(1000, 8000)],
            memory_bytes: 100,
            memory_minimal_bytes: 100,
            fault: None,
        };
        let s = r.to_string();
        assert!(s.contains("L1 conv"));
        assert!(s.contains("total:"));
        assert!(!s.contains("faults:"));
        let faulty = RunReport {
            fault: Some(FaultSummary {
                noc_corrupt: 3,
                noc_retransmits: 3,
                ..FaultSummary::default()
            }),
            ..r
        };
        assert!(faulty.to_string().contains("3 retx"));
        assert!(!faulty.fault.unwrap().is_clean());
        assert!(FaultSummary::default().is_clean());
    }
}
