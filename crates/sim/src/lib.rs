//! The reusable simulation kernel under every Neurocube cycle model.
//!
//! Three pieces, each independent of the architecture being simulated:
//!
//! * [`Clocked`] + [`CycleLoop`] — a per-cycle stage pipeline. A system
//!   registers its pipeline stages (each a [`Clocked`] implementation
//!   over a shared bus type) in execution order, and the loop drives them
//!   cycle by cycle, owning the completion check and the deadlock
//!   watchdog that every hand-written run loop used to duplicate.
//! * [`StatsRegistry`] + [`StatSource`] — a registry of named monotonic
//!   counters (plus accumulating float metrics, instantaneous gauges and
//!   exact [`Histogram`] sample distributions) that every component
//!   reports into through one uniform trait, with snapshot/diff
//!   semantics for per-phase reporting and CSV/JSON exporters for the
//!   experiment harnesses.
//! * [`BatchRunner`] — a scoped-thread fleet runner for independent
//!   simulator instances. Each instance stays a deterministic
//!   single-threaded cycle loop, so batch results are bitwise identical
//!   to serial runs; only *across* instances does wall-clock parallelism
//!   apply.
//!
//! The kernel deliberately knows nothing about PEs, PNGs, DRAM or NoCs —
//! those crates depend on this one, never the reverse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod clocked;
pub mod env;
mod stats;

pub use batch::BatchRunner;
pub use clocked::{Clocked, CycleLoop, JumpRecord, Watchdog, EVENT_LOOP_LEASH};
pub use env::{
    env_f64, env_flag, env_str, env_u64, serve_audit_rate, serve_load, serve_max_batch,
    serve_max_delay, serve_pool, serve_scenario, serve_seed, simd_default, sparsity_default,
    stage_par_default,
};
pub use stats::{Histogram, ScopedStats, StatSource, StatsRegistry};
