//! A unified registry of named simulation statistics.
//!
//! Components report through [`StatSource::report`] into a
//! [`StatsRegistry`], which distinguishes three kinds of series:
//!
//! * **counters** — monotonically non-decreasing `u64` event counts
//!   (MACs executed, packets delivered, stall cycles). Diffing two
//!   snapshots subtracts them and asserts monotonicity.
//! * **metrics** — accumulating `f64` quantities (energy in joules).
//!   Diffing subtracts.
//! * **gauges** — instantaneous `f64` levels (cache high-water, link
//!   occupancy). Diffing keeps the newer value.
//!
//! Keys are dotted paths (`pe3.mac_ops`, `noc.delivered`); the
//! [`ScopedStats`] adapter prefixes everything a component reports so the
//! component itself only names its local series.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A component that can publish its statistics into a registry.
pub trait StatSource {
    /// Writes this component's current totals into `stats`.
    ///
    /// Implementations should report *running totals*, not deltas; the
    /// registry's snapshot/diff machinery derives per-phase numbers.
    fn report(&self, stats: &mut ScopedStats<'_>);
}

/// Named statistics, collected uniformly from every component.
///
/// `BTreeMap`s keep iteration (and therefore export) order deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsRegistry {
    counters: BTreeMap<String, u64>,
    metrics: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects a fresh snapshot from a set of sources.
    ///
    /// Each `(prefix, source)` pair reports under `prefix.`; an empty
    /// prefix reports at top level.
    pub fn collect<'a>(sources: impl IntoIterator<Item = (&'a str, &'a dyn StatSource)>) -> Self {
        let mut reg = StatsRegistry::new();
        for (prefix, source) in sources {
            source.report(&mut reg.scoped(prefix));
        }
        reg
    }

    /// A recording view that prefixes every key with `prefix.`.
    pub fn scoped<'a>(&'a mut self, prefix: &'a str) -> ScopedStats<'a> {
        ScopedStats {
            registry: self,
            prefix,
        }
    }

    /// Value of one counter (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Value of one metric (0.0 when absent).
    pub fn metric(&self, key: &str) -> f64 {
        self.metrics.get(key).copied().unwrap_or(0.0)
    }

    /// Value of one gauge (0.0 when absent).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Sum of every counter whose key ends with `suffix`
    /// (e.g. `.mac_ops` totals the series across all PEs).
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates metrics in key order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.metrics.is_empty() && self.gauges.is_empty()
    }

    /// Per-phase difference `self - earlier`.
    ///
    /// Counters and metrics subtract; gauges keep the value in `self`.
    /// A key absent from `earlier` is treated as 0 there.
    ///
    /// # Panics
    ///
    /// Panics if any counter decreased between the snapshots — counters
    /// are monotonic by contract, so a decrease is a component bug.
    pub fn diff(&self, earlier: &StatsRegistry) -> StatsRegistry {
        let mut out = StatsRegistry::new();
        for (key, &now) in &self.counters {
            let before = earlier.counter(key);
            assert!(
                now >= before,
                "counter {key} decreased: {before} -> {now} (counters are monotonic)"
            );
            out.counters.insert(key.clone(), now - before);
        }
        for (key, &now) in &self.metrics {
            out.metrics.insert(key.clone(), now - earlier.metric(key));
        }
        out.gauges = self.gauges.clone();
        out
    }

    /// The first series (in deterministic key order: counters, then
    /// metrics, then gauges) on which `self` and `other` disagree,
    /// rendered as a human-readable `key: left vs right` line — the
    /// message differential tests print instead of two full registry
    /// dumps. `None` when the registries are equal.
    pub fn first_difference(&self, other: &StatsRegistry) -> Option<String> {
        fn scan<V: PartialEq + std::fmt::Display>(
            kind: &str,
            a: &BTreeMap<String, V>,
            b: &BTreeMap<String, V>,
        ) -> Option<String> {
            for key in a.keys().chain(b.keys().filter(|k| !a.contains_key(*k))) {
                match (a.get(key), b.get(key)) {
                    (Some(x), Some(y)) if x == y => {}
                    (Some(x), Some(y)) => return Some(format!("{kind} {key}: {x} vs {y}")),
                    (Some(x), None) => return Some(format!("{kind} {key}: {x} vs <absent>")),
                    (None, Some(y)) => return Some(format!("{kind} {key}: <absent> vs {y}")),
                    (None, None) => unreachable!(),
                }
            }
            None
        }
        scan("counter", &self.counters, &other.counters)
            .or_else(|| scan("metric", &self.metrics, &other.metrics))
            .or_else(|| scan("gauge", &self.gauges, &other.gauges))
    }

    /// Renders every series as `key = value` lines, one per series —
    /// the uniform replacement for hand-formatted per-crate debug dumps.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, v) in &self.metrics {
            let _ = writeln!(out, "{k} = {v:.6e}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} = {v}");
        }
        out
    }

    /// Exports as two-line CSV: a header row of keys and a row of values,
    /// counters first, then metrics, then gauges, each in key order.
    pub fn to_csv(&self) -> String {
        let mut header = String::new();
        let mut values = String::new();
        let mut sep = "";
        for (k, v) in &self.counters {
            let _ = write!(header, "{sep}{k}");
            let _ = write!(values, "{sep}{v}");
            sep = ",";
        }
        for (k, v) in &self.metrics {
            let _ = write!(header, "{sep}{k}");
            let _ = write!(values, "{sep}{v:.9e}");
            sep = ",";
        }
        for (k, v) in &self.gauges {
            let _ = write!(header, "{sep}{k}");
            let _ = write!(values, "{sep}{v}");
            sep = ",";
        }
        format!("{header}\n{values}\n")
    }

    /// Exports as a flat JSON object (keys sorted, counters as integers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut sep = "";
        for (k, v) in &self.counters {
            let _ = write!(out, "{sep}\"{k}\":{v}");
            sep = ",";
        }
        for (k, v) in &self.metrics {
            let _ = write!(out, "{sep}\"{k}\":{v:e}");
            sep = ",";
        }
        for (k, v) in &self.gauges {
            let _ = write!(out, "{sep}\"{k}\":{v}");
            sep = ",";
        }
        out.push('}');
        out
    }
}

/// A view of a [`StatsRegistry`] that prefixes recorded keys.
///
/// Handed to [`StatSource::report`] so components name series locally
/// (`mac_ops`) while the registry stores them globally (`pe3.mac_ops`).
pub struct ScopedStats<'a> {
    registry: &'a mut StatsRegistry,
    prefix: &'a str,
}

impl ScopedStats<'_> {
    fn key(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Records a monotonic event count.
    pub fn counter(&mut self, name: &str, value: u64) {
        let key = self.key(name);
        self.registry.counters.insert(key, value);
    }

    /// Records an accumulating float quantity (e.g. joules).
    pub fn metric(&mut self, name: &str, value: f64) {
        let key = self.key(name);
        self.registry.metrics.insert(key, value);
    }

    /// Records an instantaneous level (e.g. an occupancy or high-water).
    pub fn gauge(&mut self, name: &str, value: f64) {
        let key = self.key(name);
        self.registry.gauges.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        ops: u64,
        energy: f64,
    }

    impl StatSource for Fake {
        fn report(&self, stats: &mut ScopedStats<'_>) {
            stats.counter("ops", self.ops);
            stats.metric("energy_j", self.energy);
            stats.gauge("level", self.ops as f64 / 2.0);
        }
    }

    #[test]
    fn collect_prefixes_and_reads_back() {
        let a = Fake {
            ops: 10,
            energy: 1.5,
        };
        let b = Fake {
            ops: 32,
            energy: 0.5,
        };
        let reg =
            StatsRegistry::collect([("a", &a as &dyn StatSource), ("b", &b as &dyn StatSource)]);
        assert_eq!(reg.counter("a.ops"), 10);
        assert_eq!(reg.counter("b.ops"), 32);
        assert_eq!(reg.sum_suffix(".ops"), 42);
        assert_eq!(reg.metric("a.energy_j"), 1.5);
        assert_eq!(reg.gauge("b.level"), 16.0);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn diff_subtracts_counters_and_metrics_keeps_gauges() {
        let before = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 10,
                energy: 1.0,
            } as &dyn StatSource,
        )]);
        let after = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 25,
                energy: 4.0,
            } as &dyn StatSource,
        )]);
        let delta = after.diff(&before);
        assert_eq!(delta.counter("x.ops"), 15);
        assert!((delta.metric("x.energy_j") - 3.0).abs() < 1e-12);
        // Gauges are instantaneous: the diff carries the newer level.
        assert_eq!(delta.gauge("x.level"), 12.5);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn diff_rejects_decreasing_counter() {
        let before = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 10,
                energy: 0.0,
            } as &dyn StatSource,
        )]);
        let after = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 9,
                energy: 0.0,
            } as &dyn StatSource,
        )]);
        let _ = after.diff(&before);
    }

    #[test]
    fn first_difference_pinpoints_the_diverging_series() {
        let a = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 7,
                energy: 2.0,
            } as &dyn StatSource,
        )]);
        assert_eq!(a.first_difference(&a.clone()), None);
        let b = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 9,
                energy: 2.0,
            } as &dyn StatSource,
        )]);
        let diff = a.first_difference(&b).expect("registries differ");
        assert_eq!(diff, "counter x.ops: 7 vs 9");
        let mut c = a.clone();
        c.scoped("y").counter("extra", 1);
        let diff = c.first_difference(&a).expect("extra key differs");
        assert_eq!(diff, "counter y.extra: 1 vs <absent>");
    }

    #[test]
    fn exports_are_deterministic_and_aligned() {
        let reg = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 7,
                energy: 2.0,
            } as &dyn StatSource,
        )]);
        let csv = reg.to_csv();
        let mut lines = csv.lines();
        let header: Vec<_> = lines.next().unwrap().split(',').collect();
        let values: Vec<_> = lines.next().unwrap().split(',').collect();
        assert_eq!(header.len(), values.len());
        assert_eq!(header[0], "x.ops");
        assert_eq!(values[0], "7");
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"x.ops\":7"));
        assert!(reg.dump().contains("x.ops = 7"));
    }
}
