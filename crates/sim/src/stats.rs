//! A unified registry of named simulation statistics.
//!
//! Components report through [`StatSource::report`] into a
//! [`StatsRegistry`], which distinguishes three kinds of series:
//!
//! * **counters** — monotonically non-decreasing `u64` event counts
//!   (MACs executed, packets delivered, stall cycles). Diffing two
//!   snapshots subtracts them and asserts monotonicity.
//! * **metrics** — accumulating `f64` quantities (energy in joules).
//!   Diffing subtracts.
//! * **gauges** — instantaneous `f64` levels (cache high-water, link
//!   occupancy). Diffing keeps the newer value.
//! * **histograms** — exact integer sample distributions ([`Histogram`]):
//!   every recorded value is kept as a `value -> count` bucket, so
//!   percentiles are exact (nearest-rank, no interpolation) and merging
//!   two histograms is order-independent down to the bit. Diffing
//!   subtracts bucket-wise and asserts monotonicity, like counters.
//!
//! Keys are dotted paths (`pe3.mac_ops`, `noc.delivered`); the
//! [`ScopedStats`] adapter prefixes everything a component reports so the
//! component itself only names its local series.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An exact sample distribution over `u64` values.
///
/// Samples are stored as a `value -> count` multiset, so no precision is
/// lost to bucketing: [`Histogram::percentile`] returns a value that was
/// actually recorded, and [`Histogram::merge`] is exactly
/// order-independent — merging per-shard histograms in any order yields
/// the same bits as recording every sample into one histogram. That is
/// the property the serving layer's serial-vs-parallel determinism
/// contract rests on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n > 0 {
            *self.buckets.entry(value).or_insert(0) += n;
            self.count += n;
        }
    }

    /// Adds every sample of `other` into `self` (bucket-wise addition —
    /// exact and independent of merge order).
    pub fn merge(&mut self, other: &Histogram) {
        for (&value, &n) in &other.buckets {
            *self.buckets.entry(value).or_insert(0) += n;
        }
        self.count += other.count;
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Largest recorded value, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Arithmetic mean of the samples, `None` when empty. Accumulated in
    /// ascending value order, so the result is deterministic.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .map(|(&v, &n)| v as f64 * n as f64)
            .sum();
        Some(sum / self.count as f64)
    }

    /// Exact nearest-rank percentile: the smallest recorded value whose
    /// cumulative count reaches `ceil(q * count)` (`q` clamped to
    /// `[0, 1]`; `q = 0` gives the minimum). `None` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&value, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates `(value, count)` buckets in ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }

    /// Bucket-wise difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics if any bucket shrank — histogram totals are monotonic by
    /// the same contract as counters.
    #[must_use]
    pub fn diff(&self, earlier: &Histogram, key: &str) -> Histogram {
        let mut out = Histogram::new();
        for (&value, &now) in &self.buckets {
            let before = earlier.buckets.get(&value).copied().unwrap_or(0);
            assert!(
                now >= before,
                "histogram {key} bucket {value} decreased: {before} -> {now} \
                 (histograms are monotonic)"
            );
            out.record_n(value, now - before);
        }
        for (&value, &before) in &earlier.buckets {
            assert!(
                self.buckets.contains_key(&value),
                "histogram {key} bucket {value} decreased: {before} -> 0 \
                 (histograms are monotonic)"
            );
        }
        out
    }

    /// Compact one-line summary (`count/min/mean/p50/p90/p99/max`), used
    /// by dumps and difference reports.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "count=0".to_string();
        }
        format!(
            "count={} min={} mean={:.2} p50={} p90={} p99={} max={}",
            self.count,
            self.min().unwrap(),
            self.mean().unwrap(),
            self.percentile(0.50).unwrap(),
            self.percentile(0.90).unwrap(),
            self.percentile(0.99).unwrap(),
            self.max().unwrap(),
        )
    }

    /// The derived columns exported per histogram, in export order.
    const EXPORT_COLS: [&'static str; 7] = ["count", "min", "mean", "p50", "p90", "p99", "max"];

    /// Values matching [`Histogram::EXPORT_COLS`], rendered for export.
    /// An empty histogram exports `0` everywhere so columns stay aligned.
    fn export_values(&self) -> [String; 7] {
        if self.count == 0 {
            return std::array::from_fn(|_| "0".to_string());
        }
        [
            self.count.to_string(),
            self.min().unwrap().to_string(),
            format!("{:.6}", self.mean().unwrap()),
            self.percentile(0.50).unwrap().to_string(),
            self.percentile(0.90).unwrap().to_string(),
            self.percentile(0.99).unwrap().to_string(),
            self.max().unwrap().to_string(),
        ]
    }
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, CR or
/// LF (internal quotes double); returns it untouched otherwise.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Escapes a string for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A component that can publish its statistics into a registry.
pub trait StatSource {
    /// Writes this component's current totals into `stats`.
    ///
    /// Implementations should report *running totals*, not deltas; the
    /// registry's snapshot/diff machinery derives per-phase numbers.
    fn report(&self, stats: &mut ScopedStats<'_>);
}

/// Named statistics, collected uniformly from every component.
///
/// `BTreeMap`s keep iteration (and therefore export) order deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsRegistry {
    counters: BTreeMap<String, u64>,
    metrics: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects a fresh snapshot from a set of sources.
    ///
    /// Each `(prefix, source)` pair reports under `prefix.`; an empty
    /// prefix reports at top level.
    pub fn collect<'a>(sources: impl IntoIterator<Item = (&'a str, &'a dyn StatSource)>) -> Self {
        let mut reg = StatsRegistry::new();
        for (prefix, source) in sources {
            source.report(&mut reg.scoped(prefix));
        }
        reg
    }

    /// A recording view that prefixes every key with `prefix.`.
    pub fn scoped<'a>(&'a mut self, prefix: &'a str) -> ScopedStats<'a> {
        ScopedStats {
            registry: self,
            prefix,
        }
    }

    /// Value of one counter (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Value of one metric (0.0 when absent).
    pub fn metric(&self, key: &str) -> f64 {
        self.metrics.get(key).copied().unwrap_or(0.0)
    }

    /// Value of one gauge (0.0 when absent).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// One histogram by key (`None` when absent).
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Sum of every counter whose key ends with `suffix`
    /// (e.g. `.mac_ops` totals the series across all PEs).
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates metrics in key order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.metrics.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Per-phase difference `self - earlier`.
    ///
    /// Counters and metrics subtract; gauges keep the value in `self`.
    /// A key absent from `earlier` is treated as 0 there.
    ///
    /// # Panics
    ///
    /// Panics if any counter decreased between the snapshots — counters
    /// are monotonic by contract, so a decrease is a component bug.
    pub fn diff(&self, earlier: &StatsRegistry) -> StatsRegistry {
        let mut out = StatsRegistry::new();
        for (key, &now) in &self.counters {
            let before = earlier.counter(key);
            assert!(
                now >= before,
                "counter {key} decreased: {before} -> {now} (counters are monotonic)"
            );
            out.counters.insert(key.clone(), now - before);
        }
        for (key, &now) in &self.metrics {
            out.metrics.insert(key.clone(), now - earlier.metric(key));
        }
        out.gauges = self.gauges.clone();
        static EMPTY: Histogram = Histogram {
            buckets: BTreeMap::new(),
            count: 0,
        };
        for (key, now) in &self.histograms {
            let before = earlier.histograms.get(key).unwrap_or(&EMPTY);
            out.histograms.insert(key.clone(), now.diff(before, key));
        }
        out
    }

    /// The first series (in deterministic key order: counters, then
    /// metrics, then gauges) on which `self` and `other` disagree,
    /// rendered as a human-readable `key: left vs right` line — the
    /// message differential tests print instead of two full registry
    /// dumps. `None` when the registries are equal.
    pub fn first_difference(&self, other: &StatsRegistry) -> Option<String> {
        fn scan<V: PartialEq + std::fmt::Display>(
            kind: &str,
            a: &BTreeMap<String, V>,
            b: &BTreeMap<String, V>,
        ) -> Option<String> {
            for key in a.keys().chain(b.keys().filter(|k| !a.contains_key(*k))) {
                match (a.get(key), b.get(key)) {
                    (Some(x), Some(y)) if x == y => {}
                    (Some(x), Some(y)) => return Some(format!("{kind} {key}: {x} vs {y}")),
                    (Some(x), None) => return Some(format!("{kind} {key}: {x} vs <absent>")),
                    (None, Some(y)) => return Some(format!("{kind} {key}: <absent> vs {y}")),
                    (None, None) => unreachable!(),
                }
            }
            None
        }
        fn scan_hist(
            a: &BTreeMap<String, Histogram>,
            b: &BTreeMap<String, Histogram>,
        ) -> Option<String> {
            for key in a.keys().chain(b.keys().filter(|k| !a.contains_key(*k))) {
                match (a.get(key), b.get(key)) {
                    (Some(x), Some(y)) if x == y => {}
                    (Some(x), Some(y)) => {
                        return Some(format!(
                            "histogram {key}: [{}] vs [{}]",
                            x.summary(),
                            y.summary()
                        ))
                    }
                    (Some(x), None) => {
                        return Some(format!("histogram {key}: [{}] vs <absent>", x.summary()))
                    }
                    (None, Some(y)) => {
                        return Some(format!("histogram {key}: <absent> vs [{}]", y.summary()))
                    }
                    (None, None) => unreachable!(),
                }
            }
            None
        }
        scan("counter", &self.counters, &other.counters)
            .or_else(|| scan("metric", &self.metrics, &other.metrics))
            .or_else(|| scan("gauge", &self.gauges, &other.gauges))
            .or_else(|| scan_hist(&self.histograms, &other.histograms))
    }

    /// Renders every series as `key = value` lines, one per series —
    /// the uniform replacement for hand-formatted per-crate debug dumps.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, v) in &self.metrics {
            let _ = writeln!(out, "{k} = {v:.6e}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} = {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "{k} = [{}]", h.summary());
        }
        out
    }

    /// Exports as two-line CSV: a header row of keys and a row of values
    /// — counters first, then metrics, then gauges, then histograms
    /// (each histogram as derived `key.count`/`key.min`/`key.mean`/
    /// `key.p50`/`key.p90`/`key.p99`/`key.max` columns), each in key
    /// order. Header fields containing commas, quotes or newlines are
    /// quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut header = String::new();
        let mut values = String::new();
        let mut sep = "";
        for (k, v) in &self.counters {
            let _ = write!(header, "{sep}{}", csv_field(k));
            let _ = write!(values, "{sep}{v}");
            sep = ",";
        }
        for (k, v) in &self.metrics {
            let _ = write!(header, "{sep}{}", csv_field(k));
            let _ = write!(values, "{sep}{v:.9e}");
            sep = ",";
        }
        for (k, v) in &self.gauges {
            let _ = write!(header, "{sep}{}", csv_field(k));
            let _ = write!(values, "{sep}{v}");
            sep = ",";
        }
        for (k, h) in &self.histograms {
            for (col, val) in Histogram::EXPORT_COLS.iter().zip(h.export_values()) {
                let _ = write!(header, "{sep}{}", csv_field(&format!("{k}.{col}")));
                let _ = write!(values, "{sep}{val}");
                sep = ",";
            }
        }
        format!("{header}\n{values}\n")
    }

    /// Exports as a flat JSON object (keys sorted and escaped, counters
    /// as integers, histograms as derived summary fields).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut sep = "";
        for (k, v) in &self.counters {
            let _ = write!(out, "{sep}\"{}\":{v}", json_escape(k));
            sep = ",";
        }
        for (k, v) in &self.metrics {
            let _ = write!(out, "{sep}\"{}\":{v:e}", json_escape(k));
            sep = ",";
        }
        for (k, v) in &self.gauges {
            let _ = write!(out, "{sep}\"{}\":{v}", json_escape(k));
            sep = ",";
        }
        for (k, h) in &self.histograms {
            for (col, val) in Histogram::EXPORT_COLS.iter().zip(h.export_values()) {
                let _ = write!(out, "{sep}\"{}\":{val}", json_escape(&format!("{k}.{col}")));
                sep = ",";
            }
        }
        out.push('}');
        out
    }
}

/// A view of a [`StatsRegistry`] that prefixes recorded keys.
///
/// Handed to [`StatSource::report`] so components name series locally
/// (`mac_ops`) while the registry stores them globally (`pe3.mac_ops`).
pub struct ScopedStats<'a> {
    registry: &'a mut StatsRegistry,
    prefix: &'a str,
}

impl ScopedStats<'_> {
    fn key(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Records a monotonic event count.
    pub fn counter(&mut self, name: &str, value: u64) {
        let key = self.key(name);
        self.registry.counters.insert(key, value);
    }

    /// Records an accumulating float quantity (e.g. joules).
    pub fn metric(&mut self, name: &str, value: f64) {
        let key = self.key(name);
        self.registry.metrics.insert(key, value);
    }

    /// Records an instantaneous level (e.g. an occupancy or high-water).
    pub fn gauge(&mut self, name: &str, value: f64) {
        let key = self.key(name);
        self.registry.gauges.insert(key, value);
    }

    /// Records a sample distribution (the component's running multiset —
    /// like counters, totals, not deltas).
    pub fn histogram(&mut self, name: &str, hist: &Histogram) {
        let key = self.key(name);
        self.registry.histograms.insert(key, hist.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        ops: u64,
        energy: f64,
    }

    impl StatSource for Fake {
        fn report(&self, stats: &mut ScopedStats<'_>) {
            stats.counter("ops", self.ops);
            stats.metric("energy_j", self.energy);
            stats.gauge("level", self.ops as f64 / 2.0);
        }
    }

    #[test]
    fn collect_prefixes_and_reads_back() {
        let a = Fake {
            ops: 10,
            energy: 1.5,
        };
        let b = Fake {
            ops: 32,
            energy: 0.5,
        };
        let reg =
            StatsRegistry::collect([("a", &a as &dyn StatSource), ("b", &b as &dyn StatSource)]);
        assert_eq!(reg.counter("a.ops"), 10);
        assert_eq!(reg.counter("b.ops"), 32);
        assert_eq!(reg.sum_suffix(".ops"), 42);
        assert_eq!(reg.metric("a.energy_j"), 1.5);
        assert_eq!(reg.gauge("b.level"), 16.0);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn diff_subtracts_counters_and_metrics_keeps_gauges() {
        let before = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 10,
                energy: 1.0,
            } as &dyn StatSource,
        )]);
        let after = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 25,
                energy: 4.0,
            } as &dyn StatSource,
        )]);
        let delta = after.diff(&before);
        assert_eq!(delta.counter("x.ops"), 15);
        assert!((delta.metric("x.energy_j") - 3.0).abs() < 1e-12);
        // Gauges are instantaneous: the diff carries the newer level.
        assert_eq!(delta.gauge("x.level"), 12.5);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn diff_rejects_decreasing_counter() {
        let before = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 10,
                energy: 0.0,
            } as &dyn StatSource,
        )]);
        let after = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 9,
                energy: 0.0,
            } as &dyn StatSource,
        )]);
        let _ = after.diff(&before);
    }

    #[test]
    fn first_difference_pinpoints_the_diverging_series() {
        let a = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 7,
                energy: 2.0,
            } as &dyn StatSource,
        )]);
        assert_eq!(a.first_difference(&a.clone()), None);
        let b = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 9,
                energy: 2.0,
            } as &dyn StatSource,
        )]);
        let diff = a.first_difference(&b).expect("registries differ");
        assert_eq!(diff, "counter x.ops: 7 vs 9");
        let mut c = a.clone();
        c.scoped("y").counter("extra", 1);
        let diff = c.first_difference(&a).expect("extra key differs");
        assert_eq!(diff, "counter y.extra: 1 vs <absent>");
    }

    #[test]
    fn exports_are_deterministic_and_aligned() {
        let reg = StatsRegistry::collect([(
            "x",
            &Fake {
                ops: 7,
                energy: 2.0,
            } as &dyn StatSource,
        )]);
        let csv = reg.to_csv();
        let mut lines = csv.lines();
        let header: Vec<_> = lines.next().unwrap().split(',').collect();
        let values: Vec<_> = lines.next().unwrap().split(',').collect();
        assert_eq!(header.len(), values.len());
        assert_eq!(header[0], "x.ops");
        assert_eq!(values[0], "7");
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"x.ops\":7"));
        assert!(reg.dump().contains("x.ops = 7"));
    }

    #[test]
    fn histogram_exact_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.percentile(0.0), Some(10));
        assert_eq!(h.percentile(0.50), Some(50));
        assert_eq!(h.percentile(0.90), Some(90));
        assert_eq!(h.percentile(0.99), Some(100));
        assert_eq!(h.percentile(1.0), Some(100));
        assert!((h.mean().unwrap() - 55.0).abs() < 1e-12);
        assert_eq!(Histogram::new().percentile(0.5), None);
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    fn histogram_merge_is_order_independent_and_exact() {
        let samples: Vec<u64> = (0..257u64).map(|i| (i * 7919) % 101).collect();
        let mut serial = Histogram::new();
        for &s in &samples {
            serial.record(s);
        }
        // Shard the samples three ways and merge the shards in both
        // orders: all three results must be bitwise identical.
        let mut shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 3].record(s);
        }
        let mut fwd = Histogram::new();
        for sh in &shards {
            fwd.merge(sh);
        }
        let mut rev = Histogram::new();
        for sh in shards.iter().rev() {
            rev.merge(sh);
        }
        assert_eq!(serial, fwd);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn histogram_diff_subtracts_and_registry_round_trips() {
        let mut before = StatsRegistry::new();
        let mut h0 = Histogram::new();
        h0.record_n(5, 3);
        before.scoped("serve").histogram("latency", &h0);
        let mut after = StatsRegistry::new();
        let mut h1 = h0.clone();
        h1.record_n(5, 1);
        h1.record(9);
        after.scoped("serve").histogram("latency", &h1);
        let delta = after.diff(&before);
        let d = delta.histogram("serve.latency").expect("diff keeps key");
        assert_eq!(d.count(), 2);
        assert_eq!(d.min(), Some(5));
        assert_eq!(d.max(), Some(9));
        assert!(after.first_difference(&after.clone()).is_none());
        let fd = after.first_difference(&before).expect("histograms differ");
        assert!(fd.starts_with("histogram serve.latency:"), "{fd}");
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn histogram_diff_rejects_shrinking_bucket() {
        let mut big = Histogram::new();
        big.record_n(7, 2);
        let mut small = Histogram::new();
        small.record(7);
        let _ = small.diff(&big, "x");
    }

    #[test]
    fn histogram_export_columns_align_in_csv_and_json() {
        let mut reg = StatsRegistry::new();
        reg.scoped("a").counter("ops", 3);
        let mut h = Histogram::new();
        h.record(4);
        h.record(8);
        reg.scoped("serve").histogram("batch", &h);
        let csv = reg.to_csv();
        let mut lines = csv.lines();
        let header: Vec<_> = lines.next().unwrap().split(',').collect();
        let values: Vec<_> = lines.next().unwrap().split(',').collect();
        assert_eq!(header.len(), values.len());
        assert!(header.contains(&"serve.batch.p50"));
        assert!(header.contains(&"serve.batch.count"));
        let json = reg.to_json();
        assert!(json.contains("\"serve.batch.count\":2"));
        assert!(json.contains("\"serve.batch.max\":8"));
        assert!(reg.dump().contains("serve.batch = [count=2"));
    }

    #[test]
    fn csv_export_quotes_hostile_keys_per_rfc4180() {
        let mut reg = StatsRegistry::new();
        reg.scoped("").counter("model,\"a\"", 1);
        let csv = reg.to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "\"model,\"\"a\"\"\"");
        // A well-formed-field key stays unquoted.
        let mut clean = StatsRegistry::new();
        clean.scoped("x").counter("ops", 1);
        assert_eq!(clean.to_csv().lines().next().unwrap(), "x.ops");
    }

    #[test]
    fn json_export_escapes_hostile_keys() {
        let mut reg = StatsRegistry::new();
        reg.scoped("").counter("a\"b\\c\nd", 2);
        let json = reg.to_json();
        assert_eq!(json, "{\"a\\\"b\\\\c\\nd\":2}");
    }
}
