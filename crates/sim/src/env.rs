//! Unified parsing for `NEUROCUBE_*` environment variables.
//!
//! Every knob in the workspace goes through this module so that one
//! truthiness rule holds everywhere:
//!
//! * **Flags** ([`env_flag`]): a variable is ON iff it is set to a
//!   non-empty value other than `"0"`. Unset, empty, or `"0"` is OFF.
//!   A value that is not valid UTF-8 is still *set* and non-`"0"`, so it
//!   counts as ON (historically `env::var`-based readers silently treated
//!   such values as unset while `var_os`-based readers did not — this
//!   module exists to end that divergence).
//! * **Values** ([`env_u64`], [`env_f64`], [`env_str`]): unset, empty, or
//!   unparseable reads as `None`; callers apply their own defaults.
//!   `"0"` is a legitimate value here, not an off switch — rate/seed
//!   semantics (e.g. `NEUROCUBE_FAULT_RATE=0` meaning "no faults") belong
//!   to the caller.
//!
//! Known variables routed through here: `NEUROCUBE_NO_SKIP`,
//! `NEUROCUBE_STAGE_PROFILE`, `NEUROCUBE_FAULT_ECC`,
//! `NEUROCUBE_NO_SIMD` (scalar `MacUnit` oracle instead of the SoA batch
//! kernels), `NEUROCUBE_STAGE_PAR` (stage-parallel PE ticking),
//! `NEUROCUBE_NO_SPARSITY` (disable the zero-operand host fast paths)
//! (flags);
//! `NEUROCUBE_FAULT_SEED`, `NEUROCUBE_SERVE_SEED`,
//! `NEUROCUBE_SERVE_MAX_BATCH`, `NEUROCUBE_SERVE_MAX_DELAY`,
//! `NEUROCUBE_SERVE_POOL` (u64); `NEUROCUBE_FAULT_RATE`,
//! `NEUROCUBE_BENCH_MIN_SPEEDUP`, `NEUROCUBE_SERVE_AUDIT_RATE` (f64);
//! `NEUROCUBE_SCALE`, `NEUROCUBE_SERVE_LOAD`,
//! `NEUROCUBE_SERVE_SCENARIO` (string). The serving-layer knobs have
//! dedicated accessors ([`serve_seed`], [`serve_load`],
//! [`serve_max_batch`], [`serve_max_delay`], [`serve_pool`],
//! [`serve_audit_rate`], [`serve_scenario`]) so the variable names live
//! in exactly one place. Path-valued variables (`NEUROCUBE_CSV`,
//! `NEUROCUBE_BENCH_OUT`, `NEUROCUBE_BENCH_SERVE_OUT`) stay on `var_os`
//! — paths may legitimately be non-UTF-8.
//!
//! These accessors read fixed process-global variable names, so their
//! tests live in the integration suite (`tests/tests/env_knobs.rs`)
//! behind a shared mutex-backed environment guard — unit tests here
//! stick to `NC_TEST_*` names no other test reads.

use std::ffi::OsString;

/// Raw lookup shared by all readers: `None` when unset or set to the
/// empty string; otherwise the value, UTF-8 or not.
fn raw(name: &str) -> Option<OsString> {
    std::env::var_os(name).filter(|v| !v.is_empty())
}

/// Boolean flag: ON iff set to a non-empty value other than `"0"`.
/// Non-UTF-8 values count as ON.
#[must_use]
pub fn env_flag(name: &str) -> bool {
    raw(name).is_some_and(|v| v.to_str() != Some("0"))
}

/// String value: `None` when unset, empty, or not valid UTF-8.
#[must_use]
pub fn env_str(name: &str) -> Option<String> {
    raw(name)?.into_string().ok()
}

/// Unsigned integer value: `None` when unset, empty, or unparseable.
#[must_use]
pub fn env_u64(name: &str) -> Option<u64> {
    env_str(name)?.trim().parse().ok()
}

/// Floating-point value: `None` when unset, empty, or unparseable.
#[must_use]
pub fn env_f64(name: &str) -> Option<f64> {
    env_str(name)?.trim().parse().ok()
}

/// `NEUROCUBE_NO_SIMD`: when ON, components default to the scalar
/// `MacUnit` oracle instead of the SoA batch kernels.
///
/// Deliberately **not cached**: each simulator instance resolves the
/// flag at construction (and again on `set_simd(None)`), so tests and
/// serve runs that flip the variable between constructions observe the
/// current value and an `EnvGuard` restore-on-drop actually restores
/// behaviour. Explicit `set_simd(Some(..))` overrides stay authoritative.
#[must_use]
pub fn simd_default() -> bool {
    !env_flag("NEUROCUBE_NO_SIMD")
}

/// `NEUROCUBE_STAGE_PAR`: when ON, `NeurocubeSystem`s default to
/// stage-parallel PE ticking. Same per-construction (uncached)
/// resolution contract as [`simd_default`]; `set_stage_par(Some(..))`
/// overrides stay authoritative.
#[must_use]
pub fn stage_par_default() -> bool {
    env_flag("NEUROCUBE_STAGE_PAR")
}

/// `NEUROCUBE_NO_SPARSITY`: when ON, the PE zero-operand host fast
/// paths are disabled and every fire runs the dense kernels. Sparsity
/// classification *counters* stay on either way — the knob only selects
/// the (bitwise-identical) host execution strategy. Same uncached
/// resolution contract as [`simd_default`].
#[must_use]
pub fn sparsity_default() -> bool {
    !env_flag("NEUROCUBE_NO_SPARSITY")
}

/// `NEUROCUBE_SERVE_SEED`: the serving layer's trace seed (u64 rules —
/// `0` is a legitimate seed, not an off switch).
#[must_use]
pub fn serve_seed() -> Option<u64> {
    env_u64("NEUROCUBE_SERVE_SEED")
}

/// `NEUROCUBE_SERVE_LOAD`: the arrival profile name (string rules; the
/// serving layer accepts `poisson`, `bursty` or `diurnal` and rejects
/// anything else at configuration time, not here).
#[must_use]
pub fn serve_load() -> Option<String> {
    env_str("NEUROCUBE_SERVE_LOAD")
}

/// `NEUROCUBE_SERVE_MAX_BATCH`: dynamic-batching size cap (u64 rules).
#[must_use]
pub fn serve_max_batch() -> Option<u64> {
    env_u64("NEUROCUBE_SERVE_MAX_BATCH")
}

/// `NEUROCUBE_SERVE_MAX_DELAY`: max queue delay, in virtual cycles, a
/// request may wait for batch-mates before dispatch (u64 rules).
#[must_use]
pub fn serve_max_delay() -> Option<u64> {
    env_u64("NEUROCUBE_SERVE_MAX_DELAY")
}

/// `NEUROCUBE_SERVE_POOL`: number of cubes in the serving pool (u64
/// rules; the serving layer rejects `0` at configuration time).
#[must_use]
pub fn serve_pool() -> Option<u64> {
    env_u64("NEUROCUBE_SERVE_POOL")
}

/// `NEUROCUBE_SERVE_AUDIT_RATE`: fraction of dispatches the two-speed
/// serving path replays cycle-accurately (f64 rules — `0` is a
/// legitimate rate meaning "no audits", not an off switch; unset, empty
/// or unparseable reads as `None` and the caller's default applies; the
/// audit sampler clamps whatever arrives to `[0, 1]`).
#[must_use]
pub fn serve_audit_rate() -> Option<f64> {
    env_f64("NEUROCUBE_SERVE_AUDIT_RATE")
}

/// `NEUROCUBE_SERVE_SCENARIO`: named traffic-scenario preset (string
/// rules; the serving layer resolves the name and rejects unknown ones
/// with a typed error at configuration time, not here).
#[must_use]
pub fn serve_scenario() -> Option<String> {
    env_str("NEUROCUBE_SERVE_SCENARIO")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global environment: each test uses a distinct variable name
    // so the suite stays order- and thread-independent.

    #[test]
    fn flag_truthiness_rule() {
        std::env::remove_var("NC_TEST_FLAG_UNSET");
        assert!(!env_flag("NC_TEST_FLAG_UNSET"));
        std::env::set_var("NC_TEST_FLAG_EMPTY", "");
        assert!(!env_flag("NC_TEST_FLAG_EMPTY"));
        std::env::set_var("NC_TEST_FLAG_ZERO", "0");
        assert!(!env_flag("NC_TEST_FLAG_ZERO"));
        std::env::set_var("NC_TEST_FLAG_ONE", "1");
        assert!(env_flag("NC_TEST_FLAG_ONE"));
        std::env::set_var("NC_TEST_FLAG_WORD", "yes");
        assert!(env_flag("NC_TEST_FLAG_WORD"));
        // "00" is non-empty and not exactly "0": ON, by the documented rule.
        std::env::set_var("NC_TEST_FLAG_00", "00");
        assert!(env_flag("NC_TEST_FLAG_00"));
    }

    #[test]
    fn numeric_values_parse_or_none() {
        std::env::set_var("NC_TEST_U64", " 42 ");
        assert_eq!(env_u64("NC_TEST_U64"), Some(42));
        std::env::set_var("NC_TEST_U64_BAD", "4x2");
        assert_eq!(env_u64("NC_TEST_U64_BAD"), None);
        std::env::set_var("NC_TEST_F64", "1e-7");
        assert_eq!(env_f64("NC_TEST_F64"), Some(1e-7));
        std::env::set_var("NC_TEST_F64_ZERO", "0");
        assert_eq!(env_f64("NC_TEST_F64_ZERO"), Some(0.0));
        assert_eq!(env_f64("NC_TEST_F64_UNSET_XYZ"), None);
    }

    // The serve accessors read fixed process-global variable names, so
    // their set/unset tests live in the integration suite
    // (`tests/tests/env_knobs.rs`) behind the shared `EnvGuard` mutex;
    // every test in this binary sticks to its own `NC_TEST_*` name.

    #[cfg(unix)]
    #[test]
    fn non_utf8_counts_as_set_for_flags_and_none_for_values() {
        use std::os::unix::ffi::OsStringExt;
        let bad = OsString::from_vec(vec![0xFF, 0xFE]);
        std::env::set_var("NC_TEST_NON_UTF8", &bad);
        assert!(env_flag("NC_TEST_NON_UTF8"));
        assert_eq!(env_str("NC_TEST_NON_UTF8"), None);
        assert_eq!(env_u64("NC_TEST_NON_UTF8"), None);
    }
}
