//! Parallel execution of independent simulator instances.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// What a worker leaves behind for one job: unfilled, a value, or the
/// payload of a panic that occurred while computing it.
type JobSlot<T> = Mutex<Option<Result<T, Box<dyn std::any::Any + Send>>>>;

/// Runs N independent jobs across a bounded pool of scoped threads.
///
/// Each job builds and runs its own simulator instance, which remains a
/// deterministic single-threaded cycle loop — parallelism exists only
/// *across* instances, so batch output is bitwise identical to running
/// the same jobs serially. Results come back in job order regardless of
/// completion order.
///
/// Panics inside jobs are captured per job and re-raised in the caller
/// with the original payload (std's scoped threads would otherwise
/// replace it with a generic message); when several jobs panic, the
/// lowest-indexed payload wins, matching what a serial run would raise
/// first.
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        BatchRunner { threads }
    }

    /// A runner with an explicit worker count (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
        }
    }

    /// The worker-thread count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for `i in 0..jobs` and returns results in job order.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the lowest-indexed failing job, after all
    /// workers have stopped.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<JobSlot<T>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(jobs.max(1));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| job(i)));
                    *slots[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        let mut results = Vec::with_capacity(jobs);
        let mut first_panic = None;
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap() {
                Some(Ok(value)) => results.push(value),
                Some(Err(payload)) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
                None => unreachable!("job {i} was never executed"),
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let runner = BatchRunner::with_threads(4);
        let out = runner.run(32, |i| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn batch_matches_serial() {
        // The same stateful computation run serially and in a batch must
        // produce identical results (each job owns its state).
        let compute = |i: usize| {
            let mut x = i as u64 + 1;
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let serial: Vec<u64> = (0..16).map(compute).collect();
        let batch = BatchRunner::with_threads(8).run(16, compute);
        assert_eq!(serial, batch);
    }

    #[test]
    fn handles_more_workers_than_jobs_and_zero_jobs() {
        let runner = BatchRunner::with_threads(16);
        assert_eq!(runner.run(2, |i| i), vec![0, 1]);
        assert_eq!(runner.run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn reraises_lowest_index_panic_payload() {
        BatchRunner::with_threads(4).run(8, |i| {
            if i >= 3 {
                panic!("job {i} exploded");
            }
            i
        });
    }
}
