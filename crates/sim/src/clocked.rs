//! The clocked-stage abstraction and the cycle loop that drives it.
//!
//! Besides plain per-cycle ticking, the loop supports **event-horizon
//! fast-forward**: stages that can prove they are quiescent report the
//! earliest future cycle at which they might change state
//! ([`Clocked::next_event`]), and the loop jumps the clock straight to
//! the earliest such horizon, letting each stage bulk-charge the skipped
//! cycles ([`Clocked::skip`]) so that every counter a run reports is
//! bitwise identical to the naive cycle-by-cycle loop. Setting
//! `NEUROCUBE_NO_SKIP=1` in the environment disables fast-forward
//! process-wide, keeping the naive loop alive as a differential oracle.

use std::sync::OnceLock;

/// One pipeline stage of a cycle-level simulator.
///
/// A stage is ticked exactly once per simulated cycle, in the order it was
/// registered with the [`CycleLoop`]. `B` is the shared bus — typically the
/// whole system struct — through which stages exchange state. `now` is the
/// cycle number being simulated (the value *before* the loop advances its
/// clock for this cycle).
pub trait Clocked<B: ?Sized> {
    /// Advances this stage by one cycle.
    fn tick(&mut self, now: u64, bus: &mut B);

    /// The earliest future cycle at which this stage might change state.
    ///
    /// Returning `Some(t)` with `t > now` is a promise: every tick in
    /// `[now, t)` is a *null tick* — its entire effect on the bus (including
    /// idle/stall counters that advance every waiting cycle) is exactly
    /// reproduced by one [`Clocked::skip`] call over the same range.
    /// `Some(u64::MAX)` means the stage generates no event of its own and
    /// only reacts to other stages. Returning `None` means "tick me every
    /// cycle": the stage is (or might be) actively changing state and the
    /// loop must not fast-forward past it. The default is `None`, so stages
    /// that never opt in are always ticked naively — safe by construction.
    fn next_event(&self, now: u64, bus: &B) -> Option<u64> {
        let _ = (now, bus);
        None
    }

    /// Bulk-charges the effect of the null ticks in `[from, to)`.
    ///
    /// Called only for ranges this stage itself declared quiescent via
    /// [`Clocked::next_event`] (the loop never skips past a stage's
    /// horizon). Implementations must mutate the bus exactly as `to - from`
    /// consecutive ticks would have. The default does nothing, matching the
    /// default `next_event` of `None` (which never lets a skip happen).
    fn skip(&mut self, from: u64, to: u64, bus: &mut B) {
        let _ = (from, to, bus);
    }

    /// Short name used in progress and diagnostic output.
    fn name(&self) -> &'static str {
        "stage"
    }
}

/// A boxed closure also works as a stage, which keeps simple systems from
/// having to define one unit struct per pipeline step.
impl<B: ?Sized, F: FnMut(u64, &mut B)> Clocked<B> for F {
    fn tick(&mut self, now: u64, bus: &mut B) {
        self(now, bus)
    }
}

/// Deadlock watchdog configuration for a [`CycleLoop`].
///
/// Completion and progress are only sampled every `check_interval` cycles
/// (sampling them is allowed to be expensive). If the progress measure
/// stays flat for `idle_budget` consecutive *ticked* cycles while the run
/// is not complete, the loop panics with the diagnostic text supplied by
/// the caller — a stall is always a bug in either the model or the program
/// being simulated, never a condition to limp through. Cycles crossed by a
/// horizon jump count as progress (the jump proves an event is scheduled),
/// subject to the [`EVENT_LOOP_LEASH`] backstop.
#[derive(Clone, Copy, Debug)]
pub struct Watchdog {
    /// Cycles between completion/progress samples.
    pub check_interval: u64,
    /// Consecutive no-progress cycles tolerated before panicking.
    pub idle_budget: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            check_interval: 64,
            idle_budget: 2_000_000,
        }
    }
}

/// Backstop multiplier for event-looping runs: even when every no-progress
/// window is crossed by horizon jumps (which normally do not charge the
/// idle budget), a run whose progress measure stays flat for
/// `idle_budget × EVENT_LOOP_LEASH` cycles is declared stalled. This
/// catches pathological self-sustaining event loops (e.g. a DRAM refresh
/// timer firing forever over a wedged queue) that the naive loop would
/// also have flagged, just sooner.
pub const EVENT_LOOP_LEASH: u64 = 64;

/// One fast-forward decision taken by the loop, for telemetry/diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JumpRecord {
    /// Cycle the jump started from.
    pub from: u64,
    /// Cycle the jump landed on (exclusive end of the skipped range).
    pub to: u64,
    /// Name of the stage (or `"check boundary"`) that bounded the horizon.
    pub stage: &'static str,
}

/// True unless the `NEUROCUBE_NO_SKIP` flag is on (see [`crate::env`] for
/// the one truthiness rule all `NEUROCUBE_*` flags share). Read once per
/// process: tests that need both modes in one process must use
/// [`CycleLoop::with_skip`] instead of mutating the environment.
fn env_skip_enabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    !*DISABLED.get_or_init(|| crate::env::env_flag("NEUROCUBE_NO_SKIP"))
}

/// True when the `NEUROCUBE_STAGE_PROFILE` flag is on (same rule): every
/// [`CycleLoop::run`] then accumulates per-stage wall-clock time and
/// prints a breakdown to stderr when it completes. Costs one `Instant`
/// pair per stage per cycle while on; a single branch per cycle while off.
fn stage_profile_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| crate::env::env_flag("NEUROCUBE_STAGE_PROFILE"))
}

/// Drives a set of [`Clocked`] stages until a completion predicate holds.
///
/// The loop owns the three pieces of bookkeeping every hand-rolled cycle
/// loop otherwise reimplements: stage ordering, the periodic completion
/// check, and the stalled-simulation watchdog. Stages run in registration
/// order within a cycle; the bus's notion of "current cycle" is whatever
/// the caller passes as `start` plus the number of completed cycles.
///
/// When fast-forward is enabled (the default, unless `NEUROCUBE_NO_SKIP`
/// is set), the loop asks every stage for its [`Clocked::next_event`]
/// before ticking a cycle. If all stages report a future horizon, the
/// clock jumps to the earliest one — capped at the next watchdog check
/// boundary, so completion and progress are sampled at exactly the same
/// absolute cycles (with identical bus state) as the naive loop, making
/// the two modes bitwise identical in everything they report.
pub struct CycleLoop<B: ?Sized> {
    stages: Vec<Box<dyn Clocked<B>>>,
    watchdog: Watchdog,
    skip: bool,
    /// Index the next horizon probe starts from. Move-to-front heuristic:
    /// the stage that vetoed the last jump is probed first, so an actively
    /// busy stage (usually the NoC) rejects fast-forward in O(1) per cycle.
    probe_from: usize,
    /// Per-stage count of probes this stage vetoed (returned `None`) —
    /// the profile's "which stage blocks fast-forward" answer.
    veto_counts: Vec<u64>,
    jumps: u64,
    skipped_cycles: u64,
    last_jump: Option<JumpRecord>,
}

/// Consecutive vetoed probes before the loop starts spacing probes out.
/// On saturated workloads a busy stage vetoes every cycle for thousands of
/// cycles straight; probing each one buys nothing and costs a `next_event`
/// sweep. After this many consecutive vetoes the loop probes once every
/// `streak / VETO_BACKOFF_AFTER` cycles (capped at [`MAX_PROBE_HOLDOFF`]),
/// ticking in between — always safe, since ticking is the oracle the skip
/// path is measured against; the only cost is jumping a few cycles later
/// into a quiescent stretch.
const VETO_BACKOFF_AFTER: u32 = 8;

/// Upper bound on the probe hold-off, so a long-saturated run still
/// notices a quiescent stretch within 16 cycles of it starting.
const MAX_PROBE_HOLDOFF: u64 = 15;

impl<B: ?Sized> Default for CycleLoop<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: ?Sized> CycleLoop<B> {
    /// Creates an empty loop with the default [`Watchdog`] and the
    /// process-default fast-forward setting (`NEUROCUBE_NO_SKIP`).
    pub fn new() -> Self {
        CycleLoop {
            stages: Vec::new(),
            watchdog: Watchdog::default(),
            skip: env_skip_enabled(),
            probe_from: 0,
            veto_counts: Vec::new(),
            jumps: 0,
            skipped_cycles: 0,
            last_jump: None,
        }
    }

    /// Overrides the watchdog configuration.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        assert!(watchdog.check_interval > 0, "check_interval must be > 0");
        self.watchdog = watchdog;
        self
    }

    /// Overrides the fast-forward setting for this loop, regardless of
    /// `NEUROCUBE_NO_SKIP`. Tests and differential harnesses use this to
    /// run both modes inside one process.
    pub fn with_skip(mut self, enabled: bool) -> Self {
        self.skip = enabled;
        self
    }

    /// Whether this loop fast-forwards over quiescent stretches.
    pub fn skip_enabled(&self) -> bool {
        self.skip
    }

    /// Registers a stage; stages tick in registration order each cycle.
    pub fn stage(mut self, stage: impl Clocked<B> + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self.veto_counts.push(0);
        self
    }

    /// Names of the registered stages, in tick order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Number of horizon jumps taken so far by [`CycleLoop::run`].
    pub fn jumps(&self) -> u64 {
        self.jumps
    }

    /// Total cycles crossed by horizon jumps instead of ticking.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// The most recent fast-forward decision, if any.
    pub fn last_jump(&self) -> Option<JumpRecord> {
        self.last_jump
    }

    /// Probes every stage for its event horizon. Returns the jump target
    /// (already capped at the next check boundary) and the name of
    /// whatever bounded it, or `None` if any stage demands a tick, any
    /// horizon is non-future (a contract violation, tolerated as "tick"),
    /// or every stage reported `u64::MAX` (a dead machine must fall back
    /// to naive ticking so the watchdog sees it exactly like the oracle).
    fn horizon(&mut self, now: u64, bus: &B) -> Option<(u64, &'static str)> {
        let n = self.stages.len();
        let mut best = u64::MAX;
        let mut who = usize::MAX;
        for k in 0..n {
            let i = (self.probe_from + k) % n;
            match self.stages[i].next_event(now, bus) {
                None => {
                    self.probe_from = i;
                    self.veto_counts[i] += 1;
                    return None;
                }
                Some(t) => {
                    debug_assert!(
                        t > now,
                        "stage '{}' promised non-future event {t} at cycle {now}",
                        self.stages[i].name()
                    );
                    if t <= now {
                        return None;
                    }
                    if t < best {
                        best = t;
                        who = i;
                    }
                }
            }
        }
        if best == u64::MAX {
            return None;
        }
        let cap = (now / self.watchdog.check_interval + 1) * self.watchdog.check_interval;
        if best <= cap {
            Some((best, self.stages[who].name()))
        } else {
            Some((cap, "check boundary"))
        }
    }

    /// Diagnostic suffix describing the last fast-forward decision.
    fn horizon_note(&self) -> String {
        match self.last_jump {
            Some(j) => format!(
                "\nlast horizon decision: jumped cycle {} -> {} (bounded by '{}'); \
                 {} jumps, {} cycles skipped this run",
                j.from, j.to, j.stage, self.jumps, self.skipped_cycles
            ),
            None => "\nlast horizon decision: none (no fast-forward jump this run)".to_string(),
        }
    }

    /// Runs the loop starting at cycle `start` and returns the first cycle
    /// at which `done` held (the bus clock should then equal that value).
    ///
    /// * `done` — sampled once at entry (an already-complete bus returns
    ///   `start` without ticking any stage) and then every `check_interval`
    ///   cycles; once it returns true the loop exits.
    /// * `progress` — a monotonic measure of useful work (e.g. total MAC
    ///   operations). Sampled on the same schedule as `done`; if it is
    ///   unchanged for longer than `idle_budget` ticked cycles (or
    ///   `idle_budget × EVENT_LOOP_LEASH` total cycles, counting horizon
    ///   jumps) the loop panics.
    /// * `diagnose` — builds the panic message for a stalled run; it should
    ///   dump enough component state to localise the deadlock. The loop
    ///   appends its last horizon decision to the message.
    ///
    /// # Panics
    ///
    /// Panics with the `diagnose` text when the watchdog trips.
    pub fn run(
        &mut self,
        bus: &mut B,
        start: u64,
        mut done: impl FnMut(&B) -> bool,
        mut progress: impl FnMut(&B) -> u64,
        diagnose: impl FnOnce(&B, u64) -> String,
    ) -> u64 {
        if done(bus) {
            return start;
        }
        let mut now = start;
        let mut last_progress = progress(bus);
        // Checks land on absolute multiples of the interval, so the first
        // window after an unaligned `start` is shorter than the rest;
        // idleness is charged by ticked cycles, not per check, so that
        // short window cannot eat a full interval of the budget. Windows
        // crossed purely by horizon jumps charge nothing (the jump proves
        // an event is scheduled), with `flat_since` as the leashed backstop
        // against no-progress event loops.
        let mut idle_cycles: u64 = 0;
        let mut ticked_since_check: u64 = 0;
        let mut flat_since = start;
        let profile = stage_profile_enabled();
        let mut stage_nanos = vec![0u64; self.stages.len()];
        let mut probe_nanos = 0u64;
        let mut skip_nanos = 0u64;
        let mut ticked: u64 = 0;
        // Veto-streak probe backoff (see [`VETO_BACKOFF_AFTER`]): on long
        // saturated stretches the probe is spaced out and the loop just
        // ticks — bitwise identical by the tick/skip contract, minus the
        // per-cycle probe sweep.
        let mut veto_streak: u32 = 0;
        let mut probe_holdoff: u64 = 0;
        // Label passed explicitly: labels are hygienic in macro_rules, so
        // the macro cannot name the loop's label directly.
        macro_rules! sample {
            ($exit:lifetime) => {
                if done(bus) {
                    break $exit now;
                }
                let p = progress(bus);
                if p != last_progress {
                    last_progress = p;
                    idle_cycles = 0;
                    flat_since = now;
                } else {
                    idle_cycles += ticked_since_check;
                    let leash = self.watchdog.idle_budget.saturating_mul(EVENT_LOOP_LEASH);
                    if idle_cycles >= self.watchdog.idle_budget || now - flat_since >= leash {
                        panic!(
                            "{}{}",
                            diagnose(bus, idle_cycles.max(now - flat_since)),
                            self.horizon_note()
                        );
                    }
                }
                ticked_since_check = 0;
            };
        }
        let end = 'run: loop {
            if self.skip && probe_holdoff == 0 {
                let probe_start = profile.then(std::time::Instant::now);
                let jump = self.horizon(now, bus);
                if let Some(t0) = probe_start {
                    probe_nanos += t0.elapsed().as_nanos() as u64;
                }
                if let Some((target, stage)) = jump {
                    veto_streak = 0;
                    let skip_start = profile.then(std::time::Instant::now);
                    for s in &mut self.stages {
                        s.skip(now, target, bus);
                    }
                    if let Some(t0) = skip_start {
                        skip_nanos += t0.elapsed().as_nanos() as u64;
                    }
                    self.jumps += 1;
                    self.skipped_cycles += target - now;
                    self.last_jump = Some(JumpRecord {
                        from: now,
                        to: target,
                        stage,
                    });
                    now = target;
                    if now.is_multiple_of(self.watchdog.check_interval) {
                        sample!('run);
                    }
                    continue;
                }
                veto_streak = veto_streak.saturating_add(1);
                if veto_streak >= VETO_BACKOFF_AFTER {
                    probe_holdoff =
                        u64::from(veto_streak / VETO_BACKOFF_AFTER).min(MAX_PROBE_HOLDOFF);
                }
            } else {
                probe_holdoff = probe_holdoff.saturating_sub(1);
            }
            if profile {
                for (i, stage) in self.stages.iter_mut().enumerate() {
                    let t0 = std::time::Instant::now();
                    stage.tick(now, bus);
                    stage_nanos[i] += t0.elapsed().as_nanos() as u64;
                }
                ticked += 1;
            } else {
                for stage in &mut self.stages {
                    stage.tick(now, bus);
                }
            }
            now += 1;
            ticked_since_check += 1;
            if now.is_multiple_of(self.watchdog.check_interval) {
                sample!('run);
            }
        };
        if profile {
            let total: u64 = stage_nanos.iter().sum();
            eprintln!(
                "[stage profile] {} cycles ({} ticked, {} skipped in {} jumps), \
                 {:.1} ms staged + {:.1} ms horizon probes + {:.1} ms skip charges",
                end - start,
                ticked,
                self.skipped_cycles,
                self.jumps,
                total as f64 / 1e6,
                probe_nanos as f64 / 1e6,
                skip_nanos as f64 / 1e6,
            );
            for (i, stage) in self.stages.iter().enumerate() {
                eprintln!(
                    "[stage profile]   {:<20} {:>10.1} ms  {:>5.1}%  \
                     ({:.0} ns/tick over {} ticks, {} jumps, {} probe vetoes)",
                    stage.name(),
                    stage_nanos[i] as f64 / 1e6,
                    100.0 * stage_nanos[i] as f64 / total.max(1) as f64,
                    stage_nanos[i] as f64 / ticked.max(1) as f64,
                    ticked,
                    self.jumps,
                    self.veto_counts[i],
                );
            }
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy bus: a countdown that stage A decrements and stage B observes.
    struct Countdown {
        remaining: u64,
        observed: u64,
        work: u64,
    }

    struct Decrement;
    impl Clocked<Countdown> for Decrement {
        fn tick(&mut self, _now: u64, bus: &mut Countdown) {
            if bus.remaining > 0 {
                bus.remaining -= 1;
                bus.work += 1;
            }
        }
        fn name(&self) -> &'static str {
            "decrement"
        }
    }

    #[test]
    fn runs_stages_in_order_until_done() {
        let mut bus = Countdown {
            remaining: 100,
            observed: 0,
            work: 0,
        };
        let mut cl = CycleLoop::new()
            .stage(Decrement)
            .stage(|_now: u64, bus: &mut Countdown| bus.observed = bus.remaining);
        let end = cl.run(
            &mut bus,
            0,
            |b| b.remaining == 0,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        // Completion is only sampled at multiples of the check interval.
        assert_eq!(end, 128);
        assert_eq!(bus.remaining, 0);
        assert_eq!(bus.observed, 0);
        assert_eq!(bus.work, 100);
    }

    #[test]
    fn resumes_from_nonzero_start() {
        let mut bus = Countdown {
            remaining: 10,
            observed: 0,
            work: 0,
        };
        let mut cl = CycleLoop::new().stage(Decrement);
        let end = cl.run(
            &mut bus,
            1000,
            |b| b.remaining == 0,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert_eq!(end, 1024);
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn watchdog_trips_on_flat_progress() {
        let mut bus = Countdown {
            remaining: 0,
            observed: 0,
            work: 0,
        };
        let mut cl = CycleLoop::new()
            .with_watchdog(Watchdog {
                check_interval: 4,
                idle_budget: 1024,
            })
            .stage(Decrement);
        cl.run(
            &mut bus,
            0,
            |_| false,
            |b| b.work,
            |_, idle| format!("no progress for {idle} cycles"),
        );
    }

    #[test]
    fn done_at_entry_returns_start_without_ticking() {
        let mut bus = Countdown {
            remaining: 0,
            observed: 7,
            work: 0,
        };
        let mut cl = CycleLoop::new()
            .stage(Decrement)
            .stage(|_now: u64, bus: &mut Countdown| bus.observed = bus.remaining);
        let end = cl.run(
            &mut bus,
            1000,
            |b| b.remaining == 0,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert_eq!(end, 1000);
        // No stage ran on the already-complete bus.
        assert_eq!(bus.observed, 7);
        assert_eq!(bus.work, 0);
    }

    #[test]
    fn unaligned_start_does_not_overcharge_idle() {
        // Starting at 1000 with a 64-cycle interval, the first check lands
        // at 1024 — a 24-cycle window. The bus makes its first progress only
        // at cycle 1024, so that window is genuinely idle; with a 64-cycle
        // budget, charging the window a full interval (the old off-by-one)
        // would trip the watchdog even though only 24 idle cycles elapsed.
        struct LateStart {
            work: u64,
        }
        let mut bus = LateStart { work: 0 };
        let mut cl = CycleLoop::new().with_watchdog(Watchdog {
            check_interval: 64,
            idle_budget: 64,
        });
        cl = cl.stage(|now: u64, bus: &mut LateStart| {
            if now >= 1024 {
                bus.work += 1;
            }
        });
        let end = cl.run(
            &mut bus,
            1000,
            |b| b.work >= 1,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert_eq!(end, 1088);
    }

    #[test]
    #[should_panic(expected = "stalled for 88")]
    fn unaligned_start_still_charges_true_idle_time() {
        // Same unaligned geometry, but the bus never progresses: the short
        // first window (24 cycles) plus one full interval (64) exceeds the
        // 64-cycle budget at the second check — and the diagnostic reports
        // the true 88 elapsed idle cycles, not a multiple of the interval.
        struct Stuck;
        let mut bus = Stuck;
        let mut cl = CycleLoop::new().with_watchdog(Watchdog {
            check_interval: 64,
            idle_budget: 64,
        });
        cl = cl.stage(|_now: u64, _bus: &mut Stuck| {});
        cl.run(
            &mut bus,
            1000,
            |_| false,
            |_| 0,
            |_, idle| format!("stalled for {idle}"),
        );
    }

    #[test]
    fn watchdog_tolerates_slow_but_steady_progress() {
        // One unit of work every 96 cycles: flat across single checks but
        // never flat for long enough to exhaust the budget.
        struct Slow {
            work: u64,
        }
        let mut bus = Slow { work: 0 };
        let mut cl = CycleLoop::new().with_watchdog(Watchdog {
            check_interval: 16,
            idle_budget: 128,
        });
        cl = cl.stage(|now: u64, bus: &mut Slow| {
            if (now + 1).is_multiple_of(96) {
                bus.work += 1;
            }
        });
        let end = cl.run(
            &mut bus,
            0,
            |b| b.work >= 20,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert!(end >= 20 * 96);
    }

    /// Event-driven toy bus for the fast-forward tests: a periodic stage
    /// fires every `period` cycles and counts every other cycle as idle;
    /// a clock stage mirrors the loop's cycle count onto the bus.
    #[derive(Default, Debug, PartialEq, Eq)]
    struct EventBus {
        clock: u64,
        events: u64,
        idle_ticks: u64,
    }

    struct Periodic {
        period: u64,
    }
    impl Clocked<EventBus> for Periodic {
        fn tick(&mut self, now: u64, bus: &mut EventBus) {
            if now > 0 && now.is_multiple_of(self.period) {
                bus.events += 1;
            } else {
                bus.idle_ticks += 1;
            }
        }
        fn next_event(&self, now: u64, _bus: &EventBus) -> Option<u64> {
            if now > 0 && now.is_multiple_of(self.period) {
                None // fires this very cycle: must be ticked
            } else {
                Some((now / self.period + 1) * self.period)
            }
        }
        fn skip(&mut self, from: u64, to: u64, bus: &mut EventBus) {
            bus.idle_ticks += to - from;
        }
        fn name(&self) -> &'static str {
            "periodic"
        }
    }

    struct BusClock;
    impl Clocked<EventBus> for BusClock {
        fn tick(&mut self, _now: u64, bus: &mut EventBus) {
            bus.clock += 1;
        }
        fn next_event(&self, _now: u64, _bus: &EventBus) -> Option<u64> {
            Some(u64::MAX) // purely reactive: never a reason to wake up
        }
        fn skip(&mut self, from: u64, to: u64, bus: &mut EventBus) {
            bus.clock += to - from;
        }
        fn name(&self) -> &'static str {
            "bus clock"
        }
    }

    fn run_periodic(skip: bool, period: u64, want_events: u64) -> (u64, EventBus, u64, u64) {
        let mut bus = EventBus::default();
        let mut cl = CycleLoop::new()
            .with_skip(skip)
            .stage(Periodic { period })
            .stage(BusClock);
        let end = cl.run(
            &mut bus,
            0,
            |b| b.events >= want_events,
            |b| b.events,
            |_, idle| format!("stalled for {idle}"),
        );
        (end, bus, cl.jumps(), cl.skipped_cycles())
    }

    #[test]
    fn fast_forward_is_bitwise_identical_to_naive_ticking() {
        // Period 97 is coprime with the 64-cycle check interval, so jumps
        // exercise both the event bound and the check-boundary cap.
        let (naive_end, naive_bus, naive_jumps, _) = run_periodic(false, 97, 5);
        let (skip_end, skip_bus, skip_jumps, skipped) = run_periodic(true, 97, 5);
        assert_eq!(naive_end, skip_end);
        assert_eq!(naive_bus, skip_bus);
        assert_eq!(naive_jumps, 0);
        assert!(skip_jumps > 0, "fast-forward must actually engage");
        assert!(skipped > 0);
        // The skipping loop only ever ticks the five event cycles; the
        // rest of the run is crossed by jumps.
        assert_eq!(skipped, skip_end - 5);
    }

    #[test]
    fn horizon_jumps_are_capped_at_check_boundaries() {
        // The only event sits far beyond the completion point, so a naive
        // jump straight to it would overshoot `done`. Capping every jump
        // at the next check boundary samples completion at exactly the
        // same absolute cycles as the naive loop.
        struct DoneAtClock(u64);
        let run = |skip: bool| {
            let mut bus = EventBus::default();
            let target = DoneAtClock(640);
            let mut cl = CycleLoop::new()
                .with_skip(skip)
                .stage(Periodic { period: 10_000 })
                .stage(BusClock);
            let end = cl.run(
                &mut bus,
                0,
                move |b| b.clock >= target.0,
                |b| b.clock,
                |_, idle| format!("stalled for {idle}"),
            );
            (end, bus, cl.jumps())
        };
        let (naive_end, naive_bus, _) = run(false);
        let (skip_end, skip_bus, jumps) = run(true);
        assert_eq!(naive_end, 640);
        assert_eq!(skip_end, 640);
        assert_eq!(naive_bus, skip_bus);
        // 640 cycles crossed in 64-cycle boundary-capped jumps.
        assert_eq!(jumps, 10);
    }

    #[test]
    fn horizon_jump_does_not_trip_the_idle_budget() {
        // The first event lands far past the idle budget. The naive loop
        // must declare a stall; the fast-forward loop knows an event is
        // scheduled and crosses the gap without charging the budget.
        let run = |skip: bool| {
            let mut bus = EventBus::default();
            let mut cl = CycleLoop::new()
                .with_skip(skip)
                .with_watchdog(Watchdog {
                    check_interval: 4,
                    idle_budget: 100,
                })
                .stage(Periodic { period: 1000 })
                .stage(BusClock);
            cl.run(
                &mut bus,
                0,
                |b| b.events >= 1,
                |b| b.events,
                |_, idle| format!("stalled for {idle}"),
            )
        };
        assert_eq!(run(true), 1004);
        let naive = std::panic::catch_unwind(|| run(false));
        assert!(naive.is_err(), "naive loop must trip the watchdog");
    }

    #[test]
    fn event_loop_backstop_trips_and_reports_horizon() {
        // A stage that always promises an event just over the boundary but
        // never makes progress: every window is crossed by jumps, so the
        // normal idle budget never charges — the leashed backstop must
        // trip instead, and the diagnostic must carry the jump telemetry.
        struct Mirage;
        impl Clocked<EventBus> for Mirage {
            fn tick(&mut self, _now: u64, bus: &mut EventBus) {
                bus.idle_ticks += 1;
            }
            fn next_event(&self, now: u64, _bus: &EventBus) -> Option<u64> {
                Some(now + 1_000_000)
            }
            fn skip(&mut self, from: u64, to: u64, bus: &mut EventBus) {
                bus.idle_ticks += to - from;
            }
            fn name(&self) -> &'static str {
                "mirage"
            }
        }
        let trip = std::panic::catch_unwind(|| {
            let mut bus = EventBus::default();
            let mut cl = CycleLoop::new()
                .with_skip(true)
                .with_watchdog(Watchdog {
                    check_interval: 16,
                    idle_budget: 16,
                })
                .stage(Mirage);
            cl.run(
                &mut bus,
                0,
                |_| false,
                |_| 0,
                |_, idle| format!("stalled for {idle}"),
            )
        });
        let msg = *trip
            .expect_err("backstop must trip")
            .downcast::<String>()
            .expect("panic carries the diagnostic string");
        // idle_budget × EVENT_LOOP_LEASH = 16 × 64 flat cycles.
        assert!(msg.contains("stalled for 1024"), "got: {msg}");
        assert!(msg.contains("last horizon decision"), "got: {msg}");
        assert!(msg.contains("check boundary"), "got: {msg}");
    }
}
