//! The clocked-stage abstraction and the cycle loop that drives it.

/// One pipeline stage of a cycle-level simulator.
///
/// A stage is ticked exactly once per simulated cycle, in the order it was
/// registered with the [`CycleLoop`]. `B` is the shared bus — typically the
/// whole system struct — through which stages exchange state. `now` is the
/// cycle number being simulated (the value *before* the loop advances its
/// clock for this cycle).
pub trait Clocked<B: ?Sized> {
    /// Advances this stage by one cycle.
    fn tick(&mut self, now: u64, bus: &mut B);

    /// Short name used in progress and diagnostic output.
    fn name(&self) -> &'static str {
        "stage"
    }
}

/// A boxed closure also works as a stage, which keeps simple systems from
/// having to define one unit struct per pipeline step.
impl<B: ?Sized, F: FnMut(u64, &mut B)> Clocked<B> for F {
    fn tick(&mut self, now: u64, bus: &mut B) {
        self(now, bus)
    }
}

/// Deadlock watchdog configuration for a [`CycleLoop`].
///
/// Completion and progress are only sampled every `check_interval` cycles
/// (sampling them is allowed to be expensive). If the progress measure
/// stays flat for `idle_budget` consecutive cycles while the run is not
/// complete, the loop panics with the diagnostic text supplied by the
/// caller — a stall is always a bug in either the model or the program
/// being simulated, never a condition to limp through.
#[derive(Clone, Copy, Debug)]
pub struct Watchdog {
    /// Cycles between completion/progress samples.
    pub check_interval: u64,
    /// Consecutive no-progress cycles tolerated before panicking.
    pub idle_budget: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            check_interval: 64,
            idle_budget: 2_000_000,
        }
    }
}

/// Drives a set of [`Clocked`] stages until a completion predicate holds.
///
/// The loop owns the three pieces of bookkeeping every hand-rolled cycle
/// loop otherwise reimplements: stage ordering, the periodic completion
/// check, and the stalled-simulation watchdog. Stages run in registration
/// order within a cycle; the bus's notion of "current cycle" is whatever
/// the caller passes as `start` plus the number of completed cycles.
pub struct CycleLoop<B: ?Sized> {
    stages: Vec<Box<dyn Clocked<B>>>,
    watchdog: Watchdog,
}

impl<B: ?Sized> Default for CycleLoop<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: ?Sized> CycleLoop<B> {
    /// Creates an empty loop with the default [`Watchdog`].
    pub fn new() -> Self {
        CycleLoop {
            stages: Vec::new(),
            watchdog: Watchdog::default(),
        }
    }

    /// Overrides the watchdog configuration.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        assert!(watchdog.check_interval > 0, "check_interval must be > 0");
        self.watchdog = watchdog;
        self
    }

    /// Registers a stage; stages tick in registration order each cycle.
    pub fn stage(mut self, stage: impl Clocked<B> + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Names of the registered stages, in tick order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs the loop starting at cycle `start` and returns the first cycle
    /// at which `done` held (the bus clock should then equal that value).
    ///
    /// * `done` — sampled once at entry (an already-complete bus returns
    ///   `start` without ticking any stage) and then every `check_interval`
    ///   cycles; once it returns true the loop exits.
    /// * `progress` — a monotonic measure of useful work (e.g. total MAC
    ///   operations). Sampled on the same schedule as `done`; if it is
    ///   unchanged for longer than `idle_budget` cycles the loop panics.
    /// * `diagnose` — builds the panic message for a stalled run; it should
    ///   dump enough component state to localise the deadlock.
    ///
    /// # Panics
    ///
    /// Panics with the `diagnose` text when the watchdog trips.
    pub fn run(
        &mut self,
        bus: &mut B,
        start: u64,
        mut done: impl FnMut(&B) -> bool,
        mut progress: impl FnMut(&B) -> u64,
        diagnose: impl FnOnce(&B, u64) -> String,
    ) -> u64 {
        if done(bus) {
            return start;
        }
        let mut now = start;
        let mut last_progress = progress(bus);
        // Checks land on absolute multiples of the interval, so the first
        // window after an unaligned `start` is shorter than the rest;
        // idleness is charged by elapsed cycles, not per check, so that
        // short window cannot eat a full interval of the budget.
        let mut last_check = start;
        let mut idle_cycles: u64 = 0;
        loop {
            for stage in &mut self.stages {
                stage.tick(now, bus);
            }
            now += 1;
            if now.is_multiple_of(self.watchdog.check_interval) {
                if done(bus) {
                    return now;
                }
                let p = progress(bus);
                if p != last_progress {
                    last_progress = p;
                    idle_cycles = 0;
                } else {
                    idle_cycles += now - last_check;
                    assert!(
                        idle_cycles < self.watchdog.idle_budget,
                        "{}",
                        diagnose(bus, idle_cycles)
                    );
                }
                last_check = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy bus: a countdown that stage A decrements and stage B observes.
    struct Countdown {
        remaining: u64,
        observed: u64,
        work: u64,
    }

    struct Decrement;
    impl Clocked<Countdown> for Decrement {
        fn tick(&mut self, _now: u64, bus: &mut Countdown) {
            if bus.remaining > 0 {
                bus.remaining -= 1;
                bus.work += 1;
            }
        }
        fn name(&self) -> &'static str {
            "decrement"
        }
    }

    #[test]
    fn runs_stages_in_order_until_done() {
        let mut bus = Countdown {
            remaining: 100,
            observed: 0,
            work: 0,
        };
        let mut cl = CycleLoop::new()
            .stage(Decrement)
            .stage(|_now: u64, bus: &mut Countdown| bus.observed = bus.remaining);
        let end = cl.run(
            &mut bus,
            0,
            |b| b.remaining == 0,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        // Completion is only sampled at multiples of the check interval.
        assert_eq!(end, 128);
        assert_eq!(bus.remaining, 0);
        assert_eq!(bus.observed, 0);
        assert_eq!(bus.work, 100);
    }

    #[test]
    fn resumes_from_nonzero_start() {
        let mut bus = Countdown {
            remaining: 10,
            observed: 0,
            work: 0,
        };
        let mut cl = CycleLoop::new().stage(Decrement);
        let end = cl.run(
            &mut bus,
            1000,
            |b| b.remaining == 0,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert_eq!(end, 1024);
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn watchdog_trips_on_flat_progress() {
        let mut bus = Countdown {
            remaining: 0,
            observed: 0,
            work: 0,
        };
        let mut cl = CycleLoop::new()
            .with_watchdog(Watchdog {
                check_interval: 4,
                idle_budget: 1024,
            })
            .stage(Decrement);
        cl.run(
            &mut bus,
            0,
            |_| false,
            |b| b.work,
            |_, idle| format!("no progress for {idle} cycles"),
        );
    }

    #[test]
    fn done_at_entry_returns_start_without_ticking() {
        let mut bus = Countdown {
            remaining: 0,
            observed: 7,
            work: 0,
        };
        let mut cl = CycleLoop::new()
            .stage(Decrement)
            .stage(|_now: u64, bus: &mut Countdown| bus.observed = bus.remaining);
        let end = cl.run(
            &mut bus,
            1000,
            |b| b.remaining == 0,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert_eq!(end, 1000);
        // No stage ran on the already-complete bus.
        assert_eq!(bus.observed, 7);
        assert_eq!(bus.work, 0);
    }

    #[test]
    fn unaligned_start_does_not_overcharge_idle() {
        // Starting at 1000 with a 64-cycle interval, the first check lands
        // at 1024 — a 24-cycle window. The bus makes its first progress only
        // at cycle 1024, so that window is genuinely idle; with a 64-cycle
        // budget, charging the window a full interval (the old off-by-one)
        // would trip the watchdog even though only 24 idle cycles elapsed.
        struct LateStart {
            work: u64,
        }
        let mut bus = LateStart { work: 0 };
        let mut cl = CycleLoop::new().with_watchdog(Watchdog {
            check_interval: 64,
            idle_budget: 64,
        });
        cl = cl.stage(|now: u64, bus: &mut LateStart| {
            if now >= 1024 {
                bus.work += 1;
            }
        });
        let end = cl.run(
            &mut bus,
            1000,
            |b| b.work >= 1,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert_eq!(end, 1088);
    }

    #[test]
    #[should_panic(expected = "stalled for 88")]
    fn unaligned_start_still_charges_true_idle_time() {
        // Same unaligned geometry, but the bus never progresses: the short
        // first window (24 cycles) plus one full interval (64) exceeds the
        // 64-cycle budget at the second check — and the diagnostic reports
        // the true 88 elapsed idle cycles, not a multiple of the interval.
        struct Stuck;
        let mut bus = Stuck;
        let mut cl = CycleLoop::new().with_watchdog(Watchdog {
            check_interval: 64,
            idle_budget: 64,
        });
        cl = cl.stage(|_now: u64, _bus: &mut Stuck| {});
        cl.run(
            &mut bus,
            1000,
            |_| false,
            |_| 0,
            |_, idle| format!("stalled for {idle}"),
        );
    }

    #[test]
    fn watchdog_tolerates_slow_but_steady_progress() {
        // One unit of work every 96 cycles: flat across single checks but
        // never flat for long enough to exhaust the budget.
        struct Slow {
            work: u64,
        }
        let mut bus = Slow { work: 0 };
        let mut cl = CycleLoop::new().with_watchdog(Watchdog {
            check_interval: 16,
            idle_budget: 128,
        });
        cl = cl.stage(|now: u64, bus: &mut Slow| {
            if (now + 1).is_multiple_of(96) {
                bus.work += 1;
            }
        });
        let end = cl.run(
            &mut bus,
            0,
            |b| b.work >= 20,
            |b| b.work,
            |_, idle| format!("stalled for {idle}"),
        );
        assert!(end >= 20 * 96);
    }
}
