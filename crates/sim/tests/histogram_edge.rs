//! Edge-case suite for `sim::Histogram`: empty-histogram percentiles,
//! single-bucket nearest-rank behavior, merge-order independence at
//! million-sample scale, and monotonic `diff` semantics after merges.

use neurocube_sim::Histogram;

#[test]
fn empty_histograms_answer_none_everywhere() {
    let h = Histogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.mean(), None);
    for q in [0.0, 0.5, 0.99, 1.0, -3.0, f64::INFINITY, f64::NAN] {
        assert_eq!(h.percentile(q), None, "empty histogram at q={q}");
    }
    assert_eq!(h.buckets().count(), 0);
}

#[test]
fn single_bucket_nearest_rank_is_that_value_at_every_quantile() {
    let mut h = Histogram::new();
    h.record_n(42, 1);
    for q in [0.0, 1e-12, 0.25, 0.5, 0.999, 1.0] {
        assert_eq!(h.percentile(q), Some(42), "single sample at q={q}");
    }
    // NaN and out-of-range quantiles clamp, never panic.
    assert_eq!(h.percentile(f64::NAN), Some(42));
    assert_eq!(h.percentile(-1.0), Some(42));
    assert_eq!(h.percentile(2.0), Some(42));
    assert_eq!(
        (h.min(), h.max(), h.mean()),
        (Some(42), Some(42), Some(42.0))
    );

    // Still one bucket after a million more samples of the same value:
    // nearest-rank stays exact, mean stays exact.
    h.record_n(42, 1_000_000 - 1);
    assert_eq!(h.count(), 1_000_000);
    assert_eq!(h.buckets().count(), 1);
    assert_eq!(h.percentile(0.5), Some(42));
    assert_eq!(h.mean(), Some(42.0));
}

/// Shards a deterministic million-sample distribution, merges the
/// shards in several orders, and requires bitwise-equal summaries: the
/// bucket-wise representation makes merge exact and commutative.
#[test]
fn merge_is_order_independent_at_million_sample_scale() {
    // 64 shards × values spread over a wide range, counts chosen so
    // the total lands exactly on 10^6 samples.
    let shards: Vec<Histogram> = (0..64u64)
        .map(|s| {
            let mut h = Histogram::new();
            for i in 0..25u64 {
                // A deterministic pseudo-random value per (shard, i).
                let v = (s * 25 + i) * 7919 % 100_000;
                h.record_n(v, 625);
            }
            h
        })
        .collect();
    assert_eq!(shards.iter().map(Histogram::count).sum::<u64>(), 1_000_000);

    let merge_in = |order: &mut dyn Iterator<Item = usize>| {
        let mut total = Histogram::new();
        for i in order {
            total.merge(&shards[i]);
        }
        total
    };
    let forward = merge_in(&mut (0..64));
    let backward = merge_in(&mut (0..64).rev());
    let interleaved = merge_in(&mut (0..64).step_by(2).chain((0..64).skip(1).step_by(2)));

    for other in [&backward, &interleaved] {
        assert_eq!(forward.count(), other.count());
        assert_eq!(forward.min(), other.min());
        assert_eq!(forward.max(), other.max());
        // Mean accumulates in ascending value order, so even the float
        // is bitwise reproducible across merge orders.
        assert_eq!(forward.mean(), other.mean());
        for q in [0.001, 0.25, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(forward.percentile(q), other.percentile(q));
        }
        assert_eq!(forward.summary(), other.summary());
        assert!(forward.buckets().eq(other.buckets()));
    }
    assert_eq!(forward.count(), 1_000_000);
}

#[test]
fn diff_after_merge_is_exactly_the_merged_increment() {
    let mut earlier = Histogram::new();
    earlier.record_n(10, 5);
    earlier.record_n(20, 3);

    let mut later = earlier.clone();
    let mut increment = Histogram::new();
    increment.record_n(10, 2);
    increment.record_n(30, 7);
    later.merge(&increment);

    // Histograms are running multisets (totals, not deltas): the diff
    // against the earlier snapshot recovers the increment exactly.
    let d = later.diff(&earlier, "t");
    assert_eq!(d.count(), increment.count());
    assert!(d.buckets().eq(increment.buckets()));
    // Diffing against itself is empty, and the identity merge diffs
    // empty too.
    assert!(later.diff(&later, "t").is_empty());
    let mut unchanged = later.clone();
    unchanged.merge(&Histogram::new());
    assert!(unchanged.diff(&later, "t").is_empty());
}

#[test]
#[should_panic(expected = "decreased")]
fn diff_panics_when_a_bucket_shrinks() {
    let mut earlier = Histogram::new();
    earlier.record_n(10, 5);
    let mut later = Histogram::new();
    later.record_n(10, 4);
    let _ = later.diff(&earlier, "t");
}
