//! Per-vault operand streams and write-back cursors — the PNG's three
//! nested counters (Fig. 8(b)/(d)) with the vault-ownership filter.
//!
//! All 16 PNGs conceptually run the *same* global schedule — for every
//! lockstep step `(group, connection)` and every PE — but each emits only
//! the operands its own vault stores. Exactly one vault emits each operand
//! (a PE's own copy is preferred when duplication provides one), so the
//! union of the 16 streams is precisely the layer's operand set, in an
//! order that keeps every PE's operation counter advancing.

use crate::program::LayerProgram;
use neurocube_nn::connections;
use neurocube_noc::{NodeId, PacketKind};
use std::collections::VecDeque;
use std::sync::Arc;

/// One operand the vault must fetch from DRAM and packetize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperandEvent {
    /// DRAM byte address of the 16-bit operand in this vault.
    pub addr: u64,
    /// Destination PE.
    pub dst: NodeId,
    /// Target MAC.
    pub mac_id: u8,
    /// Operation sequence number (mod 256).
    pub op_id: u8,
    /// The full (unwrapped) cumulative operation index at the destination
    /// PE — used for credit-based run-ahead flow control so a vault can
    /// never overflow a PE's cache sub-banks (see [`Png`](crate::Png)).
    pub global_op: u64,
    /// State / shared-state / weight.
    pub kind: PacketKind,
}

/// Lazily generated operand stream of one vault for one layer.
#[derive(Clone, Debug)]
pub struct OperandStream {
    prog: Arc<LayerProgram>,
    vault: NodeId,
    /// PEs this vault can possibly serve (ownership pre-filter).
    serves: Vec<NodeId>,
    g: u64,
    k: u32,
    pi: usize,
    max_groups: u64,
    conns: u32,
    buf: VecDeque<OperandEvent>,
    emitted: u64,
}

impl OperandStream {
    /// Builds the stream for `vault`.
    pub fn new(prog: Arc<LayerProgram>, vault: NodeId) -> OperandStream {
        let vaults = prog.mapping.vaults() as u8;
        let serves: Vec<NodeId> = (0..vaults)
            .filter(|&p| may_serve(&prog, vault, p))
            .collect();
        // A vault that serves nobody (e.g. an idle corner of a tiny FC
        // layer) has an empty stream.
        let max_groups = if serves.is_empty() {
            0
        } else {
            prog.max_groups()
        };
        OperandStream {
            max_groups,
            conns: prog.conns(),
            prog,
            vault,
            serves,
            g: 0,
            k: 0,
            pi: 0,
            buf: VecDeque::new(),
            emitted: 0,
        }
    }

    /// Operands emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// `true` once the stream is exhausted (after `next` returned `None`).
    pub fn is_exhausted(&self) -> bool {
        self.g >= self.max_groups && self.buf.is_empty()
    }

    fn fill_for(&mut self, p: NodeId) {
        let prog = &self.prog;
        let n_mac = u64::from(prog.mapping.n_mac);
        let per_map = prog.out_vol.assigned_per_map(p);
        if per_map == 0 {
            return;
        }
        let gpm = per_map.div_ceil(n_mac);
        let groups_p = gpm * prog.maps_of();
        if self.g >= groups_p {
            return;
        }
        let map = self.g / gpm;
        let gin = self.g % gpm;
        let active = if gin + 1 == gpm {
            (per_map - (gpm - 1) * n_mac) as u32
        } else {
            n_mac as u32
        };
        // Cumulative operation counter mod 256 (§V-B). Counting across
        // neuron groups (not per group) is what keeps packets for the same
        // connection index of *different* groups distinguishable in the
        // PE's cache sub-banks.
        let global_op = self.g * u64::from(self.conns) + u64::from(self.k);
        let op_id = (global_op % 256) as u8;

        if prog.is_fc() {
            // Weights stream from the PE's own vault, transposed.
            if p == self.vault {
                let bases = prog
                    .weight_base
                    .as_ref()
                    .expect("FC layers have streamed weights");
                for m in 0..active {
                    // Group-blocked transposed layout (full groups are
                    // n_mac wide, the trailing partial group is `active`
                    // wide): one group's weight stream is a single
                    // sequential DRAM run.
                    let addr = bases[usize::from(p)]
                        + 2 * (gin * u64::from(self.conns) * n_mac
                            + u64::from(self.k) * u64::from(active)
                            + u64::from(m));
                    self.buf.push_back(OperandEvent {
                        addr,
                        dst: p,
                        mac_id: m as u8,
                        op_id,
                        global_op,
                        kind: PacketKind::Weight,
                    });
                }
            }
            // One shared state x_k per (group, k), from the PE's own copy if
            // duplication provides one, else from the owner vault.
            let idx = self.k as usize;
            let src = if prog.in_vol.local_addr(p, idx).is_some() {
                p
            } else {
                prog.in_vol.owner(idx)
            };
            if src == self.vault {
                let addr = prog
                    .in_vol
                    .local_addr(self.vault, idx)
                    .expect("source vault stores the operand");
                self.buf.push_back(OperandEvent {
                    addr,
                    dst: p,
                    mac_id: 0,
                    op_id,
                    global_op,
                    kind: PacketKind::SharedState,
                });
            }
        } else {
            // Conv/pool: one state per MAC; weights are in PE weight memory.
            for m in 0..active {
                let assigned = map * per_map + gin * n_mac + u64::from(m);
                let neuron = prog.out_vol.assigned_neuron(p, assigned);
                let conn =
                    connections::resolve(&prog.layer, prog.in_shape, neuron, self.k as usize);
                let src = if prog.in_vol.local_addr(p, conn.input_index).is_some() {
                    p
                } else {
                    prog.in_vol.owner(conn.input_index)
                };
                if src == self.vault {
                    let addr = prog
                        .in_vol
                        .local_addr(self.vault, conn.input_index)
                        .expect("source vault stores the operand");
                    self.buf.push_back(OperandEvent {
                        addr,
                        dst: p,
                        mac_id: m as u8,
                        op_id,
                        global_op,
                        kind: PacketKind::State,
                    });
                }
            }
        }
    }

    /// The next operand this vault must fetch, or `None` when the layer's
    /// stream is exhausted. (Deliberately inherent rather than an
    /// `Iterator` impl: callers treat this as an FSM step with state they
    /// also query between steps.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<OperandEvent> {
        loop {
            if let Some(e) = self.buf.pop_front() {
                self.emitted += 1;
                return Some(e);
            }
            if self.g >= self.max_groups {
                return None;
            }
            let p = self.serves[self.pi];
            self.fill_for(p);
            // Advance (p, k, g) — PE innermost so one (g, k) step feeds
            // every PE before the connection counter advances.
            self.pi += 1;
            if self.pi == self.serves.len() {
                self.pi = 0;
                self.k += 1;
                if self.k == self.conns {
                    self.k = 0;
                    self.g += 1;
                }
            }
        }
    }
}

/// Can `vault` ever supply an operand to PE `p` in this layer?
fn may_serve(prog: &LayerProgram, vault: NodeId, p: NodeId) -> bool {
    if prog.out_vol.assigned_per_map(p) == 0 {
        return false;
    }
    if vault == p {
        return true;
    }
    if prog.is_fc() {
        // Weights always come from p itself; shared states come from their
        // owner unless p holds a duplicate copy of the whole input.
        return match &prog.in_vol.kind {
            crate::layout::VolumeKind::Flat { duplicated, .. } => !*duplicated,
            crate::layout::VolumeKind::Spatial { owned, stored } => {
                // Spatial input consumed by FC: p serves itself if it stores
                // everything; otherwise owners serve.
                stored[usize::from(p)].area() < prog.in_shape.height * prog.in_shape.width
                    && !owned[usize::from(vault)].is_empty()
            }
        };
    }
    // Conv/pool: vault serves p iff p lacks a stored copy of some input it
    // needs, i.e. p's needed input rectangle overlaps vault's owned tile
    // beyond p's stored rectangle.
    match (&prog.in_vol.kind, &prog.out_vol.kind) {
        (
            crate::layout::VolumeKind::Spatial { owned, stored },
            crate::layout::VolumeKind::Spatial {
                owned: out_owned, ..
            },
        ) => {
            let (k, s) = crate::layout::kernel_geometry(&prog.layer)
                .expect("spatial layer has kernel geometry");
            let need =
                crate::layout::input_rect_for(out_owned[usize::from(p)], k, s, prog.in_shape);
            let have = stored[usize::from(p)];
            let own = owned[usize::from(vault)];
            // Overlap of (need \ have) with own — conservative: overlap of
            // need with own, minus the case where own ⊆ have.
            rects_overlap(need, own)
                && !(own.y0 >= have.y0
                    && own.y1 <= have.y1
                    && own.x0 >= have.x0
                    && own.x1 <= have.x1)
        }
        _ => true,
    }
}

fn rects_overlap(a: crate::layout::Rect, b: crate::layout::Rect) -> bool {
    a.y0 < b.y1 && b.y0 < a.y1 && a.x0 < b.x1 && b.x0 < a.x1
}

/// Replays the write-back sequence of PE `src` filtered to the neurons that
/// vault `store` keeps a copy of, yielding each one's local DRAM address —
/// how a PNG maps an incoming `Result` packet to a write address without
/// the packet carrying one.
#[derive(Clone, Debug)]
pub struct WritebackCursor {
    prog: Arc<LayerProgram>,
    src: NodeId,
    store: NodeId,
    idx: u64,
    total: u64,
}

impl WritebackCursor {
    /// Builds the cursor for results of PE `src` landing in vault `store`.
    pub fn new(prog: Arc<LayerProgram>, src: NodeId, store: NodeId) -> WritebackCursor {
        WritebackCursor {
            total: prog.out_vol.assigned_count(src),
            prog,
            src,
            store,
            idx: 0,
        }
    }

    /// The next expected `(neuron, local write address)` pair, or `None`
    /// when `src` has no further results destined for `store`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(usize, u64)> {
        while self.idx < self.total {
            let neuron = self.prog.out_vol.assigned_neuron(self.src, self.idx);
            self.idx += 1;
            if let Some(addr) = self.prog.out_vol.local_addr(self.store, neuron) {
                return Some((neuron, addr));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NetworkLayout;
    use crate::program::{compile_layer, Mapping};
    use neurocube_dram::MemoryConfig;
    use neurocube_fixed::Activation;
    use neurocube_nn::{LayerSpec, NetworkSpec, Shape};

    fn compile(net: &NetworkSpec, duplicate: bool, index: usize) -> Arc<LayerProgram> {
        let map = MemoryConfig::hmc_int().address_map();
        let layout = NetworkLayout::build(net, 4, 4, duplicate, 16, &map);
        compile_layer(net, &layout, index, Mapping::paper(duplicate))
    }

    /// Drains all 16 vault streams and checks each PE receives exactly the
    /// operand count its configuration demands.
    fn check_conservation(prog: &Arc<LayerProgram>) -> Vec<Vec<OperandEvent>> {
        let mut all: Vec<Vec<OperandEvent>> = Vec::new();
        for v in 0..16u8 {
            let mut s = OperandStream::new(Arc::clone(prog), v);
            let mut evs = Vec::new();
            while let Some(e) = s.next() {
                evs.push(e);
            }
            assert!(s.is_exhausted());
            assert_eq!(s.emitted(), evs.len() as u64);
            all.push(evs);
        }
        let mut per_pe = [0u64; 16];
        for e in all.iter().flatten() {
            per_pe[usize::from(e.dst)] += 1;
        }
        for p in 0..16u8 {
            let expected = match prog.pe_config(p) {
                None => 0,
                Some(cfg) => {
                    if prog.is_fc() {
                        // 16 weights + 1 shared state per (group, k) step.
                        let mut total = 0u64;
                        for g in 0..prog.groups_of(p) {
                            total += (u64::from(cfg.active_macs(g)) + 1)
                                * u64::from(cfg.conns_per_neuron);
                        }
                        total
                    } else {
                        cfg.total_macs()
                    }
                }
            };
            assert_eq!(
                per_pe[usize::from(p)],
                expected,
                "PE {p} operand count mismatch"
            );
        }
        all
    }

    #[test]
    fn conv_dup_streams_are_purely_local() {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![LayerSpec::conv(2, 3, Activation::Tanh)],
        )
        .unwrap();
        let prog = compile(&net, true, 0);
        let all = check_conservation(&prog);
        let mut total = 0u64;
        for (v, evs) in all.iter().enumerate() {
            for e in evs {
                assert_eq!(
                    usize::from(e.dst),
                    v,
                    "dup conv must have no lateral traffic"
                );
                assert_eq!(e.kind, PacketKind::State);
            }
            total += evs.len() as u64;
        }
        // One state operand per MAC operation.
        let expected: u64 = net.macs_per_layer()[0];
        assert_eq!(total, expected);
    }

    #[test]
    fn conv_nodup_has_lateral_operands() {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![LayerSpec::conv(2, 3, Activation::Tanh)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        let all = check_conservation(&prog);
        let total: u64 = all.iter().map(|e| e.len() as u64).sum();
        assert_eq!(total, net.macs_per_layer()[0]);
        let lateral: u64 = all
            .iter()
            .enumerate()
            .map(|(v, evs)| evs.iter().filter(|e| usize::from(e.dst) != v).count() as u64)
            .sum();
        assert!(lateral > 0, "boundary pixels must cross vaults");
        // Lateral fraction for 3x3 kernels on 4x4 tiles of 16x16 is modest.
        assert!((lateral as f64) < 0.5 * total as f64);
    }

    #[test]
    fn fc_dup_stream_counts() {
        let net = NetworkSpec::new(
            Shape::flat(64),
            vec![LayerSpec::fc(32, Activation::Sigmoid)],
        )
        .unwrap();
        let prog = compile(&net, true, 0);
        let all = check_conservation(&prog);
        for (v, evs) in all.iter().enumerate() {
            for e in evs {
                assert_eq!(usize::from(e.dst), v, "dup FC must be local");
            }
        }
        let weights: u64 = all
            .iter()
            .flatten()
            .filter(|e| e.kind == PacketKind::Weight)
            .count() as u64;
        let shared: u64 = all
            .iter()
            .flatten()
            .filter(|e| e.kind == PacketKind::SharedState)
            .count() as u64;
        // 32 outputs x 64 connections = 2048 weights; 64 shared states per
        // group; 32 outputs / 16 vaults = 2 per vault = 1 group each.
        assert_eq!(weights, 2048);
        assert_eq!(shared, 16 * 64);
    }

    #[test]
    fn fc_nodup_shared_states_fan_out() {
        let net = NetworkSpec::new(
            Shape::flat(64),
            vec![LayerSpec::fc(32, Activation::Sigmoid)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        let all = check_conservation(&prog);
        let lateral: u64 = all
            .iter()
            .enumerate()
            .flat_map(|(v, evs)| evs.iter().map(move |e| (v, e)))
            .filter(|(v, e)| usize::from(e.dst) != *v)
            .count() as u64;
        // Each of the 64 inputs is broadcast to all 16 PEs; only the copy to
        // the owning vault's own PE is local: lateral = 64*16 - 64.
        assert_eq!(lateral, 16 * 64 - 64);
    }

    #[test]
    fn stream_ops_are_monotone_per_destination() {
        let net = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![LayerSpec::conv(1, 3, Activation::Identity)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        for v in 0..16u8 {
            let mut s = OperandStream::new(Arc::clone(&prog), v);
            // Per destination PE, the (group-derived) full op sequence a PE
            // sees from one vault must never regress within a group sweep:
            // op_id is monotone modulo the 0-wrap at group boundaries.
            let mut prev: Vec<i32> = vec![-1; 16];
            while let Some(e) = s.next() {
                let d = usize::from(e.dst);
                let op = i32::from(e.op_id);
                assert!(
                    op >= prev[d] || op == 0,
                    "vault {v} sent op {op} after {} to PE {d}",
                    prev[d]
                );
                prev[d] = op;
            }
        }
    }

    #[test]
    fn writeback_cursor_covers_own_neurons_in_order() {
        let net = NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![LayerSpec::conv(2, 3, Activation::Identity)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        for v in 0..16u8 {
            let mut c = WritebackCursor::new(Arc::clone(&prog), v, v);
            let mut n = 0;
            let mut prev_addr = 0u64;
            while let Some((neuron, addr)) = c.next() {
                assert_eq!(prog.out_vol.owner(neuron), v);
                if n > 0 {
                    assert!(addr > prev_addr, "own writes are ascending");
                }
                prev_addr = addr;
                n += 1;
            }
            assert_eq!(n as u64, prog.out_vol.assigned_count(v));
        }
    }

    #[test]
    fn writeback_cursor_filters_foreign_copies() {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![
                LayerSpec::conv(1, 3, Activation::Identity),
                LayerSpec::AvgPool { size: 2 },
            ],
        )
        .unwrap();
        let prog = compile(&net, true, 0);
        // Count, over all (src, store) pairs with src != store, the total
        // foreign write-backs; must match the program's expectation.
        for store in 0..16u8 {
            let mut total = 0u64;
            for src in 0..16u8 {
                if src == store {
                    continue;
                }
                let mut c = WritebackCursor::new(Arc::clone(&prog), src, store);
                while c.next().is_some() {
                    total += 1;
                }
            }
            assert_eq!(total, prog.expected_foreign_writebacks(store));
        }
    }
}
