//! Per-vault operand streams and write-back cursors — the PNG's three
//! nested counters (Fig. 8(b)/(d)) with the vault-ownership filter.
//!
//! All 16 PNGs conceptually run the *same* global schedule — for every
//! lockstep step `(group, connection)` and every PE — but each emits only
//! the operands its own vault stores. Exactly one vault emits each operand
//! (a PE's own copy is preferred when duplication provides one), so the
//! union of the 16 streams is precisely the layer's operand set, in an
//! order that keeps every PE's operation counter advancing.

use crate::program::LayerProgram;
use neurocube_nn::{connections, ConvConnectivity, LayerSpec};
use neurocube_noc::{NodeId, PacketKind};
use std::sync::Arc;

/// One operand the vault must fetch from DRAM and packetize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperandEvent {
    /// DRAM byte address of the 16-bit operand in this vault.
    pub addr: u64,
    /// Destination PE.
    pub dst: NodeId,
    /// Target MAC.
    pub mac_id: u8,
    /// Operation sequence number (mod 256).
    pub op_id: u8,
    /// The full (unwrapped) cumulative operation index at the destination
    /// PE — used for credit-based run-ahead flow control so a vault can
    /// never overflow a PE's cache sub-banks (see [`Png`](crate::Png)).
    pub global_op: u64,
    /// State / shared-state / weight.
    pub kind: PacketKind,
}

/// Per-destination counters maintained incrementally as the stream's
/// `(group, connection)` step advances — the `fill_for` division chains
/// (`g / gpm`, `g % gpm`, `rem0 / rw`, …) hoisted into O(1)-per-step
/// updates. Runtime-divisor `div`/`%` cost ~25 cycles each on the
/// simulation host and `fill_for` runs once per destination per step
/// (usually emitting nothing after the remote batch rejection), so the
/// prologue divisions dominated operand generation.
#[derive(Clone, Copy, Debug)]
struct ServeCursor {
    /// Output neurons per map assigned to this destination (layer
    /// constant, > 0 for every served PE).
    per_map: u64,
    /// Groups per map, `per_map.div_ceil(n_mac)` (layer constant).
    gpm: u64,
    /// Groups this destination participates in, `gpm * maps` (layer
    /// constant); the cursor is stale and unused once `g` passes it.
    groups_p: u64,
    /// `g / gpm` — the current output map.
    map: u64,
    /// `g % gpm` — the group index within the map.
    gin: u64,
    /// `map % in_channels` (the `SingleMap` input channel); maintained
    /// for every stream, read only under that connectivity.
    icm: u64,
    /// Index (within the map) of the group's last neuron,
    /// `gin * n_mac + active - 1` (spatial streams only).
    last_idx: u64,
    /// The destination's owned output rectangle (spatial streams only):
    /// `y0`, `x0`, `x1`.
    ry0: usize,
    rx0: usize,
    rx1: usize,
    /// Coordinates of the group's first neuron, `rem0 = gin * n_mac`,
    /// within the owned rectangle (spatial streams only).
    oy0: usize,
    ox0: usize,
    /// Coordinates of `last_idx` (spatial streams only).
    oy_hi: usize,
    ox_hi: usize,
}

impl ServeCursor {
    /// Advances a row-major position inside the owned rectangle by `d`
    /// neurons. `d` is at most `n_mac` (16), so the carry loop beats a
    /// division even for single-column rectangles.
    fn advance(&self, oy: &mut usize, ox: &mut usize, d: u64) {
        let rw = self.rx1 - self.rx0;
        *ox += d as usize;
        while *ox >= self.rx1 {
            *ox -= rw;
            *oy += 1;
        }
    }
}

/// How the spatial fast path derives the input channel from the cached
/// counters (layer constant).
#[derive(Clone, Copy, Debug)]
enum SpatialIc {
    /// `Conv2d` with `SingleMap` connectivity: `map % in_channels`
    /// (the cursor's `icm`).
    Single,
    /// `Conv2d` with `AllMaps` connectivity: `k / kernel²` (the stream's
    /// cached `kch`).
    All,
    /// `AvgPool`: the output map itself.
    Pool,
}

/// Lazily generated operand stream of one vault for one layer.
#[derive(Clone, Debug)]
pub struct OperandStream {
    prog: Arc<LayerProgram>,
    vault: NodeId,
    /// PEs this vault can possibly serve (ownership pre-filter).
    serves: Vec<NodeId>,
    /// Incremental per-destination counters, parallel to `serves`.
    cursors: Vec<ServeCursor>,
    g: u64,
    k: u32,
    pi: usize,
    max_groups: u64,
    conns: u32,
    /// Layer-constant admission of the conv/pool spatial fast path
    /// (spatial in/out volumes, untruncated output shape).
    spatial_ok: bool,
    /// Kernel geometry for the spatial path (1/1 otherwise, unused).
    kernel: usize,
    stride: usize,
    ic_mode: SpatialIc,
    /// `k`-derived kernel offsets, advanced with `k`: `rk = k % kernel²`,
    /// `ky = rk / kernel`, `kx = rk % kernel`, `kch = k / kernel²`.
    rk: u32,
    ky: usize,
    kx: usize,
    kch: usize,
    /// One `(g, k)` step's events, batch-generated into a flat buffer that
    /// `next` drains by cursor; the allocation is reused for every step, so
    /// steady-state streaming never touches the allocator.
    buf: Vec<OperandEvent>,
    cursor: usize,
    emitted: u64,
}

impl OperandStream {
    /// Builds the stream for `vault`.
    pub fn new(prog: Arc<LayerProgram>, vault: NodeId) -> OperandStream {
        let vaults = prog.mapping.vaults() as u8;
        let serves: Vec<NodeId> = (0..vaults)
            .filter(|&p| may_serve(&prog, vault, p))
            .collect();
        // A vault that serves nobody (e.g. an idle corner of a tiny FC
        // layer) has an empty stream.
        let max_groups = if serves.is_empty() {
            0
        } else {
            prog.max_groups()
        };
        let (spatial_ok, kernel, stride, ic_mode) = Self::spatial_admission(&prog);
        let n_mac = u64::from(prog.mapping.n_mac);
        let maps = prog.maps_of();
        let cursors = serves
            .iter()
            .map(|&p| {
                use crate::layout::VolumeKind;
                let per_map = prog.out_vol.assigned_per_map(p);
                let gpm = per_map.div_ceil(n_mac);
                let (ry0, rx0, rx1) = match &prog.out_vol.kind {
                    VolumeKind::Spatial { owned, .. } if spatial_ok => {
                        let r = owned[usize::from(p)];
                        (r.y0, r.x0, r.x1)
                    }
                    _ => (0, 0, 1),
                };
                let mut cur = ServeCursor {
                    per_map,
                    gpm,
                    groups_p: gpm * maps,
                    map: 0,
                    gin: 0,
                    icm: 0,
                    last_idx: n_mac.min(per_map) - 1,
                    ry0,
                    rx0,
                    rx1,
                    oy0: ry0,
                    ox0: rx0,
                    oy_hi: ry0,
                    ox_hi: rx0,
                };
                if spatial_ok {
                    let (mut oy, mut ox) = (ry0, rx0);
                    cur.advance(&mut oy, &mut ox, cur.last_idx);
                    cur.oy_hi = oy;
                    cur.ox_hi = ox;
                }
                cur
            })
            .collect();
        OperandStream {
            max_groups,
            conns: prog.conns(),
            prog,
            vault,
            serves,
            cursors,
            g: 0,
            k: 0,
            pi: 0,
            spatial_ok,
            kernel,
            stride,
            ic_mode,
            rk: 0,
            ky: 0,
            kx: 0,
            kch: 0,
            buf: Vec::new(),
            cursor: 0,
            emitted: 0,
        }
    }

    /// Layer-constant half of the spatial fast path's admission test (the
    /// per-call half is gone: everything it checked is invariant across
    /// the stream).
    fn spatial_admission(prog: &LayerProgram) -> (bool, usize, usize, SpatialIc) {
        use crate::layout::VolumeKind;
        let (kernel, stride, ic_mode) = match prog.layer {
            LayerSpec::Conv2d {
                kernel,
                stride,
                connectivity,
                ..
            } => {
                let mode = match connectivity {
                    ConvConnectivity::SingleMap => SpatialIc::Single,
                    ConvConnectivity::AllMaps => SpatialIc::All,
                };
                (kernel, stride, mode)
            }
            LayerSpec::AvgPool { size } => (size, size, SpatialIc::Pool),
            LayerSpec::Eltwise { .. } | LayerSpec::FullyConnected { .. } => {
                return (false, 1, 1, SpatialIc::Pool);
            }
        };
        let spatial = matches!(prog.out_vol.kind, VolumeKind::Spatial { .. })
            && matches!(prog.in_vol.kind, VolumeKind::Spatial { .. })
            && prog.out_vol.shape == prog.out_shape;
        (spatial, kernel, stride, ic_mode)
    }

    /// Operands emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// `true` once the stream is exhausted (after `next` returned `None`).
    pub fn is_exhausted(&self) -> bool {
        self.g >= self.max_groups && self.cursor >= self.buf.len()
    }

    fn fill_for(&mut self, si: usize) {
        let p = self.serves[si];
        let cur = self.cursors[si];
        if self.g >= cur.groups_p {
            return;
        }
        let prog = &self.prog;
        let n_mac = u64::from(prog.mapping.n_mac);
        let (gpm, gin, map) = (cur.gpm, cur.gin, cur.map);
        let active = if gin + 1 == gpm {
            (cur.per_map - (gpm - 1) * n_mac) as u32
        } else {
            n_mac as u32
        };
        // Cumulative operation counter mod 256 (§V-B). Counting across
        // neuron groups (not per group) is what keeps packets for the same
        // connection index of *different* groups distinguishable in the
        // PE's cache sub-banks.
        let global_op = self.g * u64::from(self.conns) + u64::from(self.k);
        let op_id = (global_op % 256) as u8;

        if prog.is_fc() {
            // Weights stream from the PE's own vault, transposed.
            if p == self.vault {
                let bases = prog
                    .weight_base
                    .as_ref()
                    .expect("FC layers have streamed weights");
                for m in 0..active {
                    // Group-blocked transposed layout (full groups are
                    // n_mac wide, the trailing partial group is `active`
                    // wide): one group's weight stream is a single
                    // sequential DRAM run.
                    let addr = bases[usize::from(p)]
                        + 2 * (gin * u64::from(self.conns) * n_mac
                            + u64::from(self.k) * u64::from(active)
                            + u64::from(m));
                    self.buf.push(OperandEvent {
                        addr,
                        dst: p,
                        mac_id: m as u8,
                        op_id,
                        global_op,
                        kind: PacketKind::Weight,
                    });
                }
            }
            // One shared state x_k per (group, k), from the PE's own copy if
            // duplication provides one, else from the owner vault.
            let idx = self.k as usize;
            let src = if prog.in_vol.local_addr(p, idx).is_some() {
                p
            } else {
                prog.in_vol.owner(idx)
            };
            if src == self.vault {
                let addr = prog
                    .in_vol
                    .local_addr(self.vault, idx)
                    .expect("source vault stores the operand");
                self.buf.push(OperandEvent {
                    addr,
                    dst: p,
                    mac_id: 0,
                    op_id,
                    global_op,
                    kind: PacketKind::SharedState,
                });
            }
        } else if !self.fill_conv_spatial(si, active, global_op, op_id) {
            // Conv/pool generic path: one state per MAC, each connection
            // resolved through the canonical `connections::resolve`. Only
            // reached for volume layouts the spatial fast path declines.
            let prog = &self.prog;
            for m in 0..active {
                let assigned = map * cur.per_map + gin * n_mac + u64::from(m);
                let neuron = prog.out_vol.assigned_neuron(p, assigned);
                let conn =
                    connections::resolve(&prog.layer, prog.in_shape, neuron, self.k as usize);
                let src = if prog.in_vol.local_addr(p, conn.input_index).is_some() {
                    p
                } else {
                    prog.in_vol.owner(conn.input_index)
                };
                if src == self.vault {
                    let addr = prog
                        .in_vol
                        .local_addr(self.vault, conn.input_index)
                        .expect("source vault stores the operand");
                    self.buf.push(OperandEvent {
                        addr,
                        dst: p,
                        mac_id: m as u8,
                        op_id,
                        global_op,
                        kind: PacketKind::State,
                    });
                }
            }
        }
    }

    /// Conv/pool fast path for spatially tiled volumes — the generic loop
    /// above with the per-MAC division chains hoisted out, and the
    /// per-call prologue (`rem0 / rw`, `k % kernel²`, …) replaced by the
    /// incrementally maintained [`ServeCursor`] / kernel-offset state.
    ///
    /// Within one `(group, k)` batch the output channel is constant
    /// (`map`), so the kernel offset `(ky, kx)` and input channel are too,
    /// and the batch walks `p`'s owned output tile row-major from
    /// `gin * n_mac`. The ownership filter collapses to rectangle tests:
    /// `p` serves itself exactly when its stored rectangle covers the
    /// input pixel, and a remote vault supplies it exactly when `p` lacks
    /// a copy and the pixel lies in the vault's owned tile (owners are
    /// unique and `stored ⊇ owned`, so "owner == vault" ⟺ the vault's
    /// owned rectangle contains the pixel). For remote pairs a whole batch
    /// is rejected in O(1) when its input row/column span misses the
    /// vault's tile — on a 4×4 grid that kills ~14 of the 16 `(vault, p)`
    /// combinations per step, which is where the bulk of the win over the
    /// per-MAC `resolve` path comes from.
    ///
    /// Returns `false` (caller falls back to the generic loop) for layouts
    /// it does not cover. Equivalence with the generic path is pinned by
    /// `spatial_fast_path_matches_resolve_oracle` below.
    fn fill_conv_spatial(&mut self, si: usize, active: u32, global_op: u64, op_id: u8) -> bool {
        use crate::layout::VolumeKind;
        if !self.spatial_ok {
            return false;
        }
        let cur = self.cursors[si];
        let p = self.serves[si];
        let prog = &self.prog;
        let ic = match self.ic_mode {
            SpatialIc::Single => cur.icm as usize,
            SpatialIc::All => self.kch,
            SpatialIc::Pool => cur.map as usize,
        };
        let (ky, kx, stride) = (self.ky, self.kx, self.stride);
        let VolumeKind::Spatial {
            owned: in_owned,
            stored: in_stored,
        } = &prog.in_vol.kind
        else {
            // `spatial_ok` admitted only spatial input volumes.
            return false;
        };
        let v = usize::from(self.vault);
        let (sv, ov, sp) = (in_stored[v], in_owned[v], in_stored[usize::from(p)]);
        let local = p == self.vault;
        let active = active as usize;
        let (mut oy, mut ox) = (cur.oy0, cur.ox0);
        if !local {
            // O(1) batch rejection: the input rows/columns this batch can
            // touch versus the vault's owned tile.
            let iy_lo = oy * stride + ky;
            let iy_hi = cur.oy_hi * stride + ky;
            let ix_lo = cur.rx0 * stride + kx;
            let ix_hi = (cur.rx1 - 1) * stride + kx;
            if iy_hi < ov.y0 || iy_lo >= ov.y1 || ix_hi < ov.x0 || ix_lo >= ov.x1 {
                return true;
            }
        }
        let (svh, svw) = (sv.height(), sv.width());
        let base = prog.in_vol.base[v] + 2 * (ic * svh * svw) as u64;
        for m in 0..active {
            let (iy, ix) = (oy * stride + ky, ox * stride + kx);
            let emit = if local {
                sv.contains(iy, ix)
            } else {
                ov.contains(iy, ix) && !sp.contains(iy, ix)
            };
            if emit {
                // `local_addr` of the vault's stored rectangle, with the
                // channel term folded into `base`.
                let addr = base + 2 * ((iy - sv.y0) * svw + (ix - sv.x0)) as u64;
                self.buf.push(OperandEvent {
                    addr,
                    dst: p,
                    mac_id: m as u8,
                    op_id,
                    global_op,
                    kind: PacketKind::State,
                });
            }
            ox += 1;
            if ox == cur.rx1 {
                ox = cur.rx0;
                oy += 1;
            }
        }
        true
    }

    /// Steps every destination's [`ServeCursor`] to the group `self.g`
    /// just advanced to — the incremental mirror of `map = g / gpm`,
    /// `gin = g % gpm` and the spatial coordinates derived from them.
    fn advance_cursors(&mut self) {
        let g = self.g;
        let spatial_ok = self.spatial_ok;
        let n_mac = u64::from(self.prog.mapping.n_mac);
        let in_channels = self.prog.in_shape.channels as u64;
        for cur in &mut self.cursors {
            if g >= cur.groups_p {
                // Destination exhausted; `fill_for` no longer reads it.
                continue;
            }
            cur.gin += 1;
            if cur.gin == cur.gpm {
                cur.gin = 0;
                cur.map += 1;
                cur.icm += 1;
                if cur.icm == in_channels {
                    cur.icm = 0;
                }
                cur.last_idx = n_mac.min(cur.per_map) - 1;
                if spatial_ok {
                    cur.oy0 = cur.ry0;
                    cur.ox0 = cur.rx0;
                    let (mut oy, mut ox) = (cur.ry0, cur.rx0);
                    cur.advance(&mut oy, &mut ox, cur.last_idx);
                    cur.oy_hi = oy;
                    cur.ox_hi = ox;
                }
            } else {
                let new_last = (cur.gin * n_mac + n_mac).min(cur.per_map) - 1;
                if spatial_ok {
                    let (mut oy, mut ox) = (cur.oy0, cur.ox0);
                    cur.advance(&mut oy, &mut ox, n_mac);
                    cur.oy0 = oy;
                    cur.ox0 = ox;
                    let (mut oy, mut ox) = (cur.oy_hi, cur.ox_hi);
                    cur.advance(&mut oy, &mut ox, new_last - cur.last_idx);
                    cur.oy_hi = oy;
                    cur.ox_hi = ox;
                }
                cur.last_idx = new_last;
            }
        }
    }

    /// The next operand this vault must fetch, or `None` when the layer's
    /// stream is exhausted. (Deliberately inherent rather than an
    /// `Iterator` impl: callers treat this as an FSM step with state they
    /// also query between steps.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<OperandEvent> {
        loop {
            if self.cursor < self.buf.len() {
                let e = self.buf[self.cursor];
                self.cursor += 1;
                self.emitted += 1;
                return Some(e);
            }
            if self.g >= self.max_groups {
                return None;
            }
            self.buf.clear();
            self.cursor = 0;
            self.fill_for(self.pi);
            // Advance (p, k, g) — PE innermost so one (g, k) step feeds
            // every PE before the connection counter advances. The cached
            // kernel offsets and per-destination cursors advance with the
            // counters they mirror.
            self.pi += 1;
            if self.pi == self.serves.len() {
                self.pi = 0;
                self.k += 1;
                self.rk += 1;
                self.kx += 1;
                if self.kx == self.kernel {
                    self.kx = 0;
                    self.ky += 1;
                }
                if self.rk as usize == self.kernel * self.kernel {
                    self.rk = 0;
                    self.ky = 0;
                    self.kx = 0;
                    self.kch += 1;
                }
                if self.k == self.conns {
                    self.k = 0;
                    self.g += 1;
                    self.rk = 0;
                    self.ky = 0;
                    self.kx = 0;
                    self.kch = 0;
                    self.advance_cursors();
                }
            }
        }
    }
}

/// Can `vault` ever supply an operand to PE `p` in this layer?
fn may_serve(prog: &LayerProgram, vault: NodeId, p: NodeId) -> bool {
    if prog.out_vol.assigned_per_map(p) == 0 {
        return false;
    }
    if vault == p {
        return true;
    }
    if prog.is_fc() {
        // Weights always come from p itself; shared states come from their
        // owner unless p holds a duplicate copy of the whole input.
        return match &prog.in_vol.kind {
            crate::layout::VolumeKind::Flat { duplicated, .. } => !*duplicated,
            crate::layout::VolumeKind::Spatial { owned, stored } => {
                // Spatial input consumed by FC: p serves itself if it stores
                // everything; otherwise owners serve.
                stored[usize::from(p)].area() < prog.in_shape.height * prog.in_shape.width
                    && !owned[usize::from(vault)].is_empty()
            }
        };
    }
    // Conv/pool: vault serves p iff p lacks a stored copy of some input it
    // needs, i.e. p's needed input rectangle overlaps vault's owned tile
    // beyond p's stored rectangle.
    match (&prog.in_vol.kind, &prog.out_vol.kind) {
        (
            crate::layout::VolumeKind::Spatial { owned, stored },
            crate::layout::VolumeKind::Spatial {
                owned: out_owned, ..
            },
        ) => {
            let (k, s) = crate::layout::kernel_geometry(&prog.layer)
                .expect("spatial layer has kernel geometry");
            let need =
                crate::layout::input_rect_for(out_owned[usize::from(p)], k, s, prog.in_shape);
            let have = stored[usize::from(p)];
            let own = owned[usize::from(vault)];
            // Overlap of (need \ have) with own — conservative: overlap of
            // need with own, minus the case where own ⊆ have.
            rects_overlap(need, own)
                && !(own.y0 >= have.y0
                    && own.y1 <= have.y1
                    && own.x0 >= have.x0
                    && own.x1 <= have.x1)
        }
        _ => true,
    }
}

fn rects_overlap(a: crate::layout::Rect, b: crate::layout::Rect) -> bool {
    a.y0 < b.y1 && b.y0 < a.y1 && a.x0 < b.x1 && b.x0 < a.x1
}

/// Replays the write-back sequence of PE `src` filtered to the neurons that
/// vault `store` keeps a copy of, yielding each one's local DRAM address —
/// how a PNG maps an incoming `Result` packet to a write address without
/// the packet carrying one.
#[derive(Clone, Debug)]
pub struct WritebackCursor {
    prog: Arc<LayerProgram>,
    src: NodeId,
    store: NodeId,
    idx: u64,
    total: u64,
}

impl WritebackCursor {
    /// Builds the cursor for results of PE `src` landing in vault `store`.
    pub fn new(prog: Arc<LayerProgram>, src: NodeId, store: NodeId) -> WritebackCursor {
        WritebackCursor {
            total: prog.out_vol.assigned_count(src),
            prog,
            src,
            store,
            idx: 0,
        }
    }

    /// The next expected `(neuron, local write address)` pair, or `None`
    /// when `src` has no further results destined for `store`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(usize, u64)> {
        while self.idx < self.total {
            let neuron = self.prog.out_vol.assigned_neuron(self.src, self.idx);
            self.idx += 1;
            if let Some(addr) = self.prog.out_vol.local_addr(self.store, neuron) {
                return Some((neuron, addr));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NetworkLayout;
    use crate::program::{compile_layer, Mapping};
    use neurocube_dram::MemoryConfig;
    use neurocube_fixed::Activation;
    use neurocube_nn::{LayerSpec, NetworkSpec, Shape};

    fn compile(net: &NetworkSpec, duplicate: bool, index: usize) -> Arc<LayerProgram> {
        let map = MemoryConfig::hmc_int().address_map();
        let layout = NetworkLayout::build(net, 4, 4, duplicate, 16, &map);
        compile_layer(net, &layout, index, Mapping::paper(duplicate))
    }

    /// Drains all 16 vault streams and checks each PE receives exactly the
    /// operand count its configuration demands.
    fn check_conservation(prog: &Arc<LayerProgram>) -> Vec<Vec<OperandEvent>> {
        let mut all: Vec<Vec<OperandEvent>> = Vec::new();
        for v in 0..16u8 {
            let mut s = OperandStream::new(Arc::clone(prog), v);
            let mut evs = Vec::new();
            while let Some(e) = s.next() {
                evs.push(e);
            }
            assert!(s.is_exhausted());
            assert_eq!(s.emitted(), evs.len() as u64);
            all.push(evs);
        }
        let mut per_pe = [0u64; 16];
        for e in all.iter().flatten() {
            per_pe[usize::from(e.dst)] += 1;
        }
        for p in 0..16u8 {
            let expected = match prog.pe_config(p) {
                None => 0,
                Some(cfg) => {
                    if prog.is_fc() {
                        // 16 weights + 1 shared state per (group, k) step.
                        let mut total = 0u64;
                        for g in 0..prog.groups_of(p) {
                            total += (u64::from(cfg.active_macs(g)) + 1)
                                * u64::from(cfg.conns_per_neuron);
                        }
                        total
                    } else {
                        cfg.total_macs()
                    }
                }
            };
            assert_eq!(
                per_pe[usize::from(p)],
                expected,
                "PE {p} operand count mismatch"
            );
        }
        all
    }

    /// Independent re-derivation of one vault's stream with every operand
    /// resolved through the canonical `connections::resolve` / `owner` /
    /// `local_addr` chain — the oracle the spatial fast path must match
    /// event-for-event.
    fn oracle_events(prog: &Arc<LayerProgram>, vault: u8) -> Vec<OperandEvent> {
        let s = OperandStream::new(Arc::clone(prog), vault);
        let n_mac = u64::from(prog.mapping.n_mac);
        let mut out = Vec::new();
        for g in 0..s.max_groups {
            for k in 0..s.conns {
                for &p in &s.serves {
                    let per_map = prog.out_vol.assigned_per_map(p);
                    if per_map == 0 {
                        continue;
                    }
                    let gpm = per_map.div_ceil(n_mac);
                    if g >= gpm * prog.maps_of() {
                        continue;
                    }
                    let (map, gin) = (g / gpm, g % gpm);
                    let active = if gin + 1 == gpm {
                        (per_map - (gpm - 1) * n_mac) as u32
                    } else {
                        n_mac as u32
                    };
                    let global_op = g * u64::from(s.conns) + u64::from(k);
                    let op_id = (global_op % 256) as u8;
                    for m in 0..active {
                        let assigned = map * per_map + gin * n_mac + u64::from(m);
                        let neuron = prog.out_vol.assigned_neuron(p, assigned);
                        let conn =
                            connections::resolve(&prog.layer, prog.in_shape, neuron, k as usize);
                        let src = if prog.in_vol.local_addr(p, conn.input_index).is_some() {
                            p
                        } else {
                            prog.in_vol.owner(conn.input_index)
                        };
                        if src == vault {
                            out.push(OperandEvent {
                                addr: prog.in_vol.local_addr(vault, conn.input_index).unwrap(),
                                dst: p,
                                mac_id: m as u8,
                                op_id,
                                global_op,
                                kind: PacketKind::State,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The spatial fast path emits bitwise the same event sequence as the
    /// per-MAC `resolve` oracle, across uneven tiles, strides, multi-map
    /// inputs, all-maps connectivity, pooling, and both duplication modes.
    #[test]
    fn spatial_fast_path_matches_resolve_oracle() {
        let cases: Vec<(NetworkSpec, bool)> = [
            // Odd spatial extents -> ragged 4x4 tiling.
            NetworkSpec::new(
                Shape::new(1, 33, 31),
                vec![LayerSpec::conv(4, 3, Activation::Tanh)],
            )
            .unwrap(),
            // Strided conv with multi-map input (round-robin ic = oc % in_c).
            NetworkSpec::new(
                Shape::new(2, 21, 19),
                vec![LayerSpec::Conv2d {
                    out_channels: 3,
                    kernel: 3,
                    stride: 2,
                    connectivity: ConvConnectivity::SingleMap,
                    activation: Activation::Identity,
                }],
            )
            .unwrap(),
            // All-maps connectivity: ic derived from k.
            NetworkSpec::new(
                Shape::new(3, 12, 12),
                vec![LayerSpec::Conv2d {
                    out_channels: 2,
                    kernel: 3,
                    stride: 1,
                    connectivity: ConvConnectivity::AllMaps,
                    activation: Activation::Tanh,
                }],
            )
            .unwrap(),
            // Average pooling (stride == kernel, constant weights).
            NetworkSpec::new(Shape::new(4, 16, 16), vec![LayerSpec::AvgPool { size: 2 }]).unwrap(),
        ]
        .into_iter()
        .flat_map(|net| [(net.clone(), false), (net, true)])
        .collect();
        for (net, dup) in cases {
            let prog = compile(&net, dup, 0);
            for v in 0..16u8 {
                let mut s = OperandStream::new(Arc::clone(&prog), v);
                let mut got = Vec::new();
                while let Some(e) = s.next() {
                    got.push(e);
                }
                assert_eq!(
                    got,
                    oracle_events(&prog, v),
                    "stream diverges from oracle (vault {v}, dup {dup}, net {net:?})"
                );
            }
        }
    }

    #[test]
    fn conv_dup_streams_are_purely_local() {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![LayerSpec::conv(2, 3, Activation::Tanh)],
        )
        .unwrap();
        let prog = compile(&net, true, 0);
        let all = check_conservation(&prog);
        let mut total = 0u64;
        for (v, evs) in all.iter().enumerate() {
            for e in evs {
                assert_eq!(
                    usize::from(e.dst),
                    v,
                    "dup conv must have no lateral traffic"
                );
                assert_eq!(e.kind, PacketKind::State);
            }
            total += evs.len() as u64;
        }
        // One state operand per MAC operation.
        let expected: u64 = net.macs_per_layer()[0];
        assert_eq!(total, expected);
    }

    #[test]
    fn conv_nodup_has_lateral_operands() {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![LayerSpec::conv(2, 3, Activation::Tanh)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        let all = check_conservation(&prog);
        let total: u64 = all.iter().map(|e| e.len() as u64).sum();
        assert_eq!(total, net.macs_per_layer()[0]);
        let lateral: u64 = all
            .iter()
            .enumerate()
            .map(|(v, evs)| evs.iter().filter(|e| usize::from(e.dst) != v).count() as u64)
            .sum();
        assert!(lateral > 0, "boundary pixels must cross vaults");
        // Lateral fraction for 3x3 kernels on 4x4 tiles of 16x16 is modest.
        assert!((lateral as f64) < 0.5 * total as f64);
    }

    #[test]
    fn fc_dup_stream_counts() {
        let net = NetworkSpec::new(
            Shape::flat(64),
            vec![LayerSpec::fc(32, Activation::Sigmoid)],
        )
        .unwrap();
        let prog = compile(&net, true, 0);
        let all = check_conservation(&prog);
        for (v, evs) in all.iter().enumerate() {
            for e in evs {
                assert_eq!(usize::from(e.dst), v, "dup FC must be local");
            }
        }
        let weights: u64 = all
            .iter()
            .flatten()
            .filter(|e| e.kind == PacketKind::Weight)
            .count() as u64;
        let shared: u64 = all
            .iter()
            .flatten()
            .filter(|e| e.kind == PacketKind::SharedState)
            .count() as u64;
        // 32 outputs x 64 connections = 2048 weights; 64 shared states per
        // group; 32 outputs / 16 vaults = 2 per vault = 1 group each.
        assert_eq!(weights, 2048);
        assert_eq!(shared, 16 * 64);
    }

    #[test]
    fn fc_nodup_shared_states_fan_out() {
        let net = NetworkSpec::new(
            Shape::flat(64),
            vec![LayerSpec::fc(32, Activation::Sigmoid)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        let all = check_conservation(&prog);
        let lateral: u64 = all
            .iter()
            .enumerate()
            .flat_map(|(v, evs)| evs.iter().map(move |e| (v, e)))
            .filter(|(v, e)| usize::from(e.dst) != *v)
            .count() as u64;
        // Each of the 64 inputs is broadcast to all 16 PEs; only the copy to
        // the owning vault's own PE is local: lateral = 64*16 - 64.
        assert_eq!(lateral, 16 * 64 - 64);
    }

    #[test]
    fn stream_ops_are_monotone_per_destination() {
        let net = NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![LayerSpec::conv(1, 3, Activation::Identity)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        for v in 0..16u8 {
            let mut s = OperandStream::new(Arc::clone(&prog), v);
            // Per destination PE, the (group-derived) full op sequence a PE
            // sees from one vault must never regress within a group sweep:
            // op_id is monotone modulo the 0-wrap at group boundaries.
            let mut prev: Vec<i32> = vec![-1; 16];
            while let Some(e) = s.next() {
                let d = usize::from(e.dst);
                let op = i32::from(e.op_id);
                assert!(
                    op >= prev[d] || op == 0,
                    "vault {v} sent op {op} after {} to PE {d}",
                    prev[d]
                );
                prev[d] = op;
            }
        }
    }

    #[test]
    fn writeback_cursor_covers_own_neurons_in_order() {
        let net = NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![LayerSpec::conv(2, 3, Activation::Identity)],
        )
        .unwrap();
        let prog = compile(&net, false, 0);
        for v in 0..16u8 {
            let mut c = WritebackCursor::new(Arc::clone(&prog), v, v);
            let mut n = 0;
            let mut prev_addr = 0u64;
            while let Some((neuron, addr)) = c.next() {
                assert_eq!(prog.out_vol.owner(neuron), v);
                if n > 0 {
                    assert!(addr > prev_addr, "own writes are ascending");
                }
                prev_addr = addr;
                n += 1;
            }
            assert_eq!(n as u64, prog.out_vol.assigned_count(v));
        }
    }

    #[test]
    fn writeback_cursor_filters_foreign_copies() {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![
                LayerSpec::conv(1, 3, Activation::Identity),
                LayerSpec::AvgPool { size: 2 },
            ],
        )
        .unwrap();
        let prog = compile(&net, true, 0);
        // Count, over all (src, store) pairs with src != store, the total
        // foreign write-backs; must match the program's expectation.
        for store in 0..16u8 {
            let mut total = 0u64;
            for src in 0..16u8 {
                if src == store {
                    continue;
                }
                let mut c = WritebackCursor::new(Arc::clone(&prog), src, store);
                while c.next().is_some() {
                    total += 1;
                }
            }
            assert_eq!(total, prog.expected_foreign_writebacks(store));
        }
    }
}
