//! Data layout across HMC vaults (Fig. 10).
//!
//! The host compiler places every volume (layer input/output) and every
//! streamed weight matrix in the cube before execution:
//!
//! * **Spatial volumes** (conv/pool inputs and outputs) are tiled over the
//!   PE grid: vault `(gx, gy)` *owns* the neurons whose `(y, x)` falls in
//!   its grid rectangle, for every feature map. With duplication, each
//!   vault additionally stores a *halo* — the rectangle of neighbouring
//!   pixels its PE will need for the consuming layer's kernels
//!   (Fig. 10(c)) — so no lateral NoC traffic is needed.
//! * **Flat volumes** (FC inputs/outputs) are sliced evenly by neuron
//!   index; with duplication the whole vector is replicated into every
//!   vault (Fig. 10(d)).
//! * **FC weight matrices** are partitioned by output neuron and stored
//!   *transposed* (`[connection][local neuron]`) so that the 16 weights of
//!   one operation are contiguous in DRAM and stream at full burst
//!   efficiency.

use crate::error::CompileError;
use neurocube_dram::AddressMap;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};
use neurocube_noc::NodeId;

/// A half-open rectangle `[y0, y1) × [x0, x1)` of a spatial volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rect {
    /// First row.
    pub y0: usize,
    /// One past the last row.
    pub y1: usize,
    /// First column.
    pub x0: usize,
    /// One past the last column.
    pub x1: usize,
}

impl Rect {
    /// Width × height of the rectangle.
    pub fn area(&self) -> usize {
        self.height() * self.width()
    }

    /// Row count.
    pub fn height(&self) -> usize {
        self.y1.saturating_sub(self.y0)
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.x1.saturating_sub(self.x0)
    }

    /// `true` when `(y, x)` lies inside.
    pub fn contains(&self, y: usize, x: usize) -> bool {
        (self.y0..self.y1).contains(&y) && (self.x0..self.x1).contains(&x)
    }

    /// `true` when the rectangle is empty.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }
}

/// The grid rectangle owned by grid cell `(gx, gy)` of a `gw × gh` grid
/// over an `h × w` plane (even split with remainders going to the trailing
/// cells, matching integer division boundaries `i * n / g`).
pub fn grid_rect(h: usize, w: usize, gw: usize, gh: usize, gx: usize, gy: usize) -> Rect {
    Rect {
        y0: gy * h / gh,
        y1: (gy + 1) * h / gh,
        x0: gx * w / gw,
        x1: (gx + 1) * w / gw,
    }
}

/// How one volume is stored across vaults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VolumeKind {
    /// Spatial tiling: `owned[v]` is vault `v`'s tile; `stored[v]` is the
    /// (possibly larger) rectangle it physically stores (tile + halo).
    /// Every feature map uses the same rectangles.
    Spatial {
        /// Tile owned by each vault.
        owned: Vec<Rect>,
        /// Rectangle physically stored by each vault (`⊇ owned[v]` with
        /// duplication; `== owned[v]` without).
        stored: Vec<Rect>,
    },
    /// Flat slicing: vault `v` owns indices `[starts[v], starts[v + 1])`.
    /// With `duplicated`, every vault stores the whole vector.
    Flat {
        /// Slice boundaries, length `vaults + 1`.
        starts: Vec<usize>,
        /// Full replication into every vault.
        duplicated: bool,
    },
}

/// The placement of one volume (a layer input/output) in the cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumeLayout {
    /// The volume's logical shape.
    pub shape: Shape,
    /// Tiling/slicing structure.
    pub kind: VolumeKind,
    /// Per-vault base byte address of this volume's region.
    pub base: Vec<u64>,
}

impl VolumeLayout {
    /// The vault that owns (produces / is the home of) a neuron.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn owner(&self, flat: usize) -> NodeId {
        assert!(flat < self.shape.len(), "neuron index out of range");
        match &self.kind {
            VolumeKind::Spatial { owned, .. } => {
                let plane = self.shape.height * self.shape.width;
                let rem = flat % plane;
                let (y, x) = (rem / self.shape.width, rem % self.shape.width);
                for (v, r) in owned.iter().enumerate() {
                    if r.contains(y, x) {
                        return v as NodeId;
                    }
                }
                unreachable!("grid rectangles cover the plane")
            }
            VolumeKind::Flat { starts, .. } => {
                // The owner is the slice whose [starts[v], starts[v+1])
                // interval contains `flat`; empty slices make boundary
                // values repeat, so a partition point is required.
                (starts.partition_point(|&s| s <= flat) - 1) as NodeId
            }
        }
    }

    /// The DRAM byte address of vault `vault`'s copy of neuron `flat`, or
    /// `None` if that vault stores no copy.
    pub fn local_addr(&self, vault: NodeId, flat: usize) -> Option<u64> {
        debug_assert!(flat < self.shape.len());
        let v = usize::from(vault);
        match &self.kind {
            VolumeKind::Spatial { stored, .. } => {
                let r = &stored[v];
                let plane = self.shape.height * self.shape.width;
                let c = flat / plane;
                let rem = flat % plane;
                let (y, x) = (rem / self.shape.width, rem % self.shape.width);
                if !r.contains(y, x) {
                    return None;
                }
                let local = (c * r.height() + (y - r.y0)) * r.width() + (x - r.x0);
                Some(self.base[v] + 2 * local as u64)
            }
            VolumeKind::Flat { starts, duplicated } => {
                if *duplicated {
                    Some(self.base[v] + 2 * flat as u64)
                } else {
                    let lo = starts[v];
                    let hi = starts[v + 1];
                    ((lo..hi).contains(&flat)).then(|| self.base[v] + 2 * (flat - lo) as u64)
                }
            }
        }
    }

    /// Bytes this volume occupies in vault `vault`.
    pub fn bytes_in_vault(&self, vault: NodeId) -> u64 {
        let v = usize::from(vault);
        match &self.kind {
            VolumeKind::Spatial { stored, .. } => {
                (stored[v].area() * self.shape.channels * 2) as u64
            }
            VolumeKind::Flat { starts, duplicated } => {
                if *duplicated {
                    (self.shape.len() * 2) as u64
                } else {
                    ((starts[v + 1] - starts[v]) * 2) as u64
                }
            }
        }
    }

    /// Bytes the volume would occupy with no duplication (the Fig. 12(d)
    /// baseline for the overhead percentage).
    pub fn bytes_minimal(&self) -> u64 {
        (self.shape.len() * 2) as u64
    }

    /// Total bytes stored across all vaults (≥ [`bytes_minimal`](Self::bytes_minimal)).
    pub fn bytes_total(&self) -> u64 {
        (0..self.base.len())
            .map(|v| self.bytes_in_vault(v as NodeId))
            .sum()
    }

    /// The neurons vault `v` owns, in *PE schedule order*: feature map
    /// outermost, then tile rows, then tile columns (spatial), or ascending
    /// slice order (flat). Index `i` of this sequence is the neuron that
    /// vault `v`'s PE computes as its `i`-th output.
    pub fn assigned_neuron(&self, vault: NodeId, i: u64) -> usize {
        let v = usize::from(vault);
        match &self.kind {
            VolumeKind::Spatial { owned, .. } => {
                let r = &owned[v];
                let per_map = r.area() as u64;
                debug_assert!(per_map > 0 && i < per_map * self.shape.channels as u64);
                let c = (i / per_map) as usize;
                let rem = (i % per_map) as usize;
                let y = r.y0 + rem / r.width();
                let x = r.x0 + rem % r.width();
                (c * self.shape.height + y) * self.shape.width + x
            }
            VolumeKind::Flat { starts, .. } => {
                debug_assert!((i as usize) < starts[v + 1] - starts[v]);
                starts[v] + i as usize
            }
        }
    }

    /// Number of neurons vault `v` owns.
    pub fn assigned_count(&self, vault: NodeId) -> u64 {
        let v = usize::from(vault);
        match &self.kind {
            VolumeKind::Spatial { owned, .. } => (owned[v].area() * self.shape.channels) as u64,
            VolumeKind::Flat { starts, .. } => (starts[v + 1] - starts[v]) as u64,
        }
    }

    /// Neurons per feature map owned by vault `v` (tile area for spatial,
    /// whole slice for flat volumes, which have a single "map").
    pub fn assigned_per_map(&self, vault: NodeId) -> u64 {
        match &self.kind {
            VolumeKind::Spatial { owned, .. } => owned[usize::from(vault)].area() as u64,
            VolumeKind::Flat { .. } => self.assigned_count(vault),
        }
    }
}

/// Builds the spatial tiling of a volume over a `gw × gh` PE grid, with
/// `stored` rectangles extended to `needed` (the consumer-derived halo) when
/// duplicating.
pub fn spatial_layout(shape: Shape, gw: usize, gh: usize, needed: Option<&[Rect]>) -> VolumeKind {
    let vaults = gw * gh;
    let mut owned = Vec::with_capacity(vaults);
    let mut stored = Vec::with_capacity(vaults);
    for v in 0..vaults {
        let (gx, gy) = (v % gw, v / gw);
        let r = grid_rect(shape.height, shape.width, gw, gh, gx, gy);
        owned.push(r);
        stored.push(match needed {
            Some(n) => union_rect(r, n[v]),
            None => r,
        });
    }
    VolumeKind::Spatial { owned, stored }
}

/// Builds the flat slicing of a volume across `vaults` vaults.
pub fn flat_layout(len: usize, vaults: usize, duplicated: bool) -> VolumeKind {
    let starts = (0..=vaults).map(|v| v * len / vaults).collect();
    VolumeKind::Flat { starts, duplicated }
}

/// The input rectangle vault `v` needs to compute output rectangle `out`
/// of a conv/pool layer (`valid` windows: output `(y, x)` reads inputs
/// `[y·s, y·s + k)`).
pub fn input_rect_for(out: Rect, kernel: usize, stride: usize, in_shape: Shape) -> Rect {
    if out.is_empty() {
        return Rect {
            y0: 0,
            y1: 0,
            x0: 0,
            x1: 0,
        };
    }
    Rect {
        y0: out.y0 * stride,
        y1: ((out.y1 - 1) * stride + kernel).min(in_shape.height),
        x0: out.x0 * stride,
        x1: ((out.x1 - 1) * stride + kernel).min(in_shape.width),
    }
}

/// Bounding box of two rectangles (empty operands are ignored).
pub(crate) fn union_rect(a: Rect, b: Rect) -> Rect {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    Rect {
        y0: a.y0.min(b.y0),
        y1: a.y1.max(b.y1),
        x0: a.x0.min(b.x0),
        x1: a.x1.max(b.x1),
    }
}

/// Kernel geometry of a spatial layer, if it has one. Element-wise sums
/// read a 1×1 "window" at stride 1: fully local operands, no halo.
pub fn kernel_geometry(layer: &LayerSpec) -> Option<(usize, usize)> {
    match *layer {
        LayerSpec::Conv2d { kernel, stride, .. } => Some((kernel, stride)),
        LayerSpec::AvgPool { size } => Some((size, size)),
        LayerSpec::FullyConnected { .. } => None,
        LayerSpec::Eltwise { .. } => Some((1, 1)),
    }
}

/// The complete placement of a network in the cube: one [`VolumeLayout`]
/// per volume (index 0 = network input, `i + 1` = output of layer `i`) plus
/// per-layer streamed-weight base addresses.
#[derive(Clone, Debug)]
pub struct NetworkLayout {
    /// Volume placements.
    pub volumes: Vec<VolumeLayout>,
    /// Per layer: per vault, base address of the group-blocked transposed
    /// FC weight region (`None` for layers whose weights live in PE weight
    /// memory).
    pub weight_base: Vec<Option<Vec<u64>>>,
    /// Per vault: bytes allocated.
    pub allocated: Vec<u64>,
    /// Number of vaults.
    pub vaults: usize,
    /// MAC-array width the weight blocks are sized for.
    pub n_mac: usize,
}

impl NetworkLayout {
    /// Lays out `net` over a `gw × gh` vault grid, duplicating inputs when
    /// `duplicate` is set. `map` provides per-vault base addresses and
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if a vault's capacity is exceeded, if the grid does not match
    /// `map`'s channel count, or if a convolutional layer follows a fully
    /// connected one (the compiler does not re-spatialize flat volumes).
    /// [`NetworkLayout::try_build`] reports the same conditions as typed
    /// errors instead.
    pub fn build(
        net: &NetworkSpec,
        gw: usize,
        gh: usize,
        duplicate: bool,
        n_mac: usize,
        map: &AddressMap,
    ) -> NetworkLayout {
        Self::try_build(net, gw, gh, duplicate, n_mac, map).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`NetworkLayout::build`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::SpatialAfterFlat`] when a conv/pool layer
    /// consumes a flat volume and [`CompileError::VaultOverCapacity`] when
    /// a vault's region overflows.
    ///
    /// # Panics
    ///
    /// Still panics on caller bugs: a zero `n_mac` or a grid that does not
    /// match `map`'s channel count.
    pub fn try_build(
        net: &NetworkSpec,
        gw: usize,
        gh: usize,
        duplicate: bool,
        n_mac: usize,
        map: &AddressMap,
    ) -> Result<NetworkLayout, CompileError> {
        assert!(n_mac > 0, "n_mac must be nonzero");
        let vaults = gw * gh;
        assert_eq!(vaults as u32, map.channels(), "grid must match vault count");
        let mut alloc: Vec<u64> = (0..vaults).map(|v| map.channel_base(v as u32)).collect();
        let shapes = net.shapes();

        // Decide each volume's structure from its consumer (volume i feeds
        // layer i; the last volume has no consumer).
        let mut kinds: Vec<VolumeKind> = Vec::with_capacity(shapes.len());
        let mut flat_seen = false;
        for (i, &shape) in shapes.iter().enumerate() {
            let consumer = net.layers().get(i);
            let kind = match consumer {
                Some(layer) => match kernel_geometry(layer) {
                    Some((k, s)) => {
                        if flat_seen {
                            return Err(CompileError::SpatialAfterFlat { layer: i });
                        }
                        let needed: Vec<Rect> = (0..vaults)
                            .map(|v| {
                                let (gx, gy) = (v % gw, v / gw);
                                let out_shape = net.layer_output(i);
                                let out =
                                    grid_rect(out_shape.height, out_shape.width, gw, gh, gx, gy);
                                input_rect_for(out, k, s, shape)
                            })
                            .collect();
                        let halo = if duplicate {
                            Some(needed.as_slice())
                        } else {
                            None
                        };
                        spatial_layout(shape, gw, gh, halo)
                    }
                    None => {
                        // FC consumer. Spatial producer volumes stay tiled
                        // even when duplication is on: the FC shared-state
                        // broadcast is already fine-grained across owners
                        // (tile ownership rotates with the flat index), so
                        // full replication would buy nothing and cost a
                        // 15x write-back broadcast — see DESIGN.md §3.
                        // Flat volumes (MLP chains) replicate per Fig. 10(d).
                        if shape.height > 1 || shape.width > 1 {
                            spatial_layout(shape, gw, gh, None)
                        } else {
                            flat_seen = true;
                            flat_layout(shape.len(), vaults, duplicate)
                        }
                    }
                },
                // Output volume: owned where produced, no duplication.
                None => {
                    if flat_seen || shape.height == 1 && shape.width == 1 {
                        flat_layout(shape.len(), vaults, false)
                    } else {
                        spatial_layout(shape, gw, gh, None)
                    }
                }
            };
            if matches!(kind, VolumeKind::Flat { .. }) {
                flat_seen = true;
            }
            kinds.push(kind);
        }

        // Allocate volume regions per vault.
        let mut volumes = Vec::with_capacity(shapes.len());
        for (shape, kind) in shapes.iter().zip(kinds) {
            let mut base = Vec::with_capacity(vaults);
            let vl_probe = VolumeLayout {
                shape: *shape,
                kind: kind.clone(),
                base: vec![0; vaults],
            };
            for (v, a) in alloc.iter_mut().enumerate() {
                base.push(*a);
                *a += vl_probe.bytes_in_vault(v as NodeId);
            }

            volumes.push(VolumeLayout {
                shape: *shape,
                kind,
                base,
            });
        }

        // Allocate streamed (FC) weight regions, transposed per vault.
        let mut weight_base = Vec::with_capacity(net.depth());
        for (i, layer) in net.layers().iter().enumerate() {
            if layer.weights_stream() {
                let n_in = net.layer_input(i).len() as u64;
                let mut bases = Vec::with_capacity(vaults);
                for (v, a) in alloc.iter_mut().enumerate() {
                    bases.push(*a);
                    // Group-blocked: each group of ≤ n_mac neurons stores a
                    // sequential [connection][mac] block; the (only) partial
                    // group uses its exact width, so no padding.
                    let local_neurons = volumes[i + 1].assigned_count(v as NodeId);
                    *a += 2 * n_in * local_neurons;
                }
                weight_base.push(Some(bases));
            } else {
                weight_base.push(None);
            }
        }

        // Capacity check.
        #[allow(clippy::needless_range_loop)] // v doubles as the channel id
        for v in 0..vaults {
            let used = alloc[v] - map.channel_base(v as u32);
            if used > map.channel_bytes() {
                return Err(CompileError::VaultOverCapacity {
                    vault: v,
                    needed: used,
                    capacity: map.channel_bytes(),
                });
            }
        }

        let allocated = (0..vaults)
            .map(|v| alloc[v] - map.channel_base(v as u32))
            .collect();
        Ok(NetworkLayout {
            volumes,
            weight_base,
            allocated,
            vaults,
            n_mac,
        })
    }

    /// DRAM address of the FC weight for (`layer`, local output-neuron index
    /// `local`, connection `k`) in vault `vault` — group-blocked transposed
    /// layout: full groups of `n_mac` neurons store sequential
    /// `[connection][mac]` blocks (`base + 2·((group·conns + k)·n_mac +
    /// mac)`); the trailing partial group uses its exact width. One group's
    /// whole weight stream is therefore a single sequential DRAM run, and
    /// the region carries no padding.
    ///
    /// # Panics
    ///
    /// Panics if the layer's weights do not stream.
    pub fn fc_weight_addr(&self, layer: usize, vault: NodeId, local: u64, k: u64) -> u64 {
        let bases = self.weight_base[layer]
            .as_ref()
            .expect("layer weights do not stream from DRAM");
        let n_mac = self.n_mac as u64;
        let conns = self.volumes[layer].shape.len() as u64;
        let n = self.volumes[layer + 1].assigned_count(vault);
        let (group, mac) = (local / n_mac, local % n_mac);
        let width = n_mac.min(n - group * n_mac);
        bases[usize::from(vault)] + 2 * (group * conns * n_mac + k * width + mac)
    }

    /// Total bytes stored across the cube.
    pub fn total_bytes(&self) -> u64 {
        self.allocated.iter().sum()
    }

    /// Bytes stored with no duplication anywhere (states + streamed
    /// weights, without group padding), the denominator of the Fig. 12(d)
    /// overhead ratio.
    pub fn minimal_bytes(&self) -> u64 {
        let states: u64 = self.volumes.iter().map(VolumeLayout::bytes_minimal).sum();
        let weights: u64 = self
            .weight_base
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| {
                2 * (self.volumes[i].shape.len() as u64) * (self.volumes[i + 1].shape.len() as u64)
            })
            .sum();
        states + weights
    }

    /// Duplication overhead as a fraction of the minimal footprint.
    pub fn duplication_overhead(&self) -> f64 {
        let min = self.minimal_bytes() as f64;
        (self.total_bytes() as f64 - min) / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_dram::MemoryConfig;
    use neurocube_fixed::Activation;

    fn map16() -> AddressMap {
        MemoryConfig::hmc_int().address_map()
    }

    #[test]
    fn grid_rects_partition_the_plane() {
        let (h, w) = (234, 314);
        let mut count = 0;
        for gy in 0..4 {
            for gx in 0..4 {
                count += grid_rect(h, w, 4, 4, gx, gy).area();
            }
        }
        assert_eq!(count, h * w);
    }

    #[test]
    fn spatial_owner_and_addresses() {
        let shape = Shape::new(2, 8, 8);
        let kind = spatial_layout(shape, 4, 4, None);
        let vl = VolumeLayout {
            shape,
            kind,
            base: (0..16).map(|v| v * 1000).collect(),
        };
        // Neuron (c=1, y=3, x=5): grid cell (gx=2, gy=1) => vault 6.
        let flat = (8 + 3) * 8 + 5;
        assert_eq!(vl.owner(flat), 6);
        // Its local address: tile is rows 2..4, cols 4..6 (2x2); local idx
        // within map = (3-2)*2 + (5-4) = 3; channel 1 => 4 + 3 = 7.
        assert_eq!(vl.local_addr(6, flat), Some(6000 + 2 * 7));
        // A vault that stores no copy:
        assert_eq!(vl.local_addr(0, flat), None);
    }

    #[test]
    fn halo_extends_stored_rect() {
        let in_shape = Shape::new(1, 10, 10);
        let out = Rect {
            y0: 0,
            y1: 2,
            x0: 0,
            x1: 2,
        };
        let need = input_rect_for(out, 3, 1, in_shape);
        assert_eq!(
            need,
            Rect {
                y0: 0,
                y1: 4,
                x0: 0,
                x1: 4
            }
        );
        // Pooling (k = s = 2).
        let need = input_rect_for(out, 2, 2, in_shape);
        assert_eq!(
            need,
            Rect {
                y0: 0,
                y1: 4,
                x0: 0,
                x1: 4
            }
        );
    }

    #[test]
    fn flat_slices_and_duplication() {
        let kind = flat_layout(100, 16, false);
        let vl = VolumeLayout {
            shape: Shape::flat(100),
            kind,
            base: (0..16).map(|v| v * 1_000).collect(),
        };
        assert_eq!(vl.owner(0), 0);
        assert_eq!(vl.owner(99), 15);
        assert_eq!(vl.assigned_count(0), 6); // 100/16 rounding
        assert_eq!((0..16).map(|v| vl.assigned_count(v)).sum::<u64>(), 100);
        assert!(vl.local_addr(1, 0).is_none());
        let dup = VolumeLayout {
            shape: Shape::flat(100),
            kind: flat_layout(100, 16, true),
            base: vl.base.clone(),
        };
        assert_eq!(dup.local_addr(3, 42), Some(3_000 + 84));
        assert_eq!(dup.bytes_total(), 16 * 200);
    }

    #[test]
    fn assigned_neurons_cover_volume_once() {
        let shape = Shape::new(3, 9, 9);
        let vl = VolumeLayout {
            shape,
            kind: spatial_layout(shape, 4, 4, None),
            base: vec![0; 16],
        };
        let mut seen = vec![false; shape.len()];
        for v in 0..16u8 {
            for i in 0..vl.assigned_count(v) {
                let n = vl.assigned_neuron(v, i);
                assert!(!seen[n], "neuron {n} assigned twice");
                seen[n] = true;
                assert_eq!(vl.owner(n), v);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn network_layout_scene_like_geometry() {
        let net = NetworkSpec::new(
            Shape::new(3, 24, 32),
            vec![
                LayerSpec::conv(4, 5, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(10, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let map = map16();
        let nodup = NetworkLayout::build(&net, 4, 4, false, 16, &map);
        let dup = NetworkLayout::build(&net, 4, 4, true, 16, &map);
        assert!(dup.total_bytes() > nodup.total_bytes());
        assert!(dup.duplication_overhead() > 0.0);
        // Without duplication the layout is exactly minimal.
        assert_eq!(nodup.total_bytes(), nodup.minimal_bytes());
        // FC weights allocated only for the FC layer.
        assert!(nodup.weight_base[0].is_none());
        assert!(nodup.weight_base[2].is_some());
    }

    #[test]
    fn fc_weight_addresses_are_transposed() {
        let net = NetworkSpec::new(
            Shape::flat(32),
            vec![LayerSpec::fc(32, Activation::Identity)],
        )
        .unwrap();
        let map = map16();
        let layout = NetworkLayout::build(&net, 4, 4, false, 16, &map);
        // Vault 0 owns 2 output neurons (one partial group of width 2);
        // weights for op k are contiguous, and consecutive ops are
        // consecutive blocks of that width.
        let a0 = layout.fc_weight_addr(0, 0, 0, 5);
        let a1 = layout.fc_weight_addr(0, 0, 1, 5);
        assert_eq!(a1, a0 + 2);
        let b0 = layout.fc_weight_addr(0, 0, 0, 6);
        assert_eq!(b0, a0 + 2 * 2);
        // A second group starts a fresh sequential run: with 32 outputs over
        // 16 vaults every vault has exactly one group, so check via a wider
        // layer.
        let wide = NetworkSpec::new(
            Shape::flat(8),
            vec![LayerSpec::fc(17 * 16, Activation::Identity)],
        )
        .unwrap();
        let map = map16();
        let wide_layout = NetworkLayout::build(&wide, 4, 4, false, 16, &map);
        // Vault 0 owns 17 neurons: one full group (16) + partial width 1.
        let full_first = wide_layout.fc_weight_addr(0, 0, 0, 0);
        let partial_first = wide_layout.fc_weight_addr(0, 0, 16, 0);
        assert_eq!(partial_first, full_first + 2 * 8 * 16);
        let partial_second_op = wide_layout.fc_weight_addr(0, 0, 16, 1);
        assert_eq!(partial_second_op, partial_first + 2);
    }

    #[test]
    fn spatial_after_flat_is_a_typed_error() {
        let net = NetworkSpec::new(
            Shape::flat(64),
            vec![
                // A 1x1 conv is geometrically legal on the flat FC output,
                // but the compiler refuses to re-spatialize it.
                LayerSpec::fc(256, Activation::Tanh),
                LayerSpec::conv(2, 1, Activation::Tanh),
            ],
        )
        .unwrap();
        let err = NetworkLayout::try_build(&net, 4, 4, false, 16, &map16()).unwrap_err();
        assert_eq!(err, CompileError::SpatialAfterFlat { layer: 1 });
        assert_eq!(
            err.to_string(),
            "layer 1: conv/pool after a fully connected layer"
        );
    }

    #[test]
    fn vault_over_capacity_is_a_typed_error() {
        // 64k inputs x 100k outputs of streamed weights: ~12.8 GB over 16
        // vaults, far beyond the 256 MB per-vault region. (Nothing is
        // written: the layout is pure address arithmetic.)
        let net = NetworkSpec::new(
            Shape::flat(65_536),
            vec![LayerSpec::fc(100_000, Activation::Identity)],
        )
        .unwrap();
        let map = map16();
        let err = NetworkLayout::try_build(&net, 4, 4, false, 16, &map).unwrap_err();
        let CompileError::VaultOverCapacity {
            needed, capacity, ..
        } = err
        else {
            panic!("expected VaultOverCapacity, got {err}");
        };
        assert!(needed > capacity);
        assert_eq!(capacity, map.channel_bytes());
    }

    #[test]
    fn duplicated_flat_input_has_16x_footprint() {
        let net = NetworkSpec::new(
            Shape::flat(160),
            vec![LayerSpec::fc(16, Activation::Identity)],
        )
        .unwrap();
        let map = map16();
        let dup = NetworkLayout::build(&net, 4, 4, true, 16, &map);
        // Input vector is replicated into all 16 vaults.
        assert_eq!(dup.volumes[0].bytes_total(), 16 * 160 * 2);
        assert_eq!(dup.volumes[0].bytes_minimal(), 160 * 2);
    }
}
