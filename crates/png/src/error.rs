//! Typed host-compiler errors.
//!
//! Every failure mode of layout construction, layer compilation and host
//! data loading is a [`CompileError`]; the panicking entry points
//! ([`NetworkLayout::build`](crate::layout::NetworkLayout::build),
//! [`compile_layer`](crate::compile_layer), …) are thin wrappers that
//! `panic!` with the error's `Display` text, and the graph compiler
//! surfaces the same variants as `Result`s.

use neurocube_nn::GraphError;
use neurocube_noc::NocError;
use std::fmt;

/// Errors produced by the host compiler and loaders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A vault's DRAM region cannot hold its share of the layout.
    VaultOverCapacity {
        /// The overflowing vault.
        vault: usize,
        /// Bytes the layout needs in that vault.
        needed: u64,
        /// Bytes the vault provides.
        capacity: u64,
    },
    /// A conv/pool/add layer consumes a flat (fully-connected-produced)
    /// volume; the compiler does not re-spatialize flat volumes.
    SpatialAfterFlat {
        /// Index of the offending layer.
        layer: usize,
    },
    /// A layer index beyond the network's depth.
    LayerIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The network's layer count.
        depth: usize,
    },
    /// The parameter set has the wrong number of layers.
    WeightLayerCount {
        /// Layers the network declares.
        expected: usize,
        /// Layers the parameter set provides.
        got: usize,
    },
    /// One layer's weight image has the wrong length.
    WeightImageSize {
        /// Index of the offending layer.
        layer: usize,
        /// Weights the layer declares.
        expected: usize,
        /// Weights the image provides.
        got: usize,
    },
    /// A volume payload has the wrong length.
    VolumeSize {
        /// Values the volume's shape requires.
        expected: usize,
        /// Values provided.
        got: usize,
    },
    /// The graph itself failed validation.
    Graph(GraphError),
    /// The target fabric cannot be constructed (oversized topology).
    Noc(NocError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::VaultOverCapacity {
                vault,
                needed,
                capacity,
            } => write!(f, "vault {vault} over capacity: {needed} > {capacity}"),
            CompileError::SpatialAfterFlat { layer } => {
                write!(f, "layer {layer}: conv/pool after a fully connected layer")
            }
            CompileError::LayerIndexOutOfRange { index, depth } => {
                write!(f, "layer index {index} out of range (depth {depth})")
            }
            CompileError::WeightLayerCount { expected, got } => {
                write!(f, "parameter set has {got} layers, network has {expected}")
            }
            CompileError::WeightImageSize {
                layer,
                expected,
                got,
            } => write!(
                f,
                "layer {layer} weight image has {got} weights, expected {expected}"
            ),
            CompileError::VolumeSize { expected, got } => {
                write!(f, "volume payload has {got} values, expected {expected}")
            }
            CompileError::Graph(e) => write!(f, "invalid graph: {e}"),
            CompileError::Noc(e) => write!(f, "fabric not constructible: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Graph(e) => Some(e),
            CompileError::Noc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> CompileError {
        CompileError::Graph(e)
    }
}

impl From<NocError> for CompileError {
    fn from(e: NocError) -> CompileError {
        CompileError::Noc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_capacity_wording() {
        let e = CompileError::VaultOverCapacity {
            vault: 3,
            needed: 10,
            capacity: 5,
        };
        assert_eq!(e.to_string(), "vault 3 over capacity: 10 > 5");
    }

    #[test]
    fn graph_errors_wrap_with_source() {
        use std::error::Error;
        let e = CompileError::from(GraphError::Cycle);
        assert!(e.to_string().contains("cycle"));
        assert!(e.source().is_some());
    }

    #[test]
    fn noc_errors_wrap_with_source() {
        use std::error::Error;
        let e = CompileError::from(NocError::MeshTooLarge {
            nodes: 144,
            max: 128,
        });
        assert!(e.to_string().contains("fabric not constructible"));
        assert!(e.to_string().contains("144 routers"));
        assert!(e.source().is_some());
    }
}
