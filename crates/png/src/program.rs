//! The host compiler: turning one network layer into PNG programs and PE
//! configuration-register images (Fig. 4's "compile into state machine
//! descriptions" step).

use crate::error::CompileError;
use crate::layout::NetworkLayout;
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{ConvConnectivity, LayerSpec, NetworkSpec, Shape};
use neurocube_pe::{PeLayerConfig, StateMode, WeightMode};
use std::sync::Arc;

/// The cube-wide mapping parameters the host chooses for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// PE/vault grid width (4 for the 16-vault HMC).
    pub grid_w: usize,
    /// PE/vault grid height.
    pub grid_h: usize,
    /// Duplicate inputs (halos for conv layers, full vectors for FC layers,
    /// Fig. 10(c)/(d)) to eliminate lateral NoC traffic at a memory cost.
    pub duplicate: bool,
    /// MACs per PE.
    pub n_mac: u32,
}

impl Mapping {
    /// The paper's design point: 4×4 grid, 16 MACs.
    pub fn paper(duplicate: bool) -> Mapping {
        Mapping {
            grid_w: 4,
            grid_h: 4,
            duplicate,
            n_mac: 16,
        }
    }

    /// Vault count.
    pub fn vaults(&self) -> usize {
        self.grid_w * self.grid_h
    }
}

/// Everything the 16 PNGs and PEs need to execute one layer — the result of
/// the host's per-layer programming step (§IV-C). Shared behind an [`Arc`].
#[derive(Clone, Debug)]
pub struct LayerProgram {
    /// Index of the layer in the network.
    pub layer_index: usize,
    /// The layer description.
    pub layer: LayerSpec,
    /// Input volume shape.
    pub in_shape: Shape,
    /// Output volume shape.
    pub out_shape: Shape,
    /// Placement of the input volume.
    pub in_vol: crate::layout::VolumeLayout,
    /// Placement of the output volume (including the copies the *next*
    /// layer's duplication requires).
    pub out_vol: crate::layout::VolumeLayout,
    /// Per-vault base of the transposed streamed-weight region, if the
    /// layer's weights stream from DRAM.
    pub weight_base: Option<Vec<u64>>,
    /// Activation applied by the PNG LUT on write-back.
    pub activation: Activation,
    /// The mapping this program was compiled for.
    pub mapping: Mapping,
}

impl LayerProgram {
    /// `true` when this layer uses the fully connected dataflow (shared
    /// state broadcast + streamed weights).
    pub fn is_fc(&self) -> bool {
        self.layer.weights_stream()
    }

    /// Groups (MAC-array firings per connection sweep) PE `p` executes.
    pub fn groups_of(&self, p: u8) -> u64 {
        let per_map = self.out_vol.assigned_per_map(p);
        let maps = self.maps_of();
        per_map.div_ceil(u64::from(self.mapping.n_mac)) * maps
    }

    /// Output maps per PE (spatial layers iterate feature maps; FC layers
    /// have a single flat "map").
    pub fn maps_of(&self) -> u64 {
        if self.is_fc() {
            1
        } else {
            self.out_shape.channels as u64
        }
    }

    /// The maximum group count over all PEs — the length of the global
    /// lockstep schedule.
    pub fn max_groups(&self) -> u64 {
        (0..self.mapping.vaults() as u8)
            .map(|p| self.groups_of(p))
            .max()
            .unwrap_or(0)
    }

    /// Connections per output neuron.
    pub fn conns(&self) -> u32 {
        self.layer.connections_per_neuron(self.in_shape) as u32
    }

    /// The PE configuration registers for vault `p`, or `None` when that PE
    /// owns no neurons of this layer and idles.
    pub fn pe_config(&self, p: u8) -> Option<PeLayerConfig> {
        let per_map = self.out_vol.assigned_per_map(p);
        if per_map == 0 {
            return None;
        }
        let (states, weights) = if self.is_fc() {
            (StateMode::Shared, WeightMode::Stream)
        } else {
            let (wpn, rows) = match self.layer {
                LayerSpec::Conv2d {
                    kernel,
                    connectivity,
                    ..
                } => {
                    let wpn = match connectivity {
                        ConvConnectivity::SingleMap => kernel * kernel,
                        ConvConnectivity::AllMaps => kernel * kernel * self.in_shape.channels,
                    };
                    (wpn as u32, self.out_shape.channels as u32)
                }
                LayerSpec::AvgPool { size } => ((size * size) as u32, 1),
                // A residual add is a 1x1 "kernel" of `terms` unit weights,
                // identical in every map (like the pooling constant row).
                LayerSpec::Eltwise { terms, .. } => (terms as u32, 1),
                LayerSpec::FullyConnected { .. } => unreachable!("handled above"),
            };
            (
                StateMode::PerMac,
                WeightMode::Local {
                    weights_per_neuron: wpn,
                    rows,
                },
            )
        };
        Some(PeLayerConfig {
            n_mac: self.mapping.n_mac,
            conns_per_neuron: self.conns(),
            neurons_per_map: per_map,
            maps: self.maps_of() as u32,
            states,
            weights,
        })
    }

    /// The PE weight-memory image for layers with
    /// [`WeightMode::Local`]: the layer's
    /// kernels (identical in every PE — "the weights are duplicated in the
    /// weight memory of all PEs", §V-A-1), or the pooling constant row.
    pub fn pe_weight_image(&self, params: &[Q88]) -> Vec<Q88> {
        match self.layer {
            LayerSpec::Conv2d { .. } => params.to_vec(),
            LayerSpec::AvgPool { size } => {
                vec![Q88::from_f64(1.0 / (size * size) as f64); size * size]
            }
            LayerSpec::Eltwise { terms, .. } => vec![Q88::ONE; terms],
            LayerSpec::FullyConnected { .. } => Vec::new(),
        }
    }

    /// Copies of output neuron `n` beyond its owner: the vaults whose
    /// stored region includes it.
    pub fn copy_vaults(&self, n: usize, owner: u8) -> Vec<u8> {
        (0..self.mapping.vaults() as u8)
            .filter(|&u| u != owner && self.out_vol.local_addr(u, n).is_some())
            .collect()
    }

    /// Total write-backs vault `v` will receive from *other* vaults'
    /// PEs (its stored-but-not-owned copies of the output volume).
    pub fn expected_foreign_writebacks(&self, v: u8) -> u64 {
        let stored = self.out_vol.bytes_in_vault(v) / 2;
        stored - self.out_vol.assigned_count(v)
    }
}

/// Compiles layer `index` of `net` into a shared [`LayerProgram`].
///
/// # Panics
///
/// Panics if `index` is out of range ([`try_compile_layer`] reports it as
/// a typed error instead).
pub fn compile_layer(
    net: &NetworkSpec,
    layout: &NetworkLayout,
    index: usize,
    mapping: Mapping,
) -> Arc<LayerProgram> {
    try_compile_layer(net, layout, index, mapping).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`compile_layer`].
///
/// # Errors
///
/// Returns [`CompileError::LayerIndexOutOfRange`] if `index` is beyond the
/// network's depth.
pub fn try_compile_layer(
    net: &NetworkSpec,
    layout: &NetworkLayout,
    index: usize,
    mapping: Mapping,
) -> Result<Arc<LayerProgram>, CompileError> {
    let layer = *net
        .layers()
        .get(index)
        .ok_or(CompileError::LayerIndexOutOfRange {
            index,
            depth: net.depth(),
        })?;
    Ok(Arc::new(LayerProgram {
        layer_index: index,
        layer,
        in_shape: net.layer_input(index),
        out_shape: net.layer_output(index),
        in_vol: layout.volumes[index].clone(),
        out_vol: layout.volumes[index + 1].clone(),
        weight_base: layout.weight_base[index].clone(),
        activation: layer.activation(),
        mapping,
    }))
}

/// Loads a network's parameters into the DRAM image: FC weight matrices are
/// written transposed into their owning vault's region. (Conv kernels are
/// loaded into PE weight memories by the host during programming and are
/// not streamed; their master copy is negligible.) Untimed, like the
/// paper's host programming phase.
///
/// # Panics
///
/// Panics on a malformed parameter set ([`try_load_weights`] reports the
/// mismatch as a typed error instead).
pub fn load_weights(
    net: &NetworkSpec,
    params: &[Vec<Q88>],
    layout: &NetworkLayout,
    storage: &mut neurocube_dram::Storage,
) {
    try_load_weights(net, params, layout, storage).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`load_weights`].
///
/// # Errors
///
/// Returns [`CompileError::WeightLayerCount`] when `params` has the wrong
/// layer count and [`CompileError::WeightImageSize`] when a layer's weight
/// image does not match its declared weight count — checked for *every*
/// layer (streamed or not) before anything is written, so a failed load
/// leaves `storage` untouched.
pub fn try_load_weights(
    net: &NetworkSpec,
    params: &[Vec<Q88>],
    layout: &NetworkLayout,
    storage: &mut neurocube_dram::Storage,
) -> Result<(), CompileError> {
    if params.len() != net.depth() {
        return Err(CompileError::WeightLayerCount {
            expected: net.depth(),
            got: params.len(),
        });
    }
    for (i, layer) in net.layers().iter().enumerate() {
        let expected = layer.weight_count(net.layer_input(i));
        if params[i].len() != expected {
            return Err(CompileError::WeightImageSize {
                layer: i,
                expected,
                got: params[i].len(),
            });
        }
    }
    for (i, layer) in net.layers().iter().enumerate() {
        if !layer.weights_stream() {
            continue;
        }
        let n_in = net.layer_input(i).len();
        let out_vol = &layout.volumes[i + 1];
        for v in 0..layout.vaults as u8 {
            let count = out_vol.assigned_count(v);
            for local in 0..count {
                let neuron = out_vol.assigned_neuron(v, local);
                for k in 0..n_in {
                    let w = params[i][neuron * n_in + k];
                    let addr = layout.fc_weight_addr(i, v, local, k as u64);
                    storage.write_u16(addr, w.to_bits() as u16);
                }
            }
        }
    }
    Ok(())
}

/// Loads a volume's values into every vault that stores a copy of it
/// (the host's untimed "map all data structures of NN into the physical
/// address space of the cube" step, §IV-C).
///
/// # Panics
///
/// Panics when the payload length does not match the volume's shape
/// ([`try_load_volume`] reports it as a typed error instead).
pub fn load_volume(
    vol: &crate::layout::VolumeLayout,
    values: &[Q88],
    vaults: usize,
    storage: &mut neurocube_dram::Storage,
) {
    try_load_volume(vol, values, vaults, storage).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`load_volume`].
///
/// # Errors
///
/// Returns [`CompileError::VolumeSize`] when `values` does not match the
/// volume's shape; nothing is written in that case.
pub fn try_load_volume(
    vol: &crate::layout::VolumeLayout,
    values: &[Q88],
    vaults: usize,
    storage: &mut neurocube_dram::Storage,
) -> Result<(), CompileError> {
    if values.len() != vol.shape.len() {
        return Err(CompileError::VolumeSize {
            expected: vol.shape.len(),
            got: values.len(),
        });
    }
    for v in 0..vaults as u8 {
        for (n, &q) in values.iter().enumerate() {
            if let Some(addr) = vol.local_addr(v, n) {
                storage.write_u16(addr, q.to_bits() as u16);
            }
        }
    }
    Ok(())
}

/// Reads a volume's canonical values back out of DRAM from each neuron's
/// owning vault (the host's read-out of results).
pub fn read_volume(
    vol: &crate::layout::VolumeLayout,
    storage: &neurocube_dram::Storage,
) -> Vec<Q88> {
    (0..vol.shape.len())
        .map(|n| {
            let owner = vol.owner(n);
            let addr = vol
                .local_addr(owner, n)
                .expect("owner stores its own neurons");
            Q88::from_bits(storage.read_u16(addr) as i16)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NetworkLayout;
    use neurocube_dram::MemoryConfig;
    use neurocube_nn::NetworkSpec;

    fn build(duplicate: bool) -> (NetworkSpec, NetworkLayout, Mapping) {
        let net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::fc(8, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let map = MemoryConfig::hmc_int().address_map();
        let layout = NetworkLayout::build(&net, 4, 4, duplicate, 16, &map);
        (net, layout, Mapping::paper(duplicate))
    }

    #[test]
    fn conv_pe_config() {
        let (net, layout, mapping) = build(false);
        let prog = compile_layer(&net, &layout, 0, mapping);
        let cfg = prog.pe_config(0).unwrap();
        assert_eq!(cfg.conns_per_neuron, 9);
        assert_eq!(cfg.maps, 2);
        // 14x14 output over a 4x4 grid: corner tile is 3x3 = 9 pixels...
        // grid_rect(14,14,4,4,0,0) = rows 0..3, cols 0..3.
        assert_eq!(cfg.neurons_per_map, 9);
        assert_eq!(cfg.states, StateMode::PerMac);
        assert!(matches!(
            cfg.weights,
            WeightMode::Local {
                weights_per_neuron: 9,
                rows: 2
            }
        ));
    }

    #[test]
    fn fc_pe_config() {
        let (net, layout, mapping) = build(false);
        let prog = compile_layer(&net, &layout, 1, mapping);
        let cfg = prog.pe_config(3).unwrap();
        assert_eq!(cfg.states, StateMode::Shared);
        assert_eq!(cfg.weights, WeightMode::Stream);
        assert_eq!(cfg.conns_per_neuron, 2 * 14 * 14);
        assert_eq!(cfg.maps, 1);
        // 8 outputs over 16 vaults: half the vaults idle.
        let total: u64 = (0..16u8)
            .filter_map(|p| prog.pe_config(p))
            .map(|c| c.total_neurons())
            .sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn copy_vaults_empty_without_duplication() {
        let (net, layout, mapping) = build(false);
        let prog = compile_layer(&net, &layout, 0, mapping);
        for n in (0..prog.out_shape.len()).step_by(37) {
            let owner = prog.out_vol.owner(n);
            assert!(prog.copy_vaults(n, owner).is_empty());
        }
        for v in 0..16 {
            assert_eq!(prog.expected_foreign_writebacks(v), 0);
        }
    }

    #[test]
    fn copy_vaults_present_with_duplication() {
        // A conv layer feeding another conv layer: the output volume
        // carries halo copies, so boundary neurons are written to
        // neighbouring vaults too.
        let net = NetworkSpec::new(
            Shape::new(1, 20, 20),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::conv(2, 3, Activation::Tanh),
            ],
        )
        .unwrap();
        let map = MemoryConfig::hmc_int().address_map();
        let layout = NetworkLayout::build(&net, 4, 4, true, 16, &map);
        let prog = compile_layer(&net, &layout, 0, Mapping::paper(true));
        let foreign: u64 = (0..16).map(|v| prog.expected_foreign_writebacks(v)).sum();
        assert!(foreign > 0, "halo duplication must require copies");
        // A neuron on a tile boundary has at least one copy vault.
        let boundary = prog.out_vol.owner(0); // neuron 0 sits in the top-left tile corner region
        let _ = boundary;
        let copies: usize = (0..prog.out_shape.len())
            .map(|n| prog.copy_vaults(n, prog.out_vol.owner(n)).len())
            .sum();
        assert_eq!(copies as u64, foreign);
        // FC-consumed spatial volumes are NOT replicated (see layout docs):
        let fc_net = NetworkSpec::new(
            Shape::new(1, 16, 16),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::fc(8, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let fc_layout = NetworkLayout::build(&fc_net, 4, 4, true, 16, &map);
        let fc_prog = compile_layer(&fc_net, &fc_layout, 0, Mapping::paper(true));
        for v in 0..16 {
            assert_eq!(fc_prog.expected_foreign_writebacks(v), 0);
        }
    }

    #[test]
    fn weight_image_pooling_constant() {
        let (net, layout, _) = build(false);
        let _ = (net, layout);
        let net =
            NetworkSpec::new(Shape::new(1, 8, 8), vec![LayerSpec::AvgPool { size: 2 }]).unwrap();
        let map = MemoryConfig::hmc_int().address_map();
        let layout = NetworkLayout::build(&net, 4, 4, false, 16, &map);
        let prog = compile_layer(&net, &layout, 0, Mapping::paper(false));
        let img = prog.pe_weight_image(&[]);
        assert_eq!(img, vec![Q88::from_f64(0.25); 4]);
    }

    #[test]
    fn load_and_read_volume_roundtrip() {
        let (net, layout, _) = build(true);
        let mut storage = neurocube_dram::Storage::new();
        let values: Vec<Q88> = (0..net.input_shape().len())
            .map(|i| Q88::from_bits(i as i16))
            .collect();
        load_volume(&layout.volumes[0], &values, 16, &mut storage);
        assert_eq!(read_volume(&layout.volumes[0], &storage), values);
    }

    #[test]
    fn layer_index_out_of_range_is_typed() {
        let (net, layout, mapping) = build(false);
        let err = try_compile_layer(&net, &layout, 9, mapping).unwrap_err();
        assert_eq!(
            err,
            CompileError::LayerIndexOutOfRange { index: 9, depth: 2 }
        );
        assert_eq!(err.to_string(), "layer index 9 out of range (depth 2)");
    }

    #[test]
    fn weight_layer_count_is_typed_and_writes_nothing() {
        let (net, layout, _) = build(false);
        let mut storage = neurocube_dram::Storage::new();
        let err = try_load_weights(&net, &[], &layout, &mut storage).unwrap_err();
        assert_eq!(
            err,
            CompileError::WeightLayerCount {
                expected: 2,
                got: 0
            }
        );
    }

    #[test]
    fn weight_image_size_is_typed_and_checked_before_writes() {
        let (net, layout, _) = build(false);
        let mut params = net.init_params(1, 0.5);
        params[1].push(Q88::ZERO); // FC image too long; conv image [0] intact
        let mut storage = neurocube_dram::Storage::new();
        let err = try_load_weights(&net, &params, &layout, &mut storage).unwrap_err();
        assert!(matches!(
            err,
            CompileError::WeightImageSize { layer: 1, .. }
        ));
        // Nothing was written: validation precedes all writes.
        let addr = layout.fc_weight_addr(1, 0, 0, 0);
        assert_eq!(storage.read_u16(addr), 0);
    }

    #[test]
    fn volume_size_is_typed() {
        let (_, layout, _) = build(false);
        let mut storage = neurocube_dram::Storage::new();
        let err = try_load_volume(&layout.volumes[0], &[Q88::ONE], 16, &mut storage).unwrap_err();
        assert_eq!(
            err,
            CompileError::VolumeSize {
                expected: 16 * 16,
                got: 1
            }
        );
    }

    #[test]
    fn load_weights_places_transposed_rows() {
        let net = NetworkSpec::new(
            Shape::flat(4),
            vec![LayerSpec::fc(16, Activation::Identity)],
        )
        .unwrap();
        let map = MemoryConfig::hmc_int().address_map();
        let layout = NetworkLayout::build(&net, 4, 4, false, 16, &map);
        let params: Vec<Vec<Q88>> = vec![(0..64).map(Q88::from_bits).collect()];
        let mut storage = neurocube_dram::Storage::new();
        load_weights(&net, &params, &layout, &mut storage);
        // Vault 0 owns output neuron 0 only; its weight for k=2 is
        // params[0][0*4+2] = 2, stored at fc_weight_addr(0, 0, 0, 2).
        let addr = layout.fc_weight_addr(0, 0, 0, 2);
        assert_eq!(storage.read_u16(addr), 2);
    }
}
