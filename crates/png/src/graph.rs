//! The graph compiler: lowering a [`GraphSpec`] DAG into one
//! [`MultiLayerProgram`] — a sequence of [`LayerProgram`] phases whose
//! volumes are placed so each layer's PNGs consume the previous layer's
//! write-backs *in place*, with no host round-trip between layers.
//!
//! Three ideas carry the whole lowering:
//!
//! * **Concat is aliasing, not computation.** Channel-stacking maps each
//!   part onto a channel slice of one shared buffer (channels are the
//!   outermost spatial coordinate, so a slice is just a per-vault base
//!   offset — [`channel_slice`]). Producers write their slice directly;
//!   a `Concat` node compiles to nothing. Multi-input element-wise nodes
//!   reuse the same trick: their operands are laid out as one stacked
//!   buffer the add consumes with a 1×1 kernel.
//! * **Buffers are double-buffered by lifetime.** Every value (graph
//!   input + each node output) lives from its producer phase to its last
//!   consumer phase; a per-vault first-fit free list reclaims dead
//!   extents, so a long chain ping-pongs between two regions instead of
//!   allocating one region per layer like the linear layout does.
//! * **FC weights are permanent.** Streamed weight regions are placed
//!   first and never recycled; only state volumes rotate above them.
//!
//! The per-phase programs are ordinary [`LayerProgram`]s, so every
//! downstream consumer (operand streams, PE configs, write-back cursors,
//! the event horizon) works on compiled graphs unchanged.

use crate::error::CompileError;
use crate::layout::{
    flat_layout, grid_rect, input_rect_for, kernel_geometry, spatial_layout, union_rect, Rect,
    VolumeKind, VolumeLayout,
};
use crate::program::{LayerProgram, Mapping};
use neurocube_dram::{AddressMap, Storage};
use neurocube_fixed::Q88;
use neurocube_nn::{GraphOp, GraphSource, GraphSpec, Shape};
use neurocube_noc::NodeId;
use std::sync::Arc;

/// A view of a channel slice `[lo, hi)` of a stacked volume: same plane
/// tiling and per-vault rectangles, base addresses advanced past the
/// skipped channels (channels are outermost in the local layout). A full
/// slice is the volume itself; flat volumes are never sliced (graph
/// validation rejects flat concat parts).
///
/// # Panics
///
/// Panics when a proper slice of a flat volume is requested.
pub fn channel_slice(vol: &VolumeLayout, lo: usize, hi: usize) -> VolumeLayout {
    debug_assert!(lo < hi && hi <= vol.shape.channels);
    if lo == 0 && hi == vol.shape.channels {
        return vol.clone();
    }
    let VolumeKind::Spatial { stored, .. } = &vol.kind else {
        panic!("flat volumes are never channel-sliced")
    };
    let base = vol
        .base
        .iter()
        .zip(stored)
        .map(|(&b, r)| b + 2 * (lo * r.area()) as u64)
        .collect();
    VolumeLayout {
        shape: Shape::new(hi - lo, vol.shape.height, vol.shape.width),
        kind: vol.kind.clone(),
        base,
    }
}

/// Where a value (graph input or node output) lives: a channel range of
/// one of the compiled buffers.
#[derive(Clone, Copy, Debug)]
struct ValueLoc {
    buffer: usize,
    lo: usize,
    hi: usize,
}

/// A compiled graph: the phase sequence the cube executes for one
/// inference, plus every placement the host needs to load inputs, load
/// weights and read any node's output back.
#[derive(Clone, Debug)]
pub struct MultiLayerProgram {
    /// The validated source graph (node names, shapes, schedule).
    pub graph: GraphSpec,
    /// One program per executable node, in schedule order; `layer_index`
    /// is the phase index.
    pub phases: Vec<Arc<LayerProgram>>,
    /// Graph node index of each phase (`Concat` nodes have no phase).
    pub phase_nodes: Vec<usize>,
    /// Per graph node: the placement of its output value (a channel-slice
    /// view when the value lives inside a stacked buffer).
    pub node_vols: Vec<VolumeLayout>,
    /// Placement of the graph input volume.
    pub input_vol: VolumeLayout,
    /// Per vault: peak bytes allocated at any point of the schedule
    /// (weights + live state volumes).
    pub allocated: Vec<u64>,
    /// Number of vaults.
    pub vaults: usize,
    /// The mapping the graph was compiled for.
    pub mapping: Mapping,
    /// Bytes with no duplication and no buffer reuse: one copy of every
    /// buffer plus the streamed weight matrices.
    minimal: u64,
}

impl MultiLayerProgram {
    /// Placement of the sink node's output.
    pub fn output_vol(&self) -> &VolumeLayout {
        &self.node_vols[self.graph.output_node()]
    }

    /// Peak bytes across the cube.
    pub fn total_bytes(&self) -> u64 {
        self.allocated.iter().sum()
    }

    /// Footprint with one unduplicated copy of every buffer and every
    /// streamed weight matrix (the reuse/duplication baseline).
    pub fn minimal_bytes(&self) -> u64 {
        self.minimal
    }

    /// The graph node a phase executes.
    pub fn node_of(&self, phase: usize) -> usize {
        self.phase_nodes[phase]
    }

    /// Name of the graph node a phase executes.
    pub fn phase_name(&self, phase: usize) -> &str {
        &self.graph.nodes()[self.phase_nodes[phase]].name
    }

    /// The last phase writing into node `i`'s output buffer region —
    /// after this phase completes, `node_vols[i]` holds the node's final
    /// values. For `Concat` nodes this is the latest producing phase of
    /// any part; `None` when every part is the host-loaded graph input.
    pub fn ready_after_phase(&self, node: usize) -> Option<usize> {
        let mut latest = None;
        let mut walk = vec![node];
        while let Some(i) = walk.pop() {
            match self.graph.nodes()[i].op {
                GraphOp::Layer(_) => {
                    let p = self
                        .phase_nodes
                        .iter()
                        .position(|&n| n == i)
                        .expect("every layer node has a phase");
                    latest = Some(latest.map_or(p, |l: usize| l.max(p)));
                }
                GraphOp::Concat => {
                    for &src in self.graph.node_sources(i) {
                        if let GraphSource::Node(j) = src {
                            walk.push(j);
                        }
                    }
                }
            }
        }
        latest
    }
}

fn value_of(src: GraphSource) -> usize {
    match src {
        GraphSource::Input => 0,
        GraphSource::Node(i) => i + 1,
    }
}

fn value_shape(graph: &GraphSpec, val: usize) -> Shape {
    if val == 0 {
        graph.input_shape()
    } else {
        graph.node_output_shape(val - 1)
    }
}

const EMPTY_RECT: Rect = Rect {
    y0: 0,
    y1: 0,
    x0: 0,
    x1: 0,
};

/// First-fit allocation from a sorted free-span list. Zero-byte requests
/// (a vault storing no part of a volume) succeed without consuming space.
fn span_alloc(spans: &mut Vec<(u64, u64)>, bytes: u64) -> Option<u64> {
    if bytes == 0 {
        return Some(spans.first().map_or(0, |s| s.0));
    }
    for i in 0..spans.len() {
        let (s, e) = spans[i];
        if e - s >= bytes {
            if e - s == bytes {
                spans.remove(i);
            } else {
                spans[i].0 = s + bytes;
            }
            return Some(s);
        }
    }
    None
}

/// Returns an extent to the free list, coalescing with both neighbours.
fn span_free(spans: &mut Vec<(u64, u64)>, start: u64, bytes: u64) {
    if bytes == 0 {
        return;
    }
    let pos = spans.partition_point(|&(s, _)| s < start);
    spans.insert(pos, (start, start + bytes));
    if pos + 1 < spans.len() && spans[pos].1 == spans[pos + 1].0 {
        spans[pos].1 = spans[pos + 1].1;
        spans.remove(pos + 1);
    }
    if pos > 0 && spans[pos - 1].1 == spans[pos].0 {
        spans[pos - 1].1 = spans[pos].1;
        spans.remove(pos);
    }
}

/// Compiles a validated graph into a [`MultiLayerProgram`] for `mapping`,
/// placing buffers in the address space described by `map`.
///
/// # Errors
///
/// Returns [`CompileError::VaultOverCapacity`] when the peak footprint of
/// any vault exceeds its DRAM region.
///
/// # Panics
///
/// Panics on caller bugs: a zero `n_mac` or a grid that does not match
/// `map`'s channel count.
pub fn compile_graph(
    graph: &GraphSpec,
    mapping: Mapping,
    map: &AddressMap,
) -> Result<MultiLayerProgram, CompileError> {
    assert!(mapping.n_mac > 0, "n_mac must be nonzero");
    let vaults = mapping.vaults();
    assert_eq!(vaults as u32, map.channels(), "grid must match vault count");
    let (gw, gh) = (mapping.grid_w, mapping.grid_h);
    let n = graph.depth();
    let n_values = n + 1; // value 0 = graph input, value i + 1 = node i's output

    // --- Map every value onto (buffer, channel range). A node that
    // aliases its inputs owns one stacked buffer holding its parts; a
    // Concat's own output IS that buffer. Everything else gets a buffer
    // of its own. Graph validation guarantees these cases are disjoint
    // (one alias consumer per value, no nested concat).
    let mut buffers: Vec<Shape> = Vec::new();
    let mut locs: Vec<Option<ValueLoc>> = vec![None; n_values];
    let mut alias_buf: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        if !graph.aliases_inputs(i) {
            continue;
        }
        let b = buffers.len();
        buffers.push(graph.node_input_shape(i));
        alias_buf[i] = Some(b);
        let mut off = 0;
        for &src in graph.node_sources(i) {
            let val = value_of(src);
            let ch = value_shape(graph, val).channels;
            debug_assert!(locs[val].is_none(), "validated: one alias consumer");
            locs[val] = Some(ValueLoc {
                buffer: b,
                lo: off,
                hi: off + ch,
            });
            off += ch;
        }
        if matches!(graph.nodes()[i].op, GraphOp::Concat) {
            locs[i + 1] = Some(ValueLoc {
                buffer: b,
                lo: 0,
                hi: off,
            });
        }
    }
    for (val, loc) in locs.iter_mut().enumerate() {
        if loc.is_none() {
            let shape = value_shape(graph, val);
            buffers.push(shape);
            *loc = Some(ValueLoc {
                buffer: buffers.len() - 1,
                lo: 0,
                hi: shape.channels,
            });
        }
    }
    let locs: Vec<ValueLoc> = locs.into_iter().map(Option::unwrap).collect();
    let n_buf = buffers.len();
    let mut buf_values: Vec<Vec<usize>> = vec![Vec::new(); n_buf];
    for (val, loc) in locs.iter().enumerate() {
        buf_values[loc.buffer].push(val);
    }

    // --- Consumers per value (graph nodes reading it).
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n_values];
    for i in 0..n {
        for &src in graph.node_sources(i) {
            consumers[value_of(src)].push(i);
        }
    }

    // --- Buffer structure. Spatial buffers take the union of every
    // consumer's halo need (any slice's consumer extends the shared
    // stored rectangles); flat buffers replicate when consumed, exactly
    // like the linear layout.
    let mut kinds: Vec<VolumeKind> = Vec::with_capacity(n_buf);
    for (b, &shape) in buffers.iter().enumerate() {
        if shape.height == 1 && shape.width == 1 {
            let consumed = buf_values[b].iter().any(|&v| !consumers[v].is_empty());
            kinds.push(flat_layout(
                shape.len(),
                vaults,
                mapping.duplicate && consumed,
            ));
            continue;
        }
        let mut needed: Vec<Rect> = vec![EMPTY_RECT; vaults];
        let mut any = false;
        if mapping.duplicate {
            for &val in &buf_values[b] {
                for &c in &consumers[val] {
                    let GraphOp::Layer(layer) = graph.nodes()[c].op else {
                        continue; // a Concat consumer reads nothing
                    };
                    let Some((k, s)) = kernel_geometry(&layer) else {
                        continue; // FC consumers broadcast, no halo
                    };
                    let out_shape = graph.node_output_shape(c);
                    for (v, need) in needed.iter_mut().enumerate() {
                        let (gx, gy) = (v % gw, v / gw);
                        let out = grid_rect(out_shape.height, out_shape.width, gw, gh, gx, gy);
                        *need = union_rect(*need, input_rect_for(out, k, s, shape));
                    }
                    any = true;
                }
            }
        }
        let halo = if any { Some(needed.as_slice()) } else { None };
        kinds.push(spatial_layout(shape, gw, gh, halo));
    }
    let probes: Vec<VolumeLayout> = buffers
        .iter()
        .zip(&kinds)
        .map(|(&shape, kind)| VolumeLayout {
            shape,
            kind: kind.clone(),
            base: vec![0; vaults],
        })
        .collect();
    let probe_view = |val: usize| {
        let loc = locs[val];
        channel_slice(&probes[loc.buffer], loc.lo, loc.hi)
    };

    // --- FC weight regions: permanent, placed first.
    let mut cursor: Vec<u64> = (0..vaults).map(|v| map.channel_base(v as u32)).collect();
    let mut weight_bases: Vec<Option<Vec<u64>>> = vec![None; n];
    for (i, slot) in weight_bases.iter_mut().enumerate() {
        let GraphOp::Layer(layer) = graph.nodes()[i].op else {
            continue;
        };
        if !layer.weights_stream() {
            continue;
        }
        let n_in = graph.node_input_shape(i).len() as u64;
        let out_probe = probe_view(i + 1);
        let mut bases = Vec::with_capacity(vaults);
        for (v, c) in cursor.iter_mut().enumerate() {
            bases.push(*c);
            *c += 2 * n_in * out_probe.assigned_count(v as NodeId);
        }
        *slot = Some(bases);
    }

    // --- Buffer lifetimes on the schedule timeline (step -1 = host
    // loads the input). A buffer is born with its earliest producer and
    // dies after its last consumer; the sink's buffer is never freed
    // (the host reads it after the run).
    let mut birth = vec![isize::MAX; n_buf];
    let mut death = vec![isize::MIN; n_buf];
    for (val, loc) in locs.iter().enumerate() {
        let born = val as isize - 1;
        birth[loc.buffer] = birth[loc.buffer].min(born);
        if let Some(&last) = consumers[val].iter().max() {
            death[loc.buffer] = death[loc.buffer].max(last as isize);
        }
    }
    death[locs[graph.output_node() + 1].buffer] = isize::MAX;

    // --- Place buffers with per-vault first-fit free lists above the
    // weight high-water mark: at each step, allocate that step's births
    // *before* freeing its deaths (a phase's output must never land on
    // its own input). Reclaimed extents make consecutive layers
    // ping-pong between two regions — the double-buffered hand-off.
    let capacity = map.channel_bytes();
    let mut spans: Vec<Vec<(u64, u64)>> = (0..vaults)
        .map(|v| vec![(cursor[v], map.channel_base(v as u32) + capacity)])
        .collect();
    let mut used: Vec<u64> = (0..vaults)
        .map(|v| cursor[v] - map.channel_base(v as u32))
        .collect();
    for (v, &u) in used.iter().enumerate() {
        if u > capacity {
            return Err(CompileError::VaultOverCapacity {
                vault: v,
                needed: u,
                capacity,
            });
        }
    }
    let mut peak = used.clone();
    let mut bases: Vec<Vec<u64>> = vec![vec![0; vaults]; n_buf];
    for t in -1..n as isize {
        for b in 0..n_buf {
            if birth[b] != t {
                continue;
            }
            for v in 0..vaults {
                let bytes = probes[b].bytes_in_vault(v as NodeId);
                match span_alloc(&mut spans[v], bytes) {
                    Some(start) => bases[b][v] = start,
                    None => {
                        return Err(CompileError::VaultOverCapacity {
                            vault: v,
                            needed: used[v] + bytes,
                            capacity,
                        })
                    }
                }
                used[v] += bytes;
                peak[v] = peak[v].max(used[v]);
            }
        }
        for b in 0..n_buf {
            if death[b] != t {
                continue;
            }
            for v in 0..vaults {
                let bytes = probes[b].bytes_in_vault(v as NodeId);
                span_free(&mut spans[v], bases[b][v], bytes);
                used[v] -= bytes;
            }
        }
    }

    let buffer_vols: Vec<VolumeLayout> = buffers
        .iter()
        .zip(&kinds)
        .zip(&bases)
        .map(|((&shape, kind), base)| VolumeLayout {
            shape,
            kind: kind.clone(),
            base: base.clone(),
        })
        .collect();
    let view = |val: usize| {
        let loc = locs[val];
        channel_slice(&buffer_vols[loc.buffer], loc.lo, loc.hi)
    };

    // --- One phase per executable node, reading the producer's buffer
    // (or the full stacked buffer for multi-input element-wise nodes)
    // and writing its own slice in place.
    let mut phases = Vec::new();
    let mut phase_nodes = Vec::new();
    for i in 0..n {
        let GraphOp::Layer(layer) = graph.nodes()[i].op else {
            continue;
        };
        let in_vol = match alias_buf[i] {
            Some(b) => buffer_vols[b].clone(),
            None => view(value_of(graph.node_sources(i)[0])),
        };
        phases.push(Arc::new(LayerProgram {
            layer_index: phases.len(),
            layer,
            in_shape: graph.node_input_shape(i),
            out_shape: graph.node_output_shape(i),
            in_vol,
            out_vol: view(i + 1),
            weight_base: weight_bases[i].clone(),
            activation: layer.activation(),
            mapping,
        }));
        phase_nodes.push(i);
    }

    let minimal: u64 = buffers.iter().map(|s| 2 * s.len() as u64).sum::<u64>()
        + (0..n)
            .filter(|&i| weight_bases[i].is_some())
            .map(|i| {
                2 * graph.node_input_shape(i).len() as u64 * graph.node_output_shape(i).len() as u64
            })
            .sum::<u64>();

    Ok(MultiLayerProgram {
        graph: graph.clone(),
        phases,
        phase_nodes,
        node_vols: (0..n).map(|i| view(i + 1)).collect(),
        input_vol: view(0),
        allocated: peak,
        vaults,
        mapping,
        minimal,
    })
}

/// DRAM address of the FC weight for (`local` output neuron, connection
/// `k`) in `vault`, for one compiled phase — the same group-blocked
/// transposed layout as
/// [`NetworkLayout::fc_weight_addr`](crate::layout::NetworkLayout::fc_weight_addr).
///
/// # Panics
///
/// Panics if the phase's weights do not stream.
pub fn phase_fc_weight_addr(prog: &LayerProgram, vault: NodeId, local: u64, k: u64) -> u64 {
    let bases = prog
        .weight_base
        .as_ref()
        .expect("phase weights do not stream from DRAM");
    let n_mac = u64::from(prog.mapping.n_mac);
    let conns = prog.in_shape.len() as u64;
    let n = prog.out_vol.assigned_count(vault);
    let (group, mac) = (local / n_mac, local % n_mac);
    let width = n_mac.min(n - group * n_mac);
    bases[usize::from(vault)] + 2 * (group * conns * n_mac + k * width + mac)
}

/// Loads a compiled graph's parameters into the DRAM image: one weight
/// array per graph node (empty for `Concat` and weight-less layers), FC
/// matrices written transposed into each phase's weight region. Untimed,
/// like the linear loader.
///
/// # Errors
///
/// Returns [`CompileError::WeightLayerCount`] on a wrong node count and
/// [`CompileError::WeightImageSize`] on a wrong per-node image — checked
/// for every node before anything is written.
pub fn graph_load_weights(
    prog: &MultiLayerProgram,
    params: &[Vec<Q88>],
    storage: &mut Storage,
) -> Result<(), CompileError> {
    let depth = prog.graph.depth();
    if params.len() != depth {
        return Err(CompileError::WeightLayerCount {
            expected: depth,
            got: params.len(),
        });
    }
    for (i, &expected) in prog.graph.weights_per_node().iter().enumerate() {
        if params[i].len() != expected {
            return Err(CompileError::WeightImageSize {
                layer: i,
                expected,
                got: params[i].len(),
            });
        }
    }
    for (p, phase) in prog.phases.iter().enumerate() {
        if !phase.is_fc() {
            continue;
        }
        let node = prog.phase_nodes[p];
        let n_in = phase.in_shape.len();
        for v in 0..prog.vaults as NodeId {
            for local in 0..phase.out_vol.assigned_count(v) {
                let neuron = phase.out_vol.assigned_neuron(v, local);
                for k in 0..n_in {
                    let w = params[node][neuron * n_in + k];
                    let addr = phase_fc_weight_addr(phase, v, local, k as u64);
                    storage.write_u16(addr, w.to_bits() as u16);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NetworkLayout;
    use crate::program::{load_volume, read_volume};
    use neurocube_dram::MemoryConfig;
    use neurocube_fixed::Activation;
    use neurocube_nn::workloads::{concat_toy, residual_toy};
    use neurocube_nn::{GraphBuilder, LayerSpec, NetworkSpec, INPUT};

    fn map16() -> AddressMap {
        MemoryConfig::hmc_int().address_map()
    }

    #[test]
    fn channel_slices_alias_the_parent() {
        let shape = Shape::new(5, 12, 12);
        let kind = spatial_layout(shape, 4, 4, None);
        let vol = VolumeLayout {
            shape,
            kind,
            base: (0..16).map(|v| v * 10_000).collect(),
        };
        let slice = channel_slice(&vol, 2, 4);
        assert_eq!(slice.shape, Shape::new(2, 12, 12));
        let plane = 12 * 12;
        for n in 0..slice.shape.len() {
            let parent = n + 2 * plane; // channel c of the slice = channel c+2
            assert_eq!(slice.owner(n), vol.owner(parent));
            for v in 0..16u8 {
                assert_eq!(slice.local_addr(v, n), vol.local_addr(v, parent));
            }
        }
    }

    #[test]
    fn residual_and_concat_toys_compile() {
        let map = map16();
        for dup in [false, true] {
            let prog = compile_graph(&residual_toy(), Mapping::paper(dup), &map).unwrap();
            assert_eq!(prog.phases.len(), 5); // no Concat nodes: all execute
            assert_eq!(prog.phase_name(0), "stem");
            // Programs agree with the graph's shapes.
            for (p, phase) in prog.phases.iter().enumerate() {
                let i = prog.node_of(p);
                assert_eq!(phase.in_shape, prog.graph.node_input_shape(i));
                assert_eq!(phase.out_shape, prog.graph.node_output_shape(i));
                assert_eq!(phase.out_vol.shape, phase.out_shape);
                assert_eq!(phase.layer_index, p);
            }

            let prog = compile_graph(&concat_toy(), Mapping::paper(dup), &map).unwrap();
            assert_eq!(prog.phases.len(), 3); // "cat" compiles to aliasing
                                              // left/right write disjoint slices of one 5-channel buffer.
            let left = &prog.node_vols[0];
            let right = &prog.node_vols[1];
            let cat = &prog.node_vols[2];
            assert_eq!(cat.shape, Shape::new(5, 10, 10));
            assert_eq!(left.kind, cat.kind);
            assert_eq!(right.kind, cat.kind);
            assert_eq!(left.base, cat.base);
        }
    }

    #[test]
    fn stacked_slices_do_not_interfere() {
        let prog = compile_graph(&concat_toy(), Mapping::paper(true), &map16()).unwrap();
        let mut storage = Storage::new();
        let left = &prog.node_vols[0];
        let right = &prog.node_vols[1];
        let lv: Vec<Q88> = (0..left.shape.len() as i16).map(Q88::from_bits).collect();
        let rv: Vec<Q88> = (0..right.shape.len() as i16)
            .map(|i| Q88::from_bits(-1 - i))
            .collect();
        load_volume(left, &lv, 16, &mut storage);
        load_volume(right, &rv, 16, &mut storage);
        assert_eq!(read_volume(left, &storage), lv);
        assert_eq!(read_volume(right, &storage), rv);
        // The stacked view sees left's channels then right's.
        let cat = read_volume(&prog.node_vols[2], &storage);
        assert_eq!(&cat[..lv.len()], &lv[..]);
        assert_eq!(&cat[lv.len()..], &rv[..]);
    }

    #[test]
    fn linear_chains_recycle_buffers() {
        // A deep chain's peak footprint must undercut the linear layout,
        // which keeps every volume live for the whole run.
        let net = NetworkSpec::new(
            Shape::new(2, 20, 20),
            vec![
                LayerSpec::conv(4, 3, Activation::Tanh),
                LayerSpec::conv(4, 3, Activation::Tanh),
                LayerSpec::conv(4, 3, Activation::Tanh),
                LayerSpec::conv(4, 3, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(10, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let map = map16();
        let graph = compile_graph(&GraphSpec::linear(&net), Mapping::paper(false), &map).unwrap();
        let linear = NetworkLayout::build(&net, 4, 4, false, 16, &map);
        assert!(
            graph.total_bytes() < linear.total_bytes(),
            "graph {} vs linear {}",
            graph.total_bytes(),
            linear.total_bytes()
        );
        // Reuse never goes below the honest baseline: the two largest
        // adjacent volumes must coexist.
        assert!(graph.total_bytes() >= 2 * net.input_shape().len() as u64);
        assert_eq!(graph.minimal_bytes(), linear.minimal_bytes());
    }

    #[test]
    fn over_capacity_is_a_typed_error() {
        let mut g = GraphBuilder::new(Shape::flat(65_536));
        g.layer("big", INPUT, LayerSpec::fc(100_000, Activation::Identity));
        g.layer("head", "big", LayerSpec::fc(8, Activation::Sigmoid));
        let graph = g.build().unwrap();
        let err = compile_graph(&graph, Mapping::paper(false), &map16()).unwrap_err();
        assert!(
            matches!(err, CompileError::VaultOverCapacity { .. }),
            "{err}"
        );
    }

    #[test]
    fn graph_weight_loading_validates_and_places() {
        let prog = compile_graph(&residual_toy(), Mapping::paper(false), &map16()).unwrap();
        let mut storage = Storage::new();
        let wrong_count = vec![Vec::new(); 2];
        assert!(matches!(
            graph_load_weights(&prog, &wrong_count, &mut storage),
            Err(CompileError::WeightLayerCount {
                expected: 5,
                got: 2
            })
        ));
        let mut bad = prog.graph.init_params(7, 0.5);
        bad[0].pop();
        assert!(matches!(
            graph_load_weights(&prog, &bad, &mut storage),
            Err(CompileError::WeightImageSize { layer: 0, .. })
        ));
        let params = prog.graph.init_params(7, 0.5);
        graph_load_weights(&prog, &params, &mut storage).unwrap();
        // The FC head's weights landed at the phase addresses, transposed.
        let head = prog.phases.last().unwrap();
        assert!(head.is_fc());
        let node = *prog.phase_nodes.last().unwrap();
        let n_in = head.in_shape.len();
        let v = (0..16)
            .find(|&v| head.out_vol.assigned_count(v) > 0)
            .unwrap();
        let neuron = head.out_vol.assigned_neuron(v, 0);
        let addr = phase_fc_weight_addr(head, v, 0, 3);
        assert_eq!(
            Q88::from_bits(storage.read_u16(addr) as i16),
            params[node][neuron * n_in + 3]
        );
    }

    #[test]
    fn ready_after_phase_tracks_producers() {
        let prog = compile_graph(&concat_toy(), Mapping::paper(false), &map16()).unwrap();
        // Nodes: 0 left, 1 right, 2 cat, 3 head; phases: left, right, head.
        assert_eq!(prog.ready_after_phase(0), Some(0));
        assert_eq!(prog.ready_after_phase(1), Some(1));
        assert_eq!(prog.ready_after_phase(2), Some(1)); // cat ready once right lands
        assert_eq!(prog.ready_after_phase(3), Some(2));
    }
}
