//! The cycle-level PNG unit: operand stream → vault controller → NoC, and
//! NoC → activation LUT → DRAM write-back (Fig. 8(a)).

use crate::program::LayerProgram;
use crate::schedule::{OperandEvent, OperandStream, WritebackCursor};
use neurocube_dram::{MemorySystem, Request, RequestKind};
use neurocube_fixed::{ActivationLut, Q88};
use neurocube_noc::{NodeId, Packet, PacketKind};
use neurocube_sim::{ScopedStats, StatSource};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Multiplicative hasher for read-request tags. Tags are sequence numbers
/// under a fixed vault prefix, so a Fibonacci multiply spreads them
/// perfectly and the default SipHash (sized for adversarial keys) is pure
/// overhead on the per-read critical path.
#[derive(Clone, Default)]
struct TagHasher(u64);

impl Hasher for TagHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type TagMap = HashMap<u64, (u64, Vec<OperandEvent>), BuildHasherDefault<TagHasher>>;

/// Maximum packets buffered between vault-controller completions and NoC
/// injection (the PNG's packet-encapsulation FIFO).
const OUT_QUEUE_CAP: usize = 32;

/// Maximum write-backs buffered while waiting for channel write slots.
const WRITE_QUEUE_CAP: usize = 32;

/// What the prefetch-read loop would do on the next tick — the outcome of
/// replaying [`Png::tick`]'s break chain without side effects.
enum ReadPath {
    /// The tick issues a read or mutates stream state: not a null tick.
    Active,
    /// Output FIFO at its high-water mark; `live` mirrors the condition
    /// under which the naive loop charges `outq_stalls`.
    OutqStall {
        /// Whether the operand stream still has events to deliver.
        live: bool,
    },
    /// No channel queue slot free: the naive loop charges `queue_stalls`.
    QueueStall,
    /// Every event of the held word batch is run-ahead gated: the naive
    /// loop charges `gate_stalls`.
    GateStall,
    /// Nothing to do and nothing charged.
    Idle,
}

/// Low 48 bits of a write request's tag (the high 16 carry the vault id).
const WRITE_TAG: u64 = 0xFFFF_FFFF_FFFF;

/// Credit-based run-ahead window: a PNG never issues an operand more than
/// this many operations ahead of the destination PE's operation counter.
///
/// Two constraints pick the value. *Deadlock freedom*: in-flight packets
/// must always fit the PE cache — 16 ops × ≤17 packets/op over 16 OP-ID
/// residue classes bounds any sub-bank at 2 × 17 = 34 < 64 entries, so a PE
/// can always accept every in-flight packet even when memory controllers
/// with very different backlogs feed it (the DDR3 configuration).
/// *Throughput*: the PE's full sub-bank search costs `max(16, occupancy)`
/// cycles per operation (§V-B) and hides behind the 16-cycle MAC latency
/// only while sub-banks stay at ≤16 entries — i.e. at most ~one op ahead
/// per residue class, which a 16-op window guarantees. A 16-op window is
/// still 256 cycles of buffering, ample to ride out burst gaps and row
/// activations.
pub const RUN_AHEAD_OPS: u64 = 16;

/// How a PNG attaches to the physical fabric — identity for the HMC
/// (each vault's PNG sits at its own mesh node), or a shared controller
/// node for the DDR3 baseline where several regions' PNG state machines
/// live in one memory controller at one mesh location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PngHookup {
    /// Mesh node where this PNG injects and receives packets.
    pub attach: NodeId,
    /// Channel word size in bytes (4 for HMC vaults, 8 for DDR3) — the
    /// granularity of operand packing.
    pub word_bytes: u64,
    /// Cap on outstanding read requests, so PNGs sharing one physical
    /// channel cannot starve each other.
    pub max_outstanding_reads: usize,
    /// Credit-based run-ahead window in operations (see [`RUN_AHEAD_OPS`]
    /// for the default and the sizing constraints).
    pub run_ahead_ops: u64,
}

/// Per-layer/lifetime PNG counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PngStats {
    /// Operands fetched from DRAM and packetized.
    pub operands_sent: u64,
    /// DRAM read requests issued (≤ operands, thanks to word packing).
    pub reads_issued: u64,
    /// Result packets received (own PE + forwarded copies).
    pub writebacks_received: u64,
    /// Copy packets forwarded to other vaults (duplication maintenance).
    pub copies_forwarded: u64,
    /// DRAM write requests issued.
    pub writes_issued: u64,
    /// Cycles an injection-ready packet waited on NoC backpressure.
    pub inject_stalls: u64,
    /// Read-issue attempts held by the run-ahead window.
    pub gate_stalls: u64,
    /// Read-issue attempts held by a full channel queue.
    pub queue_stalls: u64,
    /// Read-issue attempts held by a full packet-out queue.
    pub outq_stalls: u64,
    /// State/SharedState operands packetized with an exactly-zero payload
    /// — the operands a zero-skipping sequencer could elide from the
    /// stream. Classification only: the shipped timing model still sends
    /// them (see `DESIGN.md` §13).
    pub zero_state_operands: u64,
    /// Weight operands packetized with an exactly-zero payload.
    pub zero_weight_operands: u64,
    /// Own write-backs whose post-activation value is exactly zero (the
    /// ReLU-sparsity source: these become the next layer's zero states).
    pub zero_activations: u64,
}

/// One vault's (region's) Programmable Neurosequence Generator.
///
/// Drive it each reference cycle with [`tick`](Png::tick); deliver channel
/// completions with [`on_completion`](Png::on_completion) and mem-port
/// packets with [`on_result`](Png::on_result) (gated by
/// [`can_take_result`](Png::can_take_result)); poll
/// [`layer_done`](Png::layer_done) — the paper's "layer done" host signal.
#[derive(Debug)]
pub struct Png {
    vault: NodeId,
    hookup: PngHookup,
    lut: Option<ActivationLut>,
    prog: Option<Arc<LayerProgram>>,
    stream: Option<OperandStream>,
    pending_group: Option<(u64, Vec<OperandEvent>)>,
    /// Release summary of a batch held fully gated: per destination in
    /// `pending_group`, the minimum `global_op` among its events. Batches
    /// stall gated for hundreds of cycles on the saturated shapes, and
    /// "every event still gated" is per destination "the minimum
    /// `global_op` still gated", so the per-tick recheck walks these one
    /// or two entries instead of rescanning the whole batch. Non-empty
    /// only while `pending_group` was stored fully gated (gating is
    /// monotone: `progress` only advances, so a batch never re-gates).
    pending_gate: Vec<(NodeId, u64)>,
    pending_event: Option<OperandEvent>,
    inflight: TagMap,
    /// Recycled event-batch buffers: completions return their spent batch
    /// here and group acquisition reuses them, so steady-state streaming
    /// never allocates on the per-word path.
    spare_batches: Vec<Vec<OperandEvent>>,
    next_seq: u64,
    outstanding_reads: usize,
    out_queue: VecDeque<Packet>,
    copy_queue: VecDeque<Packet>,
    copy_high_water: usize,
    inject_toggle: bool,
    own_cursor: Option<WritebackCursor>,
    foreign_cursors: Vec<Option<WritebackCursor>>,
    own_remaining: u64,
    foreign_remaining: u64,
    pending_writes: VecDeque<(u64, u16)>,
    write_pair: Option<(u64, u16, u64)>,
    outstanding_writes: u64,
    stats: PngStats,
    /// In lenient mode malformed packets/completions become counted drops
    /// instead of panics; fault-free runs keep `debug_assert!` teeth.
    lenient: bool,
    /// Mem-port packets the PNG could not attribute and dropped.
    dropped_packets: u64,
    /// Channel completions whose tag this PNG never issued.
    unknown_completions: u64,
    /// One-shot flag: the first drop emits a rich diagnostic.
    diagnosed: bool,
}

impl Png {
    /// Creates an idle PNG for `vault` with the given fabric hookup.
    pub fn new(vault: NodeId, hookup: PngHookup) -> Png {
        Png {
            vault,
            hookup,
            lut: None,
            prog: None,
            stream: None,
            pending_group: None,
            pending_gate: Vec::new(),
            pending_event: None,
            inflight: TagMap::default(),
            spare_batches: Vec::new(),
            next_seq: 0,
            outstanding_reads: 0,
            out_queue: VecDeque::new(),
            copy_queue: VecDeque::new(),
            copy_high_water: 0,
            inject_toggle: false,
            own_cursor: None,
            foreign_cursors: Vec::new(),
            own_remaining: 0,
            foreign_remaining: 0,
            pending_writes: VecDeque::new(),
            write_pair: None,
            outstanding_writes: 0,
            stats: PngStats::default(),
            lenient: false,
            dropped_packets: 0,
            unknown_completions: 0,
            diagnosed: false,
        }
    }

    /// Switches malformed-input handling between panicking (strict, the
    /// default) and counted drops (lenient). The core system enables this
    /// whenever a fault injector is attached, since injected faults make
    /// otherwise-impossible packet states reachable.
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Mem-port packets dropped by the lenient paths.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Channel completions ignored because their tag was unknown.
    pub fn unknown_completions(&self) -> u64 {
        self.unknown_completions
    }

    /// Graceful-degradation path for a mem-port packet this PNG cannot
    /// attribute to its expected write-back sequence: count and drop.
    fn drop_result(&mut self, pkt: Packet, why: &str) {
        self.dropped_packets += 1;
        if !self.diagnosed {
            self.diagnosed = true;
            eprintln!(
                "neurocube-png: PNG {} dropping mem-port packet: {why} \
                 ({pkt:?}); counted under fault.png.dropped_packets, \
                 further drops are silent",
                self.vault,
            );
        }
    }

    /// Graceful-degradation path for a channel completion this PNG never
    /// issued (or has no record of): count and ignore.
    fn drop_completion(&mut self, tag: u64, why: &str) {
        self.unknown_completions += 1;
        if !self.diagnosed {
            self.diagnosed = true;
            eprintln!(
                "neurocube-png: PNG {} ignoring channel completion with tag \
                 {tag:#x}: {why}; counted under fault.png.unknown_completions, \
                 further drops are silent",
                self.vault,
            );
        }
    }

    /// The standard HMC hookup: PNG of vault `v` at mesh node `v`, 32-bit
    /// words, a full private request queue.
    pub fn hmc(vault: NodeId) -> Png {
        Png::new(
            vault,
            PngHookup {
                attach: vault,
                word_bytes: 4,
                max_outstanding_reads: 48,
                run_ahead_ops: RUN_AHEAD_OPS,
            },
        )
    }

    /// The vault (region) this PNG controls.
    pub fn vault(&self) -> NodeId {
        self.vault
    }

    /// The mesh node this PNG injects at.
    pub fn attach(&self) -> NodeId {
        self.hookup.attach
    }

    /// Counters.
    pub fn stats(&self) -> &PngStats {
        &self.stats
    }

    /// One-line queue snapshot for deadlock diagnostics:
    /// `(out_queue, pending_writes, outstanding_reads, outstanding_writes,
    /// own_remaining, foreign_remaining, gated_head_op)`.
    pub fn debug_state(&self) -> (usize, usize, usize, u64, u64, u64, Option<u64>) {
        (
            self.out_queue.len(),
            self.pending_writes.len(),
            self.outstanding_reads,
            self.outstanding_writes,
            self.own_remaining,
            self.foreign_remaining,
            self.pending_group
                .as_ref()
                .map(|g| g.1[0].global_op)
                .or(self.pending_event.map(|e| e.global_op)),
        )
    }

    /// Programs the PNG for one layer: loads the configuration registers,
    /// rebuilds the address-generation FSM and the activation LUT
    /// (Fig. 8(c)'s configuration-enable phase).
    pub fn configure(&mut self, prog: Arc<LayerProgram>) {
        self.lut = Some(ActivationLut::new(prog.activation));
        self.stream = Some(OperandStream::new(Arc::clone(&prog), self.vault));
        self.pending_group = None;
        self.pending_gate.clear();
        self.pending_event = None;
        self.inflight.clear();
        self.outstanding_reads = 0;
        self.out_queue.clear();
        self.copy_queue.clear();
        self.own_remaining = prog.out_vol.assigned_count(self.vault);
        self.foreign_remaining = prog.expected_foreign_writebacks(self.vault);
        self.own_cursor = Some(WritebackCursor::new(
            Arc::clone(&prog),
            self.vault,
            self.vault,
        ));
        self.foreign_cursors = (0..prog.mapping.vaults()).map(|_| None).collect();
        self.pending_writes.clear();
        self.write_pair = None;
        self.outstanding_writes = 0;
        self.prog = Some(prog);
    }

    /// `true` when every operand has been streamed, every expected
    /// write-back received and committed to DRAM, and all queues drained —
    /// the "layer done" signal (§IV-B).
    pub fn layer_done(&self) -> bool {
        self.prog.is_some()
            && self.stream.as_ref().is_none_or(OperandStream::is_exhausted)
            && self.pending_group.is_none()
            && self.pending_event.is_none()
            && self.inflight.is_empty()
            && self.out_queue.is_empty()
            && self.copy_queue.is_empty()
            && self.own_remaining == 0
            && self.foreign_remaining == 0
            && self.pending_writes.is_empty()
            && self.write_pair.is_none()
            && self.outstanding_writes == 0
    }

    fn queue_write(&mut self, addr: u64, data: u16, now: u64) {
        // Pair two adjacent 16-bit writes into one 32-bit word write.
        match self.write_pair.take() {
            // Addresses are 2-byte aligned, so bit 0 is free to mark the
            // two halves of a paired 32-bit word write.
            Some((a, d, _)) if addr == a + 2 && a % 4 == 0 => {
                self.pending_writes.push_back((a | 1, d));
                self.pending_writes.push_back((addr | 1, data));
            }
            Some((a, d, _)) => {
                self.pending_writes.push_back((a, d));
                self.write_pair = Some((addr, data, now));
            }
            None => {
                self.write_pair = Some((addr, data, now));
            }
        }
    }

    fn flush_stale_pair(&mut self, now: u64) {
        if let Some((a, d, at)) = self.write_pair {
            if now > at {
                self.pending_writes.push_back((a, d));
                self.write_pair = None;
            }
        }
    }

    /// `true` when the PNG can absorb a mem-port packet from `src` this
    /// cycle; when `false`, the caller leaves the packet in the router
    /// (backpressure).
    ///
    /// Own-PE results may fan out into duplication copies, so they also
    /// need injection-queue headroom; *foreign* copies only need a write
    /// slot and are always drained while DRAM writes flow — the property
    /// that keeps the all-to-all replication of a duplicated FC input from
    /// deadlocking the fabric (receive readiness must never depend on send
    /// readiness).
    pub fn can_take_result(&self, src: NodeId) -> bool {
        let _ = src;
        self.pending_writes.len() + 2 <= WRITE_QUEUE_CAP
    }

    /// Peak replication-buffer occupancy (sizing statistic; see
    /// `DESIGN.md` on the duplication-maintenance buffer).
    pub fn copy_queue_high_water(&self) -> usize {
        self.copy_high_water
    }

    /// Handles a `Result` packet delivered to this PNG's mem port: applies
    /// the activation LUT (own results), writes the state to DRAM and
    /// forwards duplication copies.
    ///
    /// A packet that does not match the expected write-back sequence is a
    /// counted drop in lenient mode (see [`set_lenient`](Self::set_lenient)).
    ///
    /// # Panics
    ///
    /// In strict debug builds, panics if the PNG is unconfigured or the
    /// packet does not match the expected write-back sequence.
    pub fn on_result(&mut self, pkt: Packet, now: u64) {
        let Some(prog) = self.prog.clone() else {
            debug_assert!(self.lenient, "PNG {} not configured", self.vault);
            return self.drop_result(pkt, "PNG not configured");
        };
        if pkt.kind != PacketKind::Result {
            debug_assert!(self.lenient, "{:?} packet at the mem port", pkt.kind);
            return self.drop_result(pkt, "non-Result packet at the mem port");
        }
        self.stats.writebacks_received += 1;
        if pkt.src == self.vault {
            // Own PE's pre-activation result: LUT, write, replicate.
            let next = self.own_cursor.as_mut().expect("configured").next();
            let Some((neuron, addr)) = next else {
                debug_assert!(self.lenient, "unexpected extra own write-back");
                return self.drop_result(pkt, "unexpected extra own write-back");
            };
            let y = Q88::from_bits(pkt.data as i16);
            let x = self.lut.as_ref().expect("configured").apply(y);
            if x.to_bits() == 0 {
                self.stats.zero_activations += 1;
            }
            self.queue_write(addr, x.to_bits() as u16, now);
            self.own_remaining -= 1;
            for u in prog.copy_vaults(neuron, self.vault) {
                self.copy_queue.push_back(Packet {
                    dst: u,
                    src: self.vault,
                    mac_id: pkt.mac_id,
                    op_id: pkt.op_id,
                    kind: PacketKind::Result,
                    data: x.to_bits() as u16,
                });
                self.stats.copies_forwarded += 1;
            }
            self.copy_high_water = self.copy_high_water.max(self.copy_queue.len());
        } else {
            // A forwarded (already activated) copy from another vault.
            if usize::from(pkt.src) >= self.foreign_cursors.len() {
                debug_assert!(self.lenient, "write-back from unknown vault {}", pkt.src);
                return self.drop_result(pkt, "write-back from an unknown vault");
            }
            let cursor = self.foreign_cursors[usize::from(pkt.src)].get_or_insert_with(|| {
                WritebackCursor::new(Arc::clone(&prog), pkt.src, self.vault)
            });
            let Some((_, addr)) = cursor.next() else {
                debug_assert!(self.lenient, "unexpected extra foreign write-back");
                return self.drop_result(pkt, "unexpected extra foreign write-back");
            };
            self.queue_write(addr, pkt.data, now);
            self.foreign_remaining -= 1;
        }
    }

    /// Handles a completion from this PNG's physical channel (dispatched by
    /// the system by tag).
    ///
    /// A completion whose tag this PNG never issued is a counted drop in
    /// lenient mode (see [`set_lenient`](Self::set_lenient)).
    ///
    /// # Panics
    ///
    /// In strict debug builds, panics on a completion whose tag this PNG
    /// never issued.
    pub fn on_completion(&mut self, tag: u64, data: u64) {
        if tag & WRITE_TAG == WRITE_TAG {
            if self.outstanding_writes == 0 {
                debug_assert!(self.lenient, "write completion with none outstanding");
                return self.drop_completion(tag, "no write is outstanding");
            }
            self.outstanding_writes -= 1;
            return;
        }
        let Some((word, mut evs)) = self.inflight.remove(&tag) else {
            debug_assert!(self.lenient, "completion for unknown tag {tag:#x}");
            return self.drop_completion(tag, "completion for unknown tag");
        };
        self.outstanding_reads -= 1;
        for ev in evs.drain(..) {
            let shift = (ev.addr - word) * 8;
            let payload = ((data >> shift) & 0xFFFF) as u16;
            if payload == 0 {
                // Zero-operand classification by stream kind (a DRAM read
                // only ever produces operand packets, never Results).
                if ev.kind == PacketKind::Weight {
                    self.stats.zero_weight_operands += 1;
                } else {
                    self.stats.zero_state_operands += 1;
                }
            }
            self.out_queue.push_back(Packet {
                dst: ev.dst,
                src: self.hookup.attach,
                mac_id: ev.mac_id,
                op_id: ev.op_id,
                kind: ev.kind,
                data: payload,
            });
            self.stats.operands_sent += 1;
        }
        if self.spare_batches.len() < 64 {
            self.spare_batches.push(evs);
        }
    }

    /// The tag namespace marker for this PNG (high 16 bits).
    fn tag_base(&self) -> u64 {
        u64::from(self.vault) << 48
    }

    /// The vault id encoded in a request tag (for system-level dispatch).
    pub fn vault_of_tag(tag: u64) -> NodeId {
        (tag >> 48) as NodeId
    }

    /// Advances one reference cycle: issues DRAM writes and prefetch
    /// reads. (Channel ticking, completion dispatch and NoC injection are
    /// the system's job — channels and attach nodes may be shared.)
    ///
    /// `progress` is the system's canonical per-PE operation-counter array
    /// (the credit-return path of the run-ahead flow control): the PNG
    /// reads it in place rather than holding a per-PNG mirror, so the
    /// credit "broadcast" is one shared slice instead of sixteen copies.
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem, progress: &[u64]) {
        if self.prog.is_none() {
            return;
        }
        let region = u32::from(self.vault);
        self.flush_stale_pair(now);

        // 1. Issue queued DRAM writes (priority over reads so write-back
        //    never deadlocks behind the operand stream).
        while !self.pending_writes.is_empty() && mem.free_slots(region) > 0 {
            let (addr, data) = self.pending_writes[0];
            let (req, skip) = if addr & 1 == 1 {
                let (a2, d2) = self.pending_writes[1];
                debug_assert_eq!(a2 & !1, (addr & !1) + 2);
                (
                    Request {
                        addr: addr & !1,
                        tag: self.tag_base() | WRITE_TAG,
                        kind: RequestKind::Write(u64::from(data) | (u64::from(d2) << 16)),
                    },
                    2,
                )
            } else {
                (
                    Request {
                        addr,
                        tag: self.tag_base() | WRITE_TAG,
                        kind: RequestKind::Write16(data),
                    },
                    1,
                )
            };
            if mem.try_enqueue(region, req) {
                for _ in 0..skip {
                    self.pending_writes.pop_front();
                }
                self.outstanding_writes += 1;
                self.stats.writes_issued += 1;
            } else {
                break;
            }
        }

        // 2. Issue prefetch reads: group stream operands sharing one
        //    channel word into a single request (§V-B: "the PNG receives
        //    32 bit data and encapsulates that into two packets").
        let word_mask = !(self.hookup.word_bytes - 1);
        loop {
            if self.out_queue.len() >= OUT_QUEUE_CAP / 2 {
                if self.stream.as_ref().is_some_and(|st| !st.is_exhausted()) {
                    self.stats.outq_stalls += 1;
                }
                break;
            }
            if self.outstanding_reads >= self.hookup.max_outstanding_reads {
                break;
            }
            if mem.free_slots(region) == 0 {
                self.stats.queue_stalls += 1;
                break;
            }
            let group = match self.pending_group.take() {
                Some(g) => {
                    // Held-batch fast recheck: the cached per-destination
                    // minima decide "still fully gated" without touching
                    // the batch itself.
                    if !self.pending_gate.is_empty() && self.held_still_gated(progress) {
                        self.pending_group = Some(g);
                        self.stats.gate_stalls += 1;
                        break;
                    }
                    self.pending_gate.clear();
                    g
                }
                None => {
                    let first = match self
                        .pending_event
                        .take()
                        .or_else(|| self.stream.as_mut().and_then(OperandStream::next))
                    {
                        Some(e) => e,
                        None => break,
                    };
                    let word = first.addr & word_mask;
                    let mut evs = self
                        .spare_batches
                        .pop()
                        .unwrap_or_else(|| Vec::with_capacity(16));
                    evs.push(first);
                    while evs.len() < 16 {
                        match self.stream.as_mut().and_then(OperandStream::next) {
                            Some(e) if e.addr & word_mask == word => evs.push(e),
                            Some(e) => {
                                self.pending_event = Some(e);
                                break;
                            }
                            None => break,
                        }
                    }
                    (word, evs)
                }
            };
            // Run-ahead gate: hold the stream (in order) until every
            // destination PE is close enough for its cache to absorb the
            // batch. A word batch can merge operands for *different* PEs
            // (adjacent pixels on a tile boundary), so every event must
            // pass — gating only the head would leak a neighbour's operand
            // hundreds of operations early and alias its OP-ID in the
            // receiving PE's cache.
            let gated = group.1.iter().filter(|ev| self.gated(ev, progress)).count();
            if gated == group.1.len() {
                // Nothing in the batch may fly yet; hold it (in order).
                self.note_held(&group.1);
                self.pending_group = Some(group);
                self.stats.gate_stalls += 1;
                break;
            }
            let group = if gated == 0 {
                // Common case: the whole batch flies, nothing to allocate.
                group
            } else {
                // A word batch can weld a currently-needed operand to one
                // many operations ahead (adjacent addresses, e.g. the same
                // pixel of different feature maps). Split it: fetch the word
                // now for the releasable operands and re-fetch it later for
                // the held ones — holding the whole batch would deadlock
                // (the PE cannot progress without the needed operand), and
                // releasing the future ones would alias OP-IDs in the PE
                // cache. Per-destination ordering is preserved because
                // `global_op` is monotone along the stream for each PE.
                let (word, mut evs) = group;
                let mut pass = self
                    .spare_batches
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(16));
                let mut held = self
                    .spare_batches
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(16));
                for ev in evs.drain(..) {
                    if self.gated(&ev, progress) {
                        held.push(ev);
                    } else {
                        pass.push(ev);
                    }
                }
                if self.spare_batches.len() < 64 {
                    self.spare_batches.push(evs);
                }
                self.note_held(&held);
                self.pending_group = Some((word, held));
                (word, pass)
            };
            let tag = self.tag_base() | self.next_seq;
            let req = Request {
                addr: group.0,
                tag,
                kind: RequestKind::Read,
            };
            if mem.try_enqueue(region, req) {
                self.next_seq += 1;
                debug_assert!(self.next_seq & WRITE_TAG != WRITE_TAG);
                self.inflight.insert(tag, group);
                self.outstanding_reads += 1;
                self.stats.reads_issued += 1;
            } else {
                self.pending_group = Some(group);
                break;
            }
        }
    }

    /// Run-ahead gate predicate: `true` when the destination PE is too far
    /// behind for its operand cache to absorb this event yet (§V-B). Shared
    /// by [`tick`](Self::tick)'s batch partition and the event-horizon
    /// classifier so the two can never disagree. `progress` is the shared
    /// per-PE counter array; an out-of-range destination reads as
    /// `u64::MAX` ("no such PE"), which never gates.
    fn gated(&self, ev: &OperandEvent, progress: &[u64]) -> bool {
        let progress = progress
            .get(usize::from(ev.dst))
            .copied()
            .unwrap_or(u64::MAX);
        progress != u64::MAX && ev.global_op > progress + self.hookup.run_ahead_ops
    }

    /// Rebuilds [`pending_gate`](Self::pending_gate) for a batch about to
    /// be held fully gated: per destination, the minimum `global_op` among
    /// its events (a word batch almost always targets one PE, so this is
    /// usually a single entry).
    fn note_held(&mut self, evs: &[OperandEvent]) {
        self.pending_gate.clear();
        for ev in evs {
            match self.pending_gate.iter_mut().find(|(d, _)| *d == ev.dst) {
                Some((_, min_op)) => *min_op = (*min_op).min(ev.global_op),
                None => self.pending_gate.push((ev.dst, ev.global_op)),
            }
        }
    }

    /// `true` while the held batch is still fully gated — equivalent to
    /// `evs.iter().all(gated)` because per destination "every event
    /// gated" is exactly "the minimum `global_op` gated".
    fn held_still_gated(&self, progress: &[u64]) -> bool {
        self.pending_gate.iter().all(|&(dst, min_op)| {
            let pr = progress.get(usize::from(dst)).copied().unwrap_or(u64::MAX);
            pr != u64::MAX && min_op > pr + self.hookup.run_ahead_ops
        })
    }

    /// Classifies what [`tick`](Self::tick)'s prefetch-read loop would do
    /// *right now*, mirroring its break chain exactly (same checks, same
    /// order). Used by [`next_event`](Self::next_event) to decide whether a
    /// tick is null and by [`skip`](Self::skip) to bulk-charge the stall
    /// counter the naive loop would have incremented each cycle.
    fn read_path_state(&self, mem: &MemorySystem, progress: &[u64]) -> ReadPath {
        if self.out_queue.len() >= OUT_QUEUE_CAP / 2 {
            return ReadPath::OutqStall {
                live: self.stream.as_ref().is_some_and(|st| !st.is_exhausted()),
            };
        }
        if self.outstanding_reads >= self.hookup.max_outstanding_reads {
            return ReadPath::Idle;
        }
        if mem.free_slots(u32::from(self.vault)) == 0 {
            return ReadPath::QueueStall;
        }
        if let Some((_, evs)) = &self.pending_group {
            let all_gated = if self.pending_gate.is_empty() {
                evs.iter().all(|ev| self.gated(ev, progress))
            } else {
                self.held_still_gated(progress)
            };
            if all_gated {
                return ReadPath::GateStall;
            }
            return ReadPath::Active;
        }
        // With no held batch, any available event would be *taken* this
        // tick (group acquisition mutates the stream even if the result
        // ends up gated), so a live stream or buffered event means the
        // tick is not null.
        if self.pending_event.is_some() || self.stream.as_ref().is_some_and(|st| !st.is_exhausted())
        {
            return ReadPath::Active;
        }
        ReadPath::Idle
    }

    /// The earliest future cycle at which [`tick`](Self::tick) could change
    /// state, or `None` if the tick at `now` is already non-null (the
    /// event-horizon contract; see `neurocube-sim`'s `Clocked::next_event`).
    ///
    /// `Some(t)` promises ticks in `[now, t)` only increment stall
    /// counters, which [`skip`](Self::skip) bulk-charges. Completions,
    /// ejected results and credit returns arrive through separate entry
    /// points whose quiescence the *system* stages account for.
    pub fn next_event(&self, now: u64, mem: &MemorySystem, progress: &[u64]) -> Option<u64> {
        if self.prog.is_none() {
            return Some(u64::MAX);
        }
        let mut horizon = u64::MAX;
        if let Some((_, _, at)) = self.write_pair {
            if now > at {
                // flush_stale_pair moves the pair this very tick.
                return None;
            }
            horizon = at + 1;
        }
        if !self.pending_writes.is_empty() && mem.free_slots(u32::from(self.vault)) > 0 {
            return None;
        }
        if matches!(self.read_path_state(mem, progress), ReadPath::Active) {
            return None;
        }
        Some(horizon)
    }

    /// Reproduces the effect of ticking every cycle in `[from, to)` given
    /// that [`next_event`](Self::next_event) reported all of them null:
    /// bulk-charges whichever stall counter the naive loop was
    /// incrementing.
    pub fn skip(&mut self, from: u64, to: u64, mem: &MemorySystem, progress: &[u64]) {
        if self.prog.is_none() {
            return;
        }
        let cycles = to - from;
        match self.read_path_state(mem, progress) {
            ReadPath::OutqStall { live: true } => self.stats.outq_stalls += cycles,
            ReadPath::QueueStall => self.stats.queue_stalls += cycles,
            ReadPath::GateStall => self.stats.gate_stalls += cycles,
            ReadPath::OutqStall { live: false } | ReadPath::Idle => {}
            ReadPath::Active => unreachable!("skip() over a non-null PNG tick"),
        }
    }

    /// Whether the next injection comes from the replication (copy) queue
    /// rather than the operand queue: round-robin between the two, falling
    /// back to whichever is non-empty.
    fn inject_from_copies(&self) -> bool {
        match (self.copy_queue.is_empty(), self.out_queue.is_empty()) {
            (false, true) => true,
            (false, false) => self.inject_toggle,
            _ => false,
        }
    }

    /// The next packet ready for NoC injection, if any. The *system*
    /// injects (one packet per mesh node per cycle, arbitrating between
    /// PNGs that share an attach node on a low-channel-count memory).
    /// Operand packets and duplication copies share the injection port
    /// round-robin.
    pub fn peek_outgoing(&self) -> Option<&Packet> {
        if self.inject_from_copies() {
            self.copy_queue.front()
        } else {
            self.out_queue.front()
        }
    }

    /// Removes the packet returned by [`peek_outgoing`](Self::peek_outgoing)
    /// after a successful injection.
    pub fn pop_outgoing(&mut self) -> Option<Packet> {
        let from_copies = self.inject_from_copies();
        self.inject_toggle = !self.inject_toggle;
        if from_copies {
            self.copy_queue.pop_front()
        } else {
            self.out_queue.pop_front()
        }
    }

    /// Records one cycle of injection backpressure (statistics).
    pub fn note_inject_stall(&mut self) {
        self.stats.inject_stalls += 1;
    }
}

impl StatSource for Png {
    fn report(&self, stats: &mut ScopedStats<'_>) {
        stats.counter("operands_sent", self.stats.operands_sent);
        stats.counter("reads_issued", self.stats.reads_issued);
        stats.counter("writebacks_received", self.stats.writebacks_received);
        stats.counter("copies_forwarded", self.stats.copies_forwarded);
        stats.counter("writes_issued", self.stats.writes_issued);
        stats.counter("inject_stalls", self.stats.inject_stalls);
        stats.counter("gate_stalls", self.stats.gate_stalls);
        stats.counter("queue_stalls", self.stats.queue_stalls);
        stats.counter("outq_stalls", self.stats.outq_stalls);
        stats.counter("zero_state_operands", self.stats.zero_state_operands);
        stats.counter("zero_weight_operands", self.stats.zero_weight_operands);
        stats.counter("zero_activations", self.stats.zero_activations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NetworkLayout;
    use crate::program::{compile_layer, load_volume, read_volume, Mapping};
    use neurocube_dram::MemoryConfig;
    use neurocube_fixed::Activation;
    use neurocube_nn::{LayerSpec, NetworkSpec, Shape, Tensor};
    use neurocube_noc::{Network, Topology};

    /// A miniature end-to-end harness: PNGs + NoC, with a *perfect* PE stub
    /// that instantly bounces back results — exercising the PNG's fetch,
    /// packetize, inject and write-back machinery in isolation (full PE
    /// integration lives in the core crate).
    #[test]
    fn png_streams_all_operands_for_dup_conv() {
        let net = NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![LayerSpec::conv(1, 3, Activation::Identity)],
        )
        .unwrap();
        let map_cfg = MemoryConfig::hmc_int();
        let layout = NetworkLayout::build(&net, 4, 4, true, 16, &map_cfg.address_map());
        let prog = compile_layer(&net, &layout, 0, Mapping::paper(true));
        let mut mem = MemorySystem::new(map_cfg);
        let mut net_fab = Network::new(Topology::mesh4x4());

        let input = Tensor::from_vec(1, 8, 8, (0..64).map(|i| Q88::from_bits(i as i16)).collect());
        load_volume(&layout.volumes[0], input.as_slice(), 16, mem.storage_mut());

        let mut pngs: Vec<Png> = (0..16u8).map(Png::hmc).collect();
        for p in &mut pngs {
            p.configure(Arc::clone(&prog));
        }

        let mut received = vec![0u64; 16];
        let mut group_ops: Vec<u64> = vec![0; 16];
        let mut groups_sent = [0u64; 16];
        for now in 0..200_000u64 {
            for p in &mut pngs {
                p.tick(now, &mut mem, &[]);
                if let Some(&pkt) = p.peek_outgoing() {
                    if net_fab.try_inject_from_mem(p.attach(), pkt, now) {
                        p.pop_outgoing();
                    }
                }
            }
            for ch in 0..16 {
                if let Some(c) = mem.tick_channel(ch, now) {
                    let v = Png::vault_of_tag(c.tag);
                    pngs[usize::from(v)].on_completion(c.tag, c.data);
                }
            }
            // Drain mem ports into owning PNGs.
            for node in 0..16u8 {
                if let Some(&pkt) = net_fab.peek_for_mem(node, now) {
                    if pngs[usize::from(node)].can_take_result(pkt.src) {
                        let pkt = net_fab.pop_for_mem(node, now).unwrap();
                        pngs[usize::from(node)].on_result(pkt, now);
                    }
                }
            }
            net_fab.tick(now);
            for node in 0..16u8 {
                if let Some(pkt) = net_fab.pop_for_pe(node, now) {
                    assert_eq!(pkt.dst, node);
                    received[usize::from(node)] += 1;
                    group_ops[usize::from(node)] += 1;
                    if let Some(cfg) = prog.pe_config(node) {
                        let g = groups_sent[usize::from(node)];
                        if g < prog.groups_of(node) {
                            let expected =
                                u64::from(cfg.active_macs(g)) * u64::from(cfg.conns_per_neuron);
                            if group_ops[usize::from(node)] == expected {
                                group_ops[usize::from(node)] = 0;
                                for m in 0..cfg.active_macs(g) {
                                    let r = Packet {
                                        dst: node,
                                        src: node,
                                        mac_id: m as u8,
                                        op_id: (g % 256) as u8,
                                        kind: PacketKind::Result,
                                        data: Q88::from_f64(1.0).to_bits() as u16,
                                    };
                                    assert!(net_fab.try_inject_from_pe(node, r, now));
                                }
                                groups_sent[usize::from(node)] += 1;
                            }
                        }
                    }
                }
            }
            if pngs.iter().all(Png::layer_done) && net_fab.is_idle() {
                break;
            }
        }
        assert!(
            pngs.iter().all(Png::layer_done),
            "PNGs did not finish: received {received:?}"
        );
        let total: u64 = received.iter().sum();
        assert_eq!(total, net.macs_per_layer()[0]);
        let out = read_volume(&layout.volumes[1], mem.storage());
        assert!(out.iter().all(|&q| q == Q88::from_f64(1.0)));
        let reads: u64 = pngs.iter().map(|p| p.stats().reads_issued).sum();
        assert!(reads < total, "reads {reads} should pack operands {total}");
    }

    /// The de-panicked paths: malformed packets and spurious completions
    /// must become counted drops in lenient mode, never crashes, and must
    /// leave the PNG able to operate normally.
    #[test]
    fn lenient_mode_counts_drops_instead_of_panicking() {
        let mut png = Png::hmc(0);
        png.set_lenient(true);
        // Unconfigured: any mem-port packet is dropped.
        let stray = Packet {
            dst: 0,
            src: 3,
            mac_id: 0,
            op_id: 0,
            kind: PacketKind::Result,
            data: 7,
        };
        png.on_result(stray, 5);
        assert_eq!(png.dropped_packets(), 1);
        // Spurious completions: unknown read tag, write with none pending.
        png.on_completion(0x1234, 0);
        png.on_completion(WRITE_TAG, 0);
        assert_eq!(png.unknown_completions(), 2);

        // Configure, then feed write-backs from impossible sources.
        let net = NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![LayerSpec::conv(1, 3, Activation::Identity)],
        )
        .unwrap();
        let map_cfg = MemoryConfig::hmc_int();
        let layout = NetworkLayout::build(&net, 4, 4, true, 16, &map_cfg.address_map());
        let prog = compile_layer(&net, &layout, 0, Mapping::paper(true));
        png.configure(Arc::clone(&prog));
        let from_mars = Packet { src: 200, ..stray };
        png.on_result(from_mars, 6);
        let wrong_kind = Packet {
            kind: PacketKind::State,
            ..stray
        };
        png.on_result(wrong_kind, 7);
        assert_eq!(png.dropped_packets(), 3);
        assert!(!png.layer_done(), "drops must not fake completion");
    }

    /// Per-tick audit of the event-horizon contract: whenever `next_event`
    /// reports the coming tick null, a one-cycle `skip` must charge exactly
    /// the stall counters the naive tick then increments — and the tick
    /// must touch nothing else.
    #[test]
    fn next_event_null_ticks_match_skip_charges() {
        fn stall_delta(a: &PngStats, b: &PngStats) -> (u64, u64, u64) {
            (
                b.gate_stalls - a.gate_stalls,
                b.queue_stalls - a.queue_stalls,
                b.outq_stalls - a.outq_stalls,
            )
        }
        fn non_stall(s: &PngStats) -> PngStats {
            PngStats {
                gate_stalls: 0,
                queue_stalls: 0,
                outq_stalls: 0,
                ..*s
            }
        }

        let net = NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![LayerSpec::conv(1, 3, Activation::Identity)],
        )
        .unwrap();
        let map_cfg = MemoryConfig::hmc_int();
        let layout = NetworkLayout::build(&net, 4, 4, true, 16, &map_cfg.address_map());
        let prog = compile_layer(&net, &layout, 0, Mapping::paper(true));
        let mut mem = MemorySystem::new(map_cfg);
        let mut net_fab = Network::new(Topology::mesh4x4());

        let input = Tensor::from_vec(1, 8, 8, (0..64).map(|i| Q88::from_bits(i as i16)).collect());
        load_volume(&layout.volumes[0], input.as_slice(), 16, mem.storage_mut());

        let mut pngs: Vec<Png> = (0..16u8).map(Png::hmc).collect();
        for p in &mut pngs {
            p.configure(Arc::clone(&prog));
        }

        let mut null_ticks = 0u64;
        let mut group_ops: Vec<u64> = vec![0; 16];
        let mut groups_sent = [0u64; 16];
        for now in 0..200_000u64 {
            for p in &mut pngs {
                let before = *p.stats();
                match p.next_event(now, &mem, &[]) {
                    Some(horizon) => {
                        assert!(
                            horizon > now,
                            "horizon {horizon} not in the future of {now}"
                        );
                        null_ticks += 1;
                        p.skip(now, now + 1, &mem, &[]);
                        let mid = *p.stats();
                        p.tick(now, &mut mem, &[]);
                        let after = *p.stats();
                        assert_eq!(
                            stall_delta(&before, &mid),
                            stall_delta(&mid, &after),
                            "skip charge differs from the naive tick at cycle {now}"
                        );
                        assert_eq!(
                            non_stall(&before),
                            non_stall(&after),
                            "null tick at {now} changed a non-stall counter"
                        );
                    }
                    None => p.tick(now, &mut mem, &[]),
                }
                if let Some(&pkt) = p.peek_outgoing() {
                    if net_fab.try_inject_from_mem(p.attach(), pkt, now) {
                        p.pop_outgoing();
                    }
                }
            }
            for ch in 0..16 {
                if let Some(c) = mem.tick_channel(ch, now) {
                    let v = Png::vault_of_tag(c.tag);
                    pngs[usize::from(v)].on_completion(c.tag, c.data);
                }
            }
            for node in 0..16u8 {
                if let Some(&pkt) = net_fab.peek_for_mem(node, now) {
                    if pngs[usize::from(node)].can_take_result(pkt.src) {
                        let pkt = net_fab.pop_for_mem(node, now).unwrap();
                        pngs[usize::from(node)].on_result(pkt, now);
                    }
                }
            }
            net_fab.tick(now);
            for node in 0..16u8 {
                if let Some(pkt) = net_fab.pop_for_pe(node, now) {
                    group_ops[usize::from(node)] += 1;
                    if let Some(cfg) = prog.pe_config(node) {
                        let g = groups_sent[usize::from(node)];
                        if g < prog.groups_of(node) {
                            let expected =
                                u64::from(cfg.active_macs(g)) * u64::from(cfg.conns_per_neuron);
                            if group_ops[usize::from(node)] == expected {
                                group_ops[usize::from(node)] = 0;
                                for m in 0..cfg.active_macs(g) {
                                    let r = Packet {
                                        dst: node,
                                        src: node,
                                        mac_id: m as u8,
                                        op_id: (g % 256) as u8,
                                        kind: PacketKind::Result,
                                        data: Q88::from_f64(1.0).to_bits() as u16,
                                    };
                                    assert!(net_fab.try_inject_from_pe(node, r, now));
                                }
                                groups_sent[usize::from(node)] += 1;
                            }
                        }
                    }
                    let _ = pkt;
                }
            }
            if pngs.iter().all(Png::layer_done) && net_fab.is_idle() {
                break;
            }
        }
        assert!(pngs.iter().all(Png::layer_done), "PNGs did not finish");
        assert!(null_ticks > 0, "harness never exercised a null tick");
    }
}
