//! Memory-centric neural computing: the Programmable Neurosequence
//! Generator (PNG) and the host compiler that programs it.
//!
//! This crate is the paper's §IV. Each HMC vault controller carries a PNG —
//! a programmable finite state machine that, for one network layer at a
//! time, generates the DRAM address sequence of every operand *this vault
//! owns*, packetizes the returned data for the consuming PEs, applies the
//! activation look-up table to returning results and writes the new neuron
//! states back to DRAM. There is no instruction stream: the PNGs drive the
//! compute layer.
//!
//! Modules:
//!
//! * [`layout`] — where every volume and weight matrix lives: spatial 4×4
//!   tiling with optional halo/full duplication (Fig. 10), per-vault address
//!   allocation,
//! * [`schedule`] — the per-PE neuron assignment and the per-vault operand
//!   stream FSM (the paper's three nested counters, Fig. 8),
//! * [`program`] — the compiler output: one [`LayerProgram`] per vault plus
//!   one `PeLayerConfig` per PE (the host's configuration-register writes),
//! * [`Png`] — the cycle-level PNG unit gluing stream → vault channel →
//!   NoC → write-back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod graph;
pub mod layout;
pub mod program;
pub mod schedule;
mod unit;

pub use error::CompileError;
pub use graph::{
    channel_slice, compile_graph, graph_load_weights, phase_fc_weight_addr, MultiLayerProgram,
};
pub use program::{
    compile_layer, try_compile_layer, try_load_volume, try_load_weights, LayerProgram, Mapping,
};
pub use unit::{Png, PngHookup, PngStats, RUN_AHEAD_OPS};
