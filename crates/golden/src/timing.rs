//! Analytical per-layer cycle bounds for the cycle-level simulator.
//!
//! Every term is a *provable lower bound* on the simulator's per-layer
//! cycle count, derived from hard structural rates of the modeled
//! hardware (each verified against the pipeline in `neurocube::system`):
//!
//! * **MAC occupancy** — the global lockstep schedule fires
//!   `max_groups` MAC-array groups and every group needs one accumulate
//!   per connection, so a layer takes at least `max_groups × conns`
//!   cycles even with infinite bandwidth.
//! * **PE packet serialization** — a PE accepts at most one NoC packet
//!   per cycle, and the operand streams deliver exactly one packet per
//!   MAC operand (conv/pool: one `State` per connection of every
//!   assigned neuron; FC: one `Weight` per connection of every assigned
//!   neuron plus one `SharedState` per connection of every group).
//! * **Port serialization** — each node's memory port ejects at most one
//!   packet per cycle (write-backs) and injects at most one per cycle
//!   (operand packets from the vaults attached to it).
//! * **DRAM channel pacing** — every operand fetch and write-back
//!   crosses its channel, which moves at most one word per
//!   `cpw_num/cpw_den` cycles and inserts the `t_CCD` inter-burst gap
//!   after every full burst ([`channel_stream_cycles`]). Operands are 16
//!   bits, so at best `word_bits/16` of them share one channel word.
//!
//! The bound is the maximum of the terms plus the host programming-phase
//! cycles when a [`ProgrammingModel`](neurocube::ProgrammingModel) is
//! configured. An upper *tolerance envelope* (`slack × lower bound`)
//! catches gross regressions in the other direction; unlike the lower
//! bound it is calibrated, not derived.

use neurocube::{RunReport, SystemConfig};
use neurocube_dram::ChannelConfig;
use neurocube_nn::{GraphSpec, NetworkSpec};
use neurocube_png::layout::NetworkLayout;
use neurocube_png::{compile_graph, compile_layer, LayerProgram, MultiLayerProgram};
use std::fmt;

/// Reference cycles a channel needs to move `words` data words: rational
/// word pacing plus one inter-burst gap after every completed burst
/// (a trailing gap after the final word does not delay completion).
pub fn channel_stream_cycles(ch: &ChannelConfig, words: u64) -> u64 {
    let pacing = words * u64::from(ch.cpw_num) / u64::from(ch.cpw_den);
    let gaps = words.saturating_sub(1) / u64::from(ch.burst_len);
    pacing + gaps * u64::from(ch.inter_burst_gap)
}

/// The analytical cycle bound of one layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerBound {
    /// Layer index in the network.
    pub layer_index: usize,
    /// MAC-array occupancy term: `max_groups × conns`.
    pub mac_cycles: u64,
    /// Worst per-PE operand packet count (one accepted per cycle).
    pub pe_packet_cycles: u64,
    /// Worst per-node memory-port ejection (write-backs) or injection
    /// (operand packets) count.
    pub port_cycles: u64,
    /// Worst per-channel DRAM streaming time for the layer's mandatory
    /// traffic.
    pub dram_cycles: u64,
    /// Host programming-phase cycles charged to the layer (0 when the
    /// configuration models the paper's untimed programming).
    pub programming_cycles: u64,
}

/// Fixed additive allowance of the upper envelope, covering per-layer
/// latency that does not scale with work: pipeline fill/drain across the
/// mesh, cache retrieval latency (16–64 cycles per operand chain), and
/// the end-of-layer write-back drain. Calibrated against the paper
/// workloads (the smallest layers measure ≈120 cycles above `slack ×
/// lower`); the lower bound needs no such term.
pub const FIXED_OVERHEAD_CYCLES: u64 = 512;

/// Default multiplicative slack of the upper envelope. Small layers are
/// *latency*-bound, not throughput-bound: with few operands in flight
/// each one pays the full cache-retrieval (16–64 cycles) plus DRAM
/// row-activation round trip, observed at up to ≈20 cycles per operand
/// against a 1-per-cycle serialization bound. The default therefore
/// admits latency-bound shapes (observed measured/lower ratios: 1.18–4.0
/// on large layers, up to ≈19 on shrunk minimal ones); pass a tighter
/// slack explicitly when checking throughput-bound paper workloads.
pub const DEFAULT_SLACK: f64 = 24.0;

impl LayerBound {
    /// The lower bound on the simulator's cycle count for this layer.
    pub fn lower(&self) -> u64 {
        self.mac_cycles
            .max(self.pe_packet_cycles)
            .max(self.port_cycles)
            .max(self.dram_cycles)
            + self.programming_cycles
    }

    /// Checks a measured cycle count against the lower bound and the
    /// `slack × lower + FIXED_OVERHEAD_CYCLES` upper tolerance envelope.
    ///
    /// # Errors
    ///
    /// Returns a [`TimingViolation`] when `measured` falls outside
    /// the envelope.
    pub fn check(&self, measured: u64, slack: f64) -> Result<(), TimingViolation> {
        let lower = self.lower();
        let upper = (lower as f64 * slack).ceil() as u64 + FIXED_OVERHEAD_CYCLES;
        if measured < lower || measured > upper {
            return Err(TimingViolation {
                layer_index: self.layer_index,
                measured,
                lower,
                upper,
            });
        }
        Ok(())
    }
}

/// A simulated cycle count outside the analytical envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingViolation {
    /// The offending layer.
    pub layer_index: usize,
    /// The simulator's cycle count.
    pub measured: u64,
    /// The analytical lower bound.
    pub lower: u64,
    /// The tolerance ceiling (`slack × lower`).
    pub upper: u64,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {}: measured {} cycles outside analytical envelope [{}, {}]",
            self.layer_index, self.measured, self.lower, self.upper
        )
    }
}

impl std::error::Error for TimingViolation {}

/// Computes the analytical bound of every layer of `net` under `cfg`.
///
/// # Panics
///
/// Panics if the layout does not fit the configured memory (the same
/// condition under which [`Neurocube::load`](neurocube::Neurocube::load)
/// panics).
pub fn layer_bounds(cfg: &SystemConfig, net: &NetworkSpec) -> Vec<LayerBound> {
    let (gw, gh) = cfg.grid();
    let map = cfg.memory.address_map();
    let layout = NetworkLayout::build(net, gw, gh, cfg.duplicate, cfg.n_mac as usize, &map);
    let mapping = cfg.mapping();
    let programming = cfg
        .programming
        .map_or(0, |m| m.layer_cycles(cfg.nodes() as u32));

    (0..net.depth())
        .map(|i| {
            let prog = compile_layer(net, &layout, i, mapping);
            let mut bound = program_bound(cfg, &prog, i);
            bound.programming_cycles = programming;
            bound
        })
        .collect()
}

/// The analytical cycle bound of one compiled [`LayerProgram`] — the
/// compiler's per-phase cost model. `layer_index` only labels the result
/// (a layer index for linear networks, a graph node index for compiled
/// graphs); `programming_cycles` is left at 0 for the caller to assign,
/// since linear runs charge programming per layer while compiled graphs
/// charge it once per inference.
pub fn program_bound(cfg: &SystemConfig, prog: &LayerProgram, layer_index: usize) -> LayerBound {
    let nodes = cfg.nodes();
    let vaults = prog.mapping.vaults();
    let conns = u64::from(prog.conns());
    let fc = prog.is_fc();

    let mut pe_packets = 0u64;
    let mut total_events = 0u64;
    // Per-vault operand fetches, when the source vault of every
    // event is known exactly; `None` for non-duplicated spatial
    // layers, where the per-vault split depends on tile geometry
    // and only distribution-free floors are sound.
    let mut events: Option<Vec<u64>> = if fc || prog.mapping.duplicate {
        Some(vec![0u64; vaults])
    } else {
        None
    };
    let mut node_eject = vec![0u64; nodes];
    let mut channel_write_words = vec![0u64; cfg.memory.channels as usize];
    let items_per_word = u64::from(cfg.memory.channel.word_bits) / 16;

    for v in 0..vaults as u8 {
        let assigned = prog.out_vol.assigned_count(v);
        let groups = prog.groups_of(v);
        let stored_out = prog.out_vol.bytes_in_vault(v) / 2;

        // Operand packets the PE at `v` must accept, one per cycle.
        let received = if fc {
            conns * (assigned + groups)
        } else {
            conns * assigned
        };
        pe_packets = pe_packets.max(received);
        total_events += received;

        if let Some(ev) = events.as_mut() {
            if fc {
                // Weights always stream from the PE's own vault
                // (the layout stores FC weights transposed).
                ev[usize::from(v)] += conns * assigned;
                // States follow the schedule's source-selection
                // rule exactly: a locally stored copy wins,
                // otherwise the owner sends. One fetch per
                // (group, input) pair.
                if groups > 0 {
                    for idx in 0..prog.in_vol.shape.len() {
                        let src = if prog.in_vol.local_addr(v, idx).is_some() {
                            v
                        } else {
                            prog.in_vol.owner(idx)
                        };
                        ev[usize::from(src)] += groups;
                    }
                }
            } else {
                // Duplicated conv/pool streams are purely local:
                // the consuming PE's vault fetches every operand.
                ev[usize::from(v)] += conns * assigned;
            }
        }

        let node = usize::from(cfg.attach[usize::from(v)]);
        node_eject[node] += stored_out;
        let ch = cfg.memory.channel_of_region(u32::from(v)) as usize;
        channel_write_words[ch] += stored_out.div_ceil(items_per_word);
    }

    // Injection/read terms. With exact per-vault events, fold by
    // attach/channel; otherwise the max over nodes (channels) is
    // at least the even split of the exact total event count.
    let (inject_max, dram_words) = match &events {
        Some(ev) => {
            // Exact per-vault sources: fold into nodes via the
            // attach table, and add reads to each channel's
            // write words (a channel serves both serially).
            let mut node_inject = vec![0u64; nodes];
            let mut ch_words = channel_write_words.clone();
            for (v, &e) in ev.iter().enumerate() {
                node_inject[usize::from(cfg.attach[v])] += e;
                ch_words[cfg.memory.channel_of_region(v as u32) as usize] +=
                    e.div_ceil(items_per_word);
            }
            (
                node_inject.into_iter().max().unwrap_or(0),
                ch_words.into_iter().max().unwrap_or(0),
            )
        }
        // Distribution-free floors: the busiest node (channel)
        // carries at least the even split of the exact event
        // total, and at least its write-back stream.
        None => (
            total_events.div_ceil(nodes as u64),
            total_events
                .div_ceil(items_per_word)
                .div_ceil(u64::from(cfg.memory.channels))
                .max(channel_write_words.iter().copied().max().unwrap_or(0)),
        ),
    };

    let port_cycles = node_eject.into_iter().max().unwrap_or(0).max(inject_max);
    let dram_cycles = channel_stream_cycles(&cfg.memory.channel, dram_words);

    LayerBound {
        layer_index,
        mac_cycles: prog.max_groups() * conns,
        pe_packet_cycles: pe_packets,
        port_cycles,
        dram_cycles,
        programming_cycles: 0,
    }
}

/// Computes the analytical bound of every phase of a compiled graph, in
/// phase order — the compiler's cost model composed along the DAG. Each
/// `layer_index` is the graph node the phase executes. Pipelined graph
/// runs program the cube once, so the whole programming charge lands on
/// phase 0 (per-layer replay instead pays it on every phase, which is the
/// gap [`graph_bounds`] lets benchmarks quantify).
///
/// # Panics
///
/// Panics if the graph cannot be compiled for `cfg` (the condition under
/// which [`Neurocube::load_graph`](neurocube::Neurocube::load_graph)
/// returns an error).
pub fn graph_bounds(cfg: &SystemConfig, graph: &GraphSpec) -> Vec<LayerBound> {
    let prog = compile_graph(graph, cfg.mapping(), &cfg.memory.address_map())
        .expect("graph fits the configured memory");
    multi_layer_bounds(cfg, &prog)
}

/// [`graph_bounds`] for an already-compiled [`MultiLayerProgram`].
pub fn multi_layer_bounds(cfg: &SystemConfig, prog: &MultiLayerProgram) -> Vec<LayerBound> {
    let programming = cfg
        .programming
        .map_or(0, |m| m.layer_cycles(cfg.nodes() as u32));
    (0..prog.phases.len())
        .map(|k| {
            let mut bound = program_bound(cfg, &prog.phases[k], prog.node_of(k));
            if k == 0 {
                bound.programming_cycles = programming;
            }
            bound
        })
        .collect()
}

/// Checks every phase of a pipelined graph [`RunReport`] (what
/// [`run_graph_inference`](neurocube::Neurocube::run_graph_inference)
/// returns) against the analytical envelope.
///
/// # Errors
///
/// Returns the first [`TimingViolation`] found, scanning phases in order.
///
/// # Panics
///
/// Panics if the report does not have one entry per phase labelled with
/// the phase's graph node.
pub fn check_graph_report(
    cfg: &SystemConfig,
    graph: &GraphSpec,
    report: &RunReport,
    slack: f64,
) -> Result<(), TimingViolation> {
    let bounds = graph_bounds(cfg, graph);
    assert_eq!(
        report.layers.len(),
        bounds.len(),
        "one report entry per phase"
    );
    for (bound, layer) in bounds.iter().zip(&report.layers) {
        assert_eq!(layer.layer_index, bound.layer_index, "report order");
        bound.check(layer.cycles, slack)?;
    }
    Ok(())
}

/// A whole-inference cycle envelope: the interval every measured
/// service time of a model must land in, summed from the per-layer
/// analytical bounds. This is the query API the two-speed serving
/// audits use — the analytical fast path claims a service time, and a
/// sampled cycle-accurate replay asserts both numbers sit inside this
/// certified interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleEnvelope {
    /// Σ per-layer analytical lower bounds (provable — a faster run is a
    /// simulator defect).
    pub lower: u64,
    /// Σ per-layer tolerance ceilings (`ceil(slack × lower_i) +
    /// FIXED_OVERHEAD_CYCLES` each — calibrated, a slower run is a gross
    /// regression).
    pub upper: u64,
}

impl CycleEnvelope {
    /// The envelope spanned by a set of per-layer bounds under `slack`.
    #[must_use]
    pub fn from_bounds(bounds: &[LayerBound], slack: f64) -> CycleEnvelope {
        let lower = bounds.iter().map(LayerBound::lower).sum();
        let upper = bounds
            .iter()
            .map(|b| (b.lower() as f64 * slack).ceil() as u64 + FIXED_OVERHEAD_CYCLES)
            .sum();
        CycleEnvelope { lower, upper }
    }

    /// A degenerate single-point envelope — what a synthetic
    /// (timing-only) model certifies: exactly its declared service time.
    #[must_use]
    pub fn exact(cycles: u64) -> CycleEnvelope {
        CycleEnvelope {
            lower: cycles,
            upper: cycles,
        }
    }

    /// Whether `cycles` lies inside the envelope (inclusive).
    #[must_use]
    pub fn contains(&self, cycles: u64) -> bool {
        self.lower <= cycles && cycles <= self.upper
    }

    /// Checks a cycle count against the envelope.
    ///
    /// # Errors
    ///
    /// Returns an [`EnvelopeViolation`] when `cycles` falls outside.
    pub fn check(&self, cycles: u64) -> Result<(), EnvelopeViolation> {
        if self.contains(cycles) {
            Ok(())
        } else {
            Err(EnvelopeViolation {
                cycles,
                lower: self.lower,
                upper: self.upper,
            })
        }
    }
}

/// A whole-inference cycle count outside a [`CycleEnvelope`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvelopeViolation {
    /// The offending cycle count.
    pub cycles: u64,
    /// The envelope's lower edge.
    pub lower: u64,
    /// The envelope's upper edge.
    pub upper: u64,
}

impl fmt::Display for EnvelopeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles outside certified service envelope [{}, {}]",
            self.cycles, self.lower, self.upper
        )
    }
}

impl std::error::Error for EnvelopeViolation {}

/// The certified service envelope of one inference of `net` under `cfg`:
/// the per-layer analytical bounds summed into one [`CycleEnvelope`].
/// The simulator's total inference cycles are the sum of its per-layer
/// cycles, each inside its own `[lower_i, upper_i]`, so the summed
/// interval provably contains every measured service time.
///
/// # Panics
///
/// Panics if the layout does not fit the configured memory (see
/// [`layer_bounds`]).
#[must_use]
pub fn service_envelope(cfg: &SystemConfig, net: &NetworkSpec, slack: f64) -> CycleEnvelope {
    CycleEnvelope::from_bounds(&layer_bounds(cfg, net), slack)
}

/// [`service_envelope`] for a compiled-graph tenant: per-phase bounds of
/// the pipelined schedule summed into one interval.
///
/// # Panics
///
/// Panics if the graph cannot be compiled for `cfg` (see
/// [`graph_bounds`]).
#[must_use]
pub fn graph_service_envelope(cfg: &SystemConfig, graph: &GraphSpec, slack: f64) -> CycleEnvelope {
    CycleEnvelope::from_bounds(&graph_bounds(cfg, graph), slack)
}

/// A compile-time plan for one graph: the cost model's verdict on the
/// two mapping modes the compiler can choose between.
#[derive(Clone, Debug)]
pub struct GraphPlan {
    /// Per-phase bounds with input duplication on.
    pub duplicated: Vec<LayerBound>,
    /// Per-phase bounds with partitioned (non-duplicated) inputs.
    pub partitioned: Vec<LayerBound>,
    /// Σ lower bounds of the duplicated mapping (phases serialize on the
    /// cube, so the sum composes along the DAG schedule).
    pub duplicated_cycles: u64,
    /// Σ lower bounds of the partitioned mapping.
    pub partitioned_cycles: u64,
}

impl GraphPlan {
    /// `true` when the cost model predicts the duplicated mapping is at
    /// least as fast (the paper's default trade: memory for locality).
    pub fn prefer_duplicate(&self) -> bool {
        self.duplicated_cycles <= self.partitioned_cycles
    }
}

/// Plans a graph under both mapping modes — the compiler's cost model as
/// a planning tool: lower-bound totals for duplicate-on and duplicate-off
/// placements of the same DAG.
///
/// # Panics
///
/// Panics if the graph cannot be compiled in either mode.
pub fn plan_graph(cfg: &SystemConfig, graph: &GraphSpec) -> GraphPlan {
    let mut dup_cfg = cfg.clone();
    dup_cfg.duplicate = true;
    let mut part_cfg = cfg.clone();
    part_cfg.duplicate = false;
    let duplicated = graph_bounds(&dup_cfg, graph);
    let partitioned = graph_bounds(&part_cfg, graph);
    let duplicated_cycles = duplicated.iter().map(LayerBound::lower).sum();
    let partitioned_cycles = partitioned.iter().map(LayerBound::lower).sum();
    GraphPlan {
        duplicated,
        partitioned,
        duplicated_cycles,
        partitioned_cycles,
    }
}

/// Checks every layer of an inference [`RunReport`] against the
/// analytical envelope.
///
/// # Errors
///
/// Returns the first [`TimingViolation`] found, scanning layers in order.
///
/// # Panics
///
/// Panics if the report does not have one forward entry per layer of
/// `net` (training reports interleave backward passes; check those
/// layer-by-layer with [`LayerBound::check`] instead).
pub fn check_inference_report(
    cfg: &SystemConfig,
    net: &NetworkSpec,
    report: &RunReport,
    slack: f64,
) -> Result<(), TimingViolation> {
    let bounds = layer_bounds(cfg, net);
    assert_eq!(
        report.layers.len(),
        bounds.len(),
        "one report entry per layer"
    );
    for (bound, layer) in bounds.iter().zip(&report.layers) {
        assert_eq!(layer.layer_index, bound.layer_index, "report order");
        bound.check(layer.cycles, slack)?;
    }
    Ok(())
}

/// A [`LayerProgram`]-level summary used by tests and docs: the exact
/// number of operand packets the schedule will emit for one layer
/// (the conservation property the packet-serialization term relies on).
pub fn operand_packets(prog: &LayerProgram) -> u64 {
    let vaults = prog.mapping.vaults() as u8;
    let conns = u64::from(prog.conns());
    if prog.is_fc() {
        (0..vaults)
            .map(|p| conns * (prog.out_vol.assigned_count(p) + prog.groups_of(p)))
            .sum()
    } else {
        (0..vaults)
            .map(|p| conns * prog.out_vol.assigned_count(p))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;
    use neurocube_nn::{LayerSpec, Shape};

    fn small_net() -> NetworkSpec {
        NetworkSpec::new(
            Shape::new(1, 12, 12),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(8, Activation::Sigmoid),
            ],
        )
        .unwrap()
    }

    #[test]
    fn channel_stream_cycles_counts_bursts() {
        let ch = ChannelConfig::hmc_int(); // 1 cycle/word, bursts of 8, gap 2
        assert_eq!(channel_stream_cycles(&ch, 0), 0);
        assert_eq!(channel_stream_cycles(&ch, 8), 8); // trailing gap free
        assert_eq!(channel_stream_cycles(&ch, 9), 9 + 2);
        assert_eq!(channel_stream_cycles(&ch, 16), 16 + 2);
        assert_eq!(channel_stream_cycles(&ch, 17), 17 + 4);
        // DDR3: 25/8 cycles per 64-bit word, no gap.
        let ddr = ChannelConfig::ddr3();
        assert_eq!(channel_stream_cycles(&ddr, 8), 25);
    }

    #[test]
    fn bounds_have_positive_terms() {
        let cfg = SystemConfig::paper(true);
        let net = small_net();
        let bounds = layer_bounds(&cfg, &net);
        assert_eq!(bounds.len(), 3);
        for b in &bounds {
            assert!(b.mac_cycles > 0, "{b:?}");
            assert!(b.pe_packet_cycles >= b.mac_cycles, "{b:?}");
            assert!(b.port_cycles > 0, "{b:?}");
            assert!(b.dram_cycles > 0, "{b:?}");
            assert_eq!(b.programming_cycles, 0);
            assert!(b.lower() >= b.pe_packet_cycles);
        }
    }

    #[test]
    fn programming_model_adds_cycles() {
        let mut cfg = SystemConfig::paper(true);
        let without = layer_bounds(&cfg, &small_net());
        cfg.programming = Some(neurocube::ProgrammingModel::typical());
        let with = layer_bounds(&cfg, &small_net());
        for (a, b) in without.iter().zip(&with) {
            assert!(b.programming_cycles > 0);
            assert_eq!(b.lower(), a.lower() + b.programming_cycles);
        }
    }

    #[test]
    fn check_flags_both_sides_of_the_envelope() {
        let cfg = SystemConfig::paper(true);
        let bounds = layer_bounds(&cfg, &small_net());
        let b = &bounds[0];
        let lower = b.lower();
        assert!(b.check(lower, 4.0).is_ok());
        assert!(b.check(4 * lower + FIXED_OVERHEAD_CYCLES, 4.0).is_ok());
        let too_fast = b.check(lower - 1, 4.0).unwrap_err();
        assert_eq!(too_fast.layer_index, 0);
        assert!(too_fast.to_string().contains("outside analytical envelope"));
        assert!(b.check(4 * lower + FIXED_OVERHEAD_CYCLES + 1, 4.0).is_err());
    }

    #[test]
    fn dropped_tccd_gap_shrinks_the_dram_term() {
        // The defect-injection scenario: a channel that forgets the
        // inter-burst gap finishes streams faster than the correct
        // analytical model allows, so bounds computed from the correct
        // config catch it.
        let correct = ChannelConfig::hmc_int();
        let mut defective = correct;
        defective.inter_burst_gap = 0;
        for words in [9u64, 64, 1000] {
            assert!(
                channel_stream_cycles(&defective, words) < channel_stream_cycles(&correct, words),
                "gap must cost cycles at {words} words"
            );
        }
    }

    #[test]
    fn graph_bounds_charge_programming_once() {
        let graph = neurocube_nn::workloads::residual_toy();
        let mut cfg = SystemConfig::paper(true);
        cfg.programming = Some(neurocube::ProgrammingModel::typical());
        let bounds = graph_bounds(&cfg, &graph);
        assert_eq!(bounds.len(), 5, "five executable phases");
        assert!(bounds[0].programming_cycles > 0, "phase 0 pays the host");
        for b in &bounds[1..] {
            assert_eq!(
                b.programming_cycles, 0,
                "later phases are sequencer hand-offs, not host round-trips"
            );
            assert!(b.mac_cycles > 0);
        }
        // Node labels follow the compile schedule, one per Layer node.
        let labels: Vec<usize> = bounds.iter().map(|b| b.layer_index).collect();
        assert_eq!(labels, graph.exec_nodes());
    }

    #[test]
    fn linear_graph_bounds_match_layer_bounds_modulo_programming() {
        let net = small_net();
        let mut cfg = SystemConfig::paper(true);
        cfg.programming = Some(neurocube::ProgrammingModel::typical());
        let linear = layer_bounds(&cfg, &net);
        let graph = graph_bounds(&cfg, &net.to_graph());
        assert_eq!(linear.len(), graph.len());
        for (l, g) in linear.iter().zip(&graph) {
            assert_eq!(l.mac_cycles, g.mac_cycles);
            assert_eq!(l.pe_packet_cycles, g.pe_packet_cycles);
            assert_eq!(l.port_cycles, g.port_cycles);
            assert_eq!(l.dram_cycles, g.dram_cycles);
            assert!(l.programming_cycles > 0, "linear charges every layer");
        }
        let linear_prog: u64 = linear.iter().map(|b| b.programming_cycles).sum();
        let graph_prog: u64 = graph.iter().map(|b| b.programming_cycles).sum();
        assert_eq!(
            linear_prog,
            graph_prog * net.depth() as u64,
            "the compiled graph amortizes programming to one charge"
        );
    }

    #[test]
    fn plan_graph_compares_both_mappings() {
        let graph = neurocube_nn::workloads::concat_toy();
        let plan = plan_graph(&SystemConfig::paper(true), &graph);
        assert_eq!(plan.duplicated.len(), plan.partitioned.len());
        assert!(plan.duplicated_cycles > 0);
        assert!(plan.partitioned_cycles > 0);
        assert_eq!(
            plan.prefer_duplicate(),
            plan.duplicated_cycles <= plan.partitioned_cycles
        );
    }

    #[test]
    fn service_envelope_sums_layer_bounds_and_flags_both_edges() {
        let cfg = SystemConfig::paper(true);
        let net = small_net();
        let bounds = layer_bounds(&cfg, &net);
        let env = service_envelope(&cfg, &net, 4.0);
        let lower: u64 = bounds.iter().map(LayerBound::lower).sum();
        let upper: u64 = bounds
            .iter()
            .map(|b| 4 * b.lower() + FIXED_OVERHEAD_CYCLES)
            .sum();
        assert_eq!(env, CycleEnvelope { lower, upper });
        assert!(env.contains(lower) && env.contains(upper));
        assert!(!env.contains(lower - 1) && !env.contains(upper + 1));
        let v = env.check(upper + 1).unwrap_err();
        assert_eq!(v.cycles, upper + 1);
        assert!(v.to_string().contains("outside certified service envelope"));
        // Any per-layer measurement inside its own envelope sums into
        // this interval; the profiled total must therefore sit inside.
        assert!(env.check(lower + (upper - lower) / 2).is_ok());
    }

    #[test]
    fn exact_envelopes_admit_one_value() {
        let env = CycleEnvelope::exact(500);
        assert!(env.contains(500));
        assert!(!env.contains(499) && !env.contains(501));
    }

    #[test]
    fn graph_service_envelope_spans_the_pipelined_phases() {
        let graph = neurocube_nn::workloads::residual_toy();
        let cfg = SystemConfig::paper(true);
        let env = graph_service_envelope(&cfg, &graph, DEFAULT_SLACK);
        let bounds = graph_bounds(&cfg, &graph);
        assert_eq!(env.lower, bounds.iter().map(LayerBound::lower).sum::<u64>());
        assert!(env.upper > env.lower);
    }

    #[test]
    fn operand_packet_conservation_for_conv() {
        // Conv layers deliver exactly one State packet per MAC operand.
        let cfg = SystemConfig::paper(true);
        let net = small_net();
        let (gw, gh) = cfg.grid();
        let map = cfg.memory.address_map();
        let layout = NetworkLayout::build(&net, gw, gh, true, 16, &map);
        let prog = compile_layer(&net, &layout, 0, cfg.mapping());
        assert_eq!(operand_packets(&prog), net.macs_per_layer()[0]);
    }
}
