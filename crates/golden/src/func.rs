//! The f64 functional reference model and its per-layer error envelope.
//!
//! # Error-envelope derivation
//!
//! Let `ε_i` bound `|sim_i(n) − gold_i(n)|` over every neuron `n` of layer
//! `i`'s post-activation output, where `sim` is the `Q1.7.8` simulator and
//! `gold` this model. The golden model consumes the *exact* real values of
//! the quantized weights and inputs, so there is no weight or input
//! quantization term — only the datapath's own error sources remain:
//!
//! 1. **Products are exact.** A `Q1.7.8 × Q1.7.8` product fits `Q2.14.16`
//!    (`i16 × i16` in `i32`) with no rounding; the wide accumulator adds
//!    them exactly. Both sides clamp the running sum to the 32-bit register
//!    range, and clamping is non-expansive, so no new error appears here.
//! 2. **Input error amplification.** Layer `i` multiplies its input error
//!    by at most `W1_i = max_n Σ_k |w_nk|` (the maximum absolute row sum of
//!    its weights).
//! 3. **Renormalization truncates.** `acc >> 8` floors at `Q1.7.8`, adding
//!    less than one LSB (`1/256`), and final saturation is non-expansive.
//! 4. **Activations.** Identity and ReLU are exact in hardware (mux /
//!    comparator paths) and 1-Lipschitz. Sigmoid (Lipschitz `1/4`) and tanh
//!    (Lipschitz `1`) go through the PNG LUT, whose worst-case deviation
//!    from the ideal curve is measured exhaustively by
//!    [`ActivationLut::max_error`], plus one LSB for output quantization.
//!
//! Together: `ε_i = L_i · (W1_i · ε_{i−1} + 1/256) + lut_i`, with `ε_{-1} =
//! 0`. The envelope is *derived*, not tuned — a simulator output outside it
//! is a real bug.

use neurocube_fixed::{Activation, ActivationLut, Q88};
use neurocube_nn::{
    connections, GraphOp, GraphSource, GraphSpec, LayerSpec, NetworkSpec, Shape, Tensor,
};
use std::fmt;

/// One `Q1.7.8` least significant bit.
const LSB: f64 = 1.0 / 256.0;

/// The wide MAC accumulator's representable range (`i32` at `Q2.14.16`).
const ACC_MAX: f64 = i32::MAX as f64 / 65536.0;
const ACC_MIN: f64 = i32::MIN as f64 / 65536.0;

/// Evaluates one layer on an f64 input volume with ideal arithmetic
/// (only the hardware's non-expansive clamps mirrored), returning
/// `(pre_activation, post_activation)` — the shared kernel of
/// [`GoldenNet`] and [`GoldenGraph`].
///
/// # Panics
///
/// Panics if `input` does not match `in_shape` or the layer does not fit
/// its input volume.
pub fn eval_layer(
    layer: &LayerSpec,
    in_shape: Shape,
    params: &[Q88],
    input: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(input.len(), in_shape.len(), "layer input length");
    let out_len = layer
        .output_shape(in_shape)
        .expect("layer fits its input volume")
        .len();
    let n_conn = layer.connections_per_neuron(in_shape);
    let act = layer.activation();
    let q_min = Q88::MIN.to_f64();
    let q_max = Q88::MAX.to_f64();

    let mut pre = Vec::with_capacity(out_len);
    let mut post = Vec::with_capacity(out_len);
    for neuron in 0..out_len {
        let mut acc = 0.0f64;
        for k in 0..n_conn {
            let conn = connections::resolve(layer, in_shape, neuron, k);
            let w = connections::weight_value(conn, params).to_f64();
            // Mirror the wide register's clamp after every addition —
            // non-expansive, so it cannot grow the envelope.
            acc = (acc + w * input[conn.input_index]).clamp(ACC_MIN, ACC_MAX);
        }
        let y = acc.clamp(q_min, q_max);
        pre.push(y);
        post.push(act.ideal(y));
    }
    (pre, post)
}

/// The maximum absolute weight row sum `W1 = max_n Σ_k |w_nk|` of one
/// layer — its worst-case error amplification factor.
pub fn layer_row_sum_max(layer: &LayerSpec, in_shape: Shape, params: &[Q88]) -> f64 {
    let out_len = layer
        .output_shape(in_shape)
        .expect("layer fits its input volume")
        .len();
    let n_conn = layer.connections_per_neuron(in_shape);
    let mut worst = 0.0f64;
    for neuron in 0..out_len {
        let mut sum = 0.0;
        for k in 0..n_conn {
            let conn = connections::resolve(layer, in_shape, neuron, k);
            sum += connections::weight_value(conn, params).to_f64().abs();
        }
        worst = worst.max(sum);
    }
    worst
}

/// One step of the envelope recurrence `ε = L · (W1 · ε_in + LSB) + lut`
/// (see the module docs).
fn envelope_step(
    layer: &LayerSpec,
    in_shape: Shape,
    params: &[Q88],
    eps_in: f64,
    lut_cache: &mut [Option<f64>; 2],
) -> f64 {
    let pre_err = layer_row_sum_max(layer, in_shape, params) * eps_in + LSB;
    let act = layer.activation();
    let (lipschitz, act_err) = match act {
        // Exact mux/comparator paths, both 1-Lipschitz.
        Activation::Identity | Activation::ReLU => (1.0, 0.0),
        Activation::Sigmoid => (0.25, lut_error(lut_cache, act)),
        Activation::Tanh => (1.0, lut_error(lut_cache, act)),
    };
    lipschitz * pre_err + act_err
}

/// A simulator output that escaped the derived error envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Layer whose output diverged.
    pub layer: usize,
    /// Flat neuron index within the layer output.
    pub neuron: usize,
    /// The fixed-point simulator's value.
    pub simulated: f64,
    /// The golden model's value.
    pub golden: f64,
    /// The derived envelope the difference had to stay inside.
    pub bound: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {} neuron {}: |sim {} - golden {}| = {} exceeds envelope {}",
            self.layer,
            self.neuron,
            self.simulated,
            self.golden,
            (self.simulated - self.golden).abs(),
            self.bound
        )
    }
}

impl std::error::Error for Divergence {}

/// Gradients of `½ Σ (output − target)²` with respect to every stored
/// weight and the network input, in double precision.
///
/// The convention matches the fixed-point [`Trainer`]'s update direction
/// (its per-neuron delta is `(o − t) · act'(pre)`, i.e. the gradient of the
/// *sum*-of-squares halved, not the mean), so the two can be compared
/// component-wise.
///
/// [`Trainer`]: neurocube_nn::Trainer
#[derive(Clone, Debug, PartialEq)]
pub struct GoldenBackward {
    /// `½ Σ (o − t)²` at the current parameters.
    pub loss: f64,
    /// Per-layer gradients, one entry per stored weight.
    pub d_weights: Vec<Vec<f64>>,
    /// Gradient with respect to the network input.
    pub d_input: Vec<f64>,
}

/// The f64 functional reference of a quantized network.
///
/// Built from the exact same [`NetworkSpec`] and `Q1.7.8` parameters the
/// simulator loads; all execution is ideal double precision with only the
/// hardware's *saturation* behaviour (which is non-expansive and therefore
/// preserves the envelope) mirrored.
#[derive(Clone, Debug)]
pub struct GoldenNet {
    spec: NetworkSpec,
    params: Vec<Vec<Q88>>,
}

impl GoldenNet {
    /// Wraps a network and its quantized parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the spec's per-layer weight counts.
    pub fn from_quantized(spec: NetworkSpec, params: Vec<Vec<Q88>>) -> GoldenNet {
        let counts = spec.weights_per_layer();
        assert_eq!(params.len(), counts.len(), "one weight array per layer");
        for (i, (p, &n)) in params.iter().zip(&counts).enumerate() {
            assert_eq!(p.len(), n, "layer {i} expects {n} weights");
        }
        GoldenNet { spec, params }
    }

    /// The network description.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Evaluates layer `i` on an f64 input volume, returning
    /// `(pre_activation, post_activation)`.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the layer's input volume length.
    pub fn forward_layer(&self, i: usize, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        eval_layer(
            &self.spec.layers()[i],
            self.spec.layer_input(i),
            &self.params[i],
            input,
        )
    }

    /// Runs the whole network on a `Q1.7.8` input tensor; returns every
    /// layer's post-activation output in f64.
    pub fn forward(&self, input: &Tensor) -> Vec<Vec<f64>> {
        let mut cur: Vec<f64> = input.as_slice().iter().map(|q| q.to_f64()).collect();
        let mut outputs = Vec::with_capacity(self.spec.depth());
        for i in 0..self.spec.depth() {
            let (_, post) = self.forward_layer(i, &cur);
            cur.clone_from(&post);
            outputs.push(post);
        }
        outputs
    }

    /// The maximum absolute weight row sum `W1_i = max_n Σ_k |w_nk|` of
    /// layer `i` — the layer's worst-case error amplification factor.
    pub fn row_sum_max(&self, i: usize) -> f64 {
        layer_row_sum_max(
            &self.spec.layers()[i],
            self.spec.layer_input(i),
            &self.params[i],
        )
    }

    /// The derived per-layer error envelope: `envelope()[i]` bounds the
    /// absolute difference between the `Q1.7.8` simulator's layer-`i`
    /// post-activation output and this model's (see the module docs for
    /// the derivation). Valid for the wide (32-bit) MAC accumulator, the
    /// paper's design point.
    pub fn envelope(&self) -> Vec<f64> {
        let mut lut_cache: [Option<f64>; 2] = [None, None];
        let mut eps = 0.0f64;
        (0..self.spec.depth())
            .map(|i| {
                eps = envelope_step(
                    &self.spec.layers()[i],
                    self.spec.layer_input(i),
                    &self.params[i],
                    eps,
                    &mut lut_cache,
                );
                eps
            })
            .collect()
    }

    /// Checks a full set of simulator layer outputs against the golden
    /// model and the derived envelope.
    ///
    /// `outputs[i]` must be the simulator's post-activation output of layer
    /// `i` (what [`Executor::forward`] returns, and what
    /// [`Neurocube::read_volume`] reads back per volume).
    ///
    /// # Errors
    ///
    /// Returns the first [`Divergence`] found, scanning layers in order.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` has the wrong layer count or lengths.
    ///
    /// [`Executor::forward`]: neurocube_nn::Executor::forward
    /// [`Neurocube::read_volume`]: neurocube::Neurocube::read_volume
    pub fn check(&self, input: &Tensor, outputs: &[Tensor]) -> Result<(), Divergence> {
        assert_eq!(outputs.len(), self.spec.depth(), "one tensor per layer");
        let golden = self.forward(input);
        let envelope = self.envelope();
        for (i, (sim, gold)) in outputs.iter().zip(&golden).enumerate() {
            assert_eq!(sim.len(), gold.len(), "layer {i} output length");
            // A hair of float headroom on top of the analytical bound: the
            // envelope arithmetic itself runs in f64.
            let bound = envelope[i] + 1e-9;
            for (n, (&s, &g)) in sim.as_slice().iter().zip(gold).enumerate() {
                let s = s.to_f64();
                if (s - g).abs() > bound {
                    return Err(Divergence {
                        layer: i,
                        neuron: n,
                        simulated: s,
                        golden: g,
                        bound,
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks only the network's *final* output against the golden model
    /// and the last layer's derived envelope — the per-dispatch audit
    /// check of the two-speed serving path, where replays return one
    /// output tensor per inference, not every intermediate volume.
    ///
    /// # Errors
    ///
    /// Returns the first [`Divergence`] found (`Divergence::layer` is the
    /// last layer's index).
    ///
    /// # Panics
    ///
    /// Panics if `output` does not match the network's output length.
    pub fn check_output(&self, input: &Tensor, output: &Tensor) -> Result<(), Divergence> {
        let golden = self.forward(input);
        let last = self.spec.depth() - 1;
        let gold = &golden[last];
        assert_eq!(output.len(), gold.len(), "final output length");
        // Same float headroom as [`GoldenNet::check`].
        let bound = self.envelope()[last] + 1e-9;
        check_final(output, gold, bound, last)
    }

    /// Full backward pass of `½ Σ (output − target)²` in double precision,
    /// mirroring the fixed-point trainer's structure (same connection map,
    /// same delta convention) with ideal arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not match the network's output length.
    pub fn backward(&self, input: &Tensor, target: &[f64]) -> GoldenBackward {
        let spec = &self.spec;
        assert_eq!(
            target.len(),
            spec.output_shape().len(),
            "target length mismatch"
        );
        let input_f: Vec<f64> = input.as_slice().iter().map(|q| q.to_f64()).collect();
        let mut pres: Vec<Vec<f64>> = Vec::with_capacity(spec.depth());
        let mut posts: Vec<Vec<f64>> = Vec::with_capacity(spec.depth());
        for i in 0..spec.depth() {
            let cur = if i == 0 { &input_f } else { &posts[i - 1] };
            let (pre, post) = self.forward_layer(i, cur);
            pres.push(pre);
            posts.push(post);
        }

        let output = posts.last().expect("validated non-empty");
        let loss = 0.5
            * output
                .iter()
                .zip(target)
                .map(|(o, t)| (o - t).powi(2))
                .sum::<f64>();

        let last = spec.depth() - 1;
        let last_act = spec.layers()[last].activation();
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .enumerate()
            .map(|(j, (o, t))| (o - t) * last_act.ideal_derivative(pres[last][j]))
            .collect();

        let mut d_weights: Vec<Vec<f64>> = spec
            .weights_per_layer()
            .iter()
            .map(|&n| vec![0.0; n])
            .collect();
        let mut d_input = Vec::new();
        for i in (0..spec.depth()).rev() {
            let in_shape = spec.layer_input(i);
            let layer = spec.layers()[i];
            let n_conn = layer.connections_per_neuron(in_shape);
            let layer_input: &[f64] = if i == 0 { &input_f } else { &posts[i - 1] };

            let mut d_x = vec![0.0f64; in_shape.len()];
            for (neuron, &d) in delta.iter().enumerate() {
                for k in 0..n_conn {
                    let conn = connections::resolve(&layer, in_shape, neuron, k);
                    let w = connections::weight_value(conn, &self.params[i]).to_f64();
                    d_x[conn.input_index] += w * d;
                    if let connections::WeightRef::Stored(widx) = conn.weight {
                        d_weights[i][widx] += layer_input[conn.input_index] * d;
                    }
                }
            }

            if i > 0 {
                let prev_act = spec.layers()[i - 1].activation();
                delta = d_x
                    .iter()
                    .enumerate()
                    .map(|(idx, &g)| g * prev_act.ideal_derivative(pres[i - 1][idx]))
                    .collect();
            } else {
                d_input = d_x;
            }
        }

        GoldenBackward {
            loss,
            d_weights,
            d_input,
        }
    }
}

/// The f64 functional reference of a quantized layer DAG.
///
/// The graph generalization of [`GoldenNet`]: every node consumes the
/// channel concatenation of its sources (`Concat` nodes copy; `Layer`
/// nodes run [`eval_layer`]), and the error-envelope recurrence composes
/// along the DAG — a node's input error is the worst of its sources'
/// envelopes, since concatenation mixes but never amplifies error.
#[derive(Clone, Debug)]
pub struct GoldenGraph {
    graph: GraphSpec,
    params: Vec<Vec<Q88>>,
}

impl GoldenGraph {
    /// Wraps a graph and its quantized per-node parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the graph's per-node weight
    /// counts.
    pub fn from_quantized(graph: GraphSpec, params: Vec<Vec<Q88>>) -> GoldenGraph {
        let counts = graph.weights_per_node();
        assert_eq!(params.len(), counts.len(), "one weight array per node");
        for (i, (p, &n)) in params.iter().zip(&counts).enumerate() {
            assert_eq!(p.len(), n, "node {i} expects {n} weights");
        }
        GoldenGraph { graph, params }
    }

    /// The graph description.
    pub fn graph(&self) -> &GraphSpec {
        &self.graph
    }

    /// The effective (channel-concatenated) input vector of node `i`.
    fn node_input(&self, i: usize, input_f: &[f64], outputs: &[Vec<f64>]) -> Vec<f64> {
        let mut cat = Vec::with_capacity(self.graph.node_input_shape(i).len());
        for src in self.graph.node_sources(i) {
            match src {
                GraphSource::Input => cat.extend_from_slice(input_f),
                GraphSource::Node(j) => cat.extend_from_slice(&outputs[*j]),
            }
        }
        cat
    }

    /// Runs the whole graph on a `Q1.7.8` input tensor; returns every
    /// node's output volume in f64, in topological order.
    pub fn forward(&self, input: &Tensor) -> Vec<Vec<f64>> {
        let input_f: Vec<f64> = input.as_slice().iter().map(|q| q.to_f64()).collect();
        let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(self.graph.depth());
        for i in 0..self.graph.depth() {
            let cat = self.node_input(i, &input_f, &outputs);
            let out = match self.graph.nodes()[i].op {
                GraphOp::Layer(layer) => {
                    eval_layer(
                        &layer,
                        self.graph.node_input_shape(i),
                        &self.params[i],
                        &cat,
                    )
                    .1
                }
                // Concatenation is pure data placement: exact.
                GraphOp::Concat => cat,
            };
            outputs.push(out);
        }
        outputs
    }

    /// The derived per-node error envelope, composed along the DAG:
    /// `envelope()[i]` bounds the absolute difference between the
    /// simulator's node-`i` output and this model's. A node's input error
    /// is the maximum of its sources' envelopes (the graph input carries
    /// none); `Concat` nodes pass it through unchanged.
    pub fn envelope(&self) -> Vec<f64> {
        let mut lut_cache: [Option<f64>; 2] = [None, None];
        let mut env: Vec<f64> = Vec::with_capacity(self.graph.depth());
        for i in 0..self.graph.depth() {
            let eps_in = self
                .graph
                .node_sources(i)
                .iter()
                .map(|src| match src {
                    GraphSource::Input => 0.0,
                    GraphSource::Node(j) => env[*j],
                })
                .fold(0.0f64, f64::max);
            let eps = match self.graph.nodes()[i].op {
                GraphOp::Layer(layer) => envelope_step(
                    &layer,
                    self.graph.node_input_shape(i),
                    &self.params[i],
                    eps_in,
                    &mut lut_cache,
                ),
                GraphOp::Concat => eps_in,
            };
            env.push(eps);
        }
        env
    }

    /// Checks a full set of simulator node outputs against the golden
    /// model and the derived envelope — `outputs[i]` must be node `i`'s
    /// output volume (what
    /// [`run_graph_replay_collect`](../../neurocube/struct.Neurocube.html#method.run_graph_replay_collect)
    /// returns).
    ///
    /// # Errors
    ///
    /// Returns the first [`Divergence`] found, scanning nodes in
    /// topological order (`Divergence::layer` is the node index).
    ///
    /// # Panics
    ///
    /// Panics if `outputs` has the wrong node count or lengths.
    pub fn check(&self, input: &Tensor, outputs: &[Tensor]) -> Result<(), Divergence> {
        assert_eq!(outputs.len(), self.graph.depth(), "one tensor per node");
        let golden = self.forward(input);
        let envelope = self.envelope();
        for (i, (sim, gold)) in outputs.iter().zip(&golden).enumerate() {
            assert_eq!(sim.len(), gold.len(), "node {i} output length");
            // A hair of float headroom on top of the analytical bound: the
            // envelope arithmetic itself runs in f64.
            let bound = envelope[i] + 1e-9;
            for (n, (&s, &g)) in sim.as_slice().iter().zip(gold).enumerate() {
                let s = s.to_f64();
                if (s - g).abs() > bound {
                    return Err(Divergence {
                        layer: i,
                        neuron: n,
                        simulated: s,
                        golden: g,
                        bound,
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks only the graph's *final* output (the last node in
    /// topological order — what
    /// [`run_graph_inference`](neurocube::Neurocube::run_graph_inference)
    /// returns) against the golden model and that node's derived
    /// envelope. The graph counterpart of [`GoldenNet::check_output`],
    /// used by the two-speed serving audits.
    ///
    /// # Errors
    ///
    /// Returns the first [`Divergence`] found (`Divergence::layer` is the
    /// output node's index).
    ///
    /// # Panics
    ///
    /// Panics if `output` does not match the output node's length.
    pub fn check_output(&self, input: &Tensor, output: &Tensor) -> Result<(), Divergence> {
        let golden = self.forward(input);
        let last = self.graph.depth() - 1;
        let gold = &golden[last];
        assert_eq!(output.len(), gold.len(), "final output length");
        // Same float headroom as [`GoldenGraph::check`].
        let bound = self.envelope()[last] + 1e-9;
        check_final(output, gold, bound, last)
    }
}

/// Shared final-output comparison of the two `check_output` paths.
fn check_final(sim: &Tensor, gold: &[f64], bound: f64, layer: usize) -> Result<(), Divergence> {
    for (n, (&s, &g)) in sim.as_slice().iter().zip(gold).enumerate() {
        let s = s.to_f64();
        if (s - g).abs() > bound {
            return Err(Divergence {
                layer,
                neuron: n,
                simulated: s,
                golden: g,
                bound,
            });
        }
    }
    Ok(())
}

/// LUT quantization error for a tabulated activation, including one output
/// LSB for the final `Q1.7.8` rounding, memoized per activation kind.
fn lut_error(cache: &mut [Option<f64>; 2], act: Activation) -> f64 {
    let slot = match act {
        Activation::Sigmoid => 0,
        Activation::Tanh => 1,
        _ => unreachable!("only tabulated activations have LUT error"),
    };
    *cache[slot].get_or_insert_with(|| ActivationLut::new(act).max_error() + LSB)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;
    use neurocube_nn::{Executor, LayerSpec, Shape};

    fn ramp(shape: Shape) -> Tensor {
        let data = (0..shape.len())
            .map(|i| Q88::from_f64(((i * 37) % 128) as f64 / 64.0 - 1.0))
            .collect();
        Tensor::from_vec(shape.channels, shape.height, shape.width, data)
    }

    fn check_net(net: NetworkSpec, seed: u64, scale: f64) {
        let params = net.init_params(seed, scale);
        let input = ramp(net.input_shape());
        let exec = Executor::new(net.clone(), params.clone());
        let outputs = exec.forward(&input);
        let golden = GoldenNet::from_quantized(net, params);
        if let Err(d) = golden.check(&input, &outputs) {
            panic!("executor escaped the envelope: {d}");
        }
    }

    #[test]
    fn executor_within_envelope_convnet() {
        check_net(
            NetworkSpec::new(
                Shape::new(1, 10, 10),
                vec![
                    LayerSpec::conv(3, 3, Activation::Tanh),
                    LayerSpec::AvgPool { size: 2 },
                    LayerSpec::fc(6, Activation::Sigmoid),
                ],
            )
            .unwrap(),
            11,
            0.3,
        );
    }

    #[test]
    fn executor_within_envelope_deep_fc() {
        check_net(
            NetworkSpec::new(
                Shape::flat(24),
                vec![
                    LayerSpec::fc(24, Activation::ReLU),
                    LayerSpec::fc(16, Activation::Tanh),
                    LayerSpec::fc(8, Activation::Identity),
                ],
            )
            .unwrap(),
            5,
            0.4,
        );
    }

    #[test]
    fn executor_within_envelope_under_saturation() {
        // Large weights drive the accumulator and output saturation paths;
        // the envelope grows but must still contain the simulator.
        check_net(
            NetworkSpec::new(
                Shape::flat(32),
                vec![LayerSpec::fc(4, Activation::Identity)],
            )
            .unwrap(),
            3,
            60.0,
        );
    }

    #[test]
    fn identity_diagonal_is_exact() {
        let net =
            NetworkSpec::new(Shape::flat(3), vec![LayerSpec::fc(3, Activation::Identity)]).unwrap();
        let mut w = vec![Q88::ZERO; 9];
        for i in 0..3 {
            w[i * 3 + i] = Q88::ONE;
        }
        let golden = GoldenNet::from_quantized(net, vec![w]);
        let input = Tensor::from_flat(vec![
            Q88::from_f64(1.5),
            Q88::from_f64(-2.25),
            Q88::from_f64(0.125),
        ]);
        let out = golden.forward(&input);
        assert_eq!(out[0], vec![1.5, -2.25, 0.125]);
    }

    #[test]
    fn envelope_grows_with_depth() {
        let net = NetworkSpec::new(
            Shape::flat(8),
            vec![
                LayerSpec::fc(8, Activation::Identity),
                LayerSpec::fc(8, Activation::Identity),
                LayerSpec::fc(8, Activation::Identity),
            ],
        )
        .unwrap();
        let params = net.init_params(2, 0.5);
        let golden = GoldenNet::from_quantized(net, params);
        let env = golden.envelope();
        assert!(env[0] >= 1.0 / 256.0, "first layer at least one LSB");
        assert!(
            env.windows(2).all(|w| w[1] >= w[0] * 0.2),
            "envelope must not collapse: {env:?}"
        );
    }

    #[test]
    fn divergence_detected_when_outputs_corrupted() {
        let net =
            NetworkSpec::new(Shape::flat(4), vec![LayerSpec::fc(2, Activation::Identity)]).unwrap();
        let params = net.init_params(9, 0.25);
        let input = ramp(net.input_shape());
        let exec = Executor::new(net.clone(), params.clone());
        let mut outputs = exec.forward(&input);
        let bad = outputs[0].at(0).saturating_add(Q88::from_f64(1.0));
        outputs[0].set_at(0, bad);
        let golden = GoldenNet::from_quantized(net, params);
        let err = golden.check(&input, &outputs).unwrap_err();
        assert_eq!(err.layer, 0);
        assert_eq!(err.neuron, 0);
        assert!(err.to_string().contains("exceeds envelope"));
    }

    #[test]
    fn graph_of_linear_chain_matches_golden_net() {
        let net = NetworkSpec::new(
            Shape::new(1, 10, 10),
            vec![
                LayerSpec::conv(3, 3, Activation::Tanh),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(6, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = net.init_params(11, 0.3);
        let input = ramp(net.input_shape());
        let gnet = GoldenNet::from_quantized(net.clone(), params.clone());
        let ggraph = GoldenGraph::from_quantized(net.to_graph(), params);
        assert_eq!(gnet.forward(&input), ggraph.forward(&input));
        assert_eq!(gnet.envelope(), ggraph.envelope());
    }

    #[test]
    fn residual_add_sums_its_branches_exactly() {
        use neurocube_nn::{GraphBuilder, INPUT};
        let mut b = GraphBuilder::new(Shape::new(1, 6, 6));
        b.layer("stem", INPUT, LayerSpec::conv(2, 3, Activation::Identity));
        b.layer(
            "branch",
            "stem",
            LayerSpec::conv(2, 1, Activation::Identity),
        );
        b.add("res", &["stem", "branch"], Activation::Identity);
        let graph = b.build().unwrap();
        let params = graph.init_params(7, 0.1);
        let golden = GoldenGraph::from_quantized(graph.clone(), params);
        let input = ramp(graph.input_shape());
        let outs = golden.forward(&input);
        let (stem, branch, res) = (&outs[0], &outs[1], &outs[2]);
        for i in 0..res.len() {
            assert!(
                (res[i] - (stem[i] + branch[i])).abs() < 1e-12,
                "residual sum must be exact at {i}"
            );
        }
    }

    #[test]
    fn concat_envelope_is_the_worst_part_and_check_flags_corruption() {
        use neurocube_nn::{GraphBuilder, INPUT};
        let mut b = GraphBuilder::new(Shape::new(1, 8, 8));
        b.layer("left", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        b.layer("right", INPUT, LayerSpec::conv(1, 3, Activation::Sigmoid));
        b.concat("cat", &["left", "right"]);
        b.layer("head", "cat", LayerSpec::fc(4, Activation::Identity));
        let graph = b.build().unwrap();
        let params = graph.init_params(3, 0.3);
        let golden = GoldenGraph::from_quantized(graph.clone(), params);
        let env = golden.envelope();
        assert_eq!(env[2], env[0].max(env[1]), "concat passes error through");

        let input = ramp(graph.input_shape());
        let outs = golden.forward(&input);
        // Quantize the golden outputs: they are inside the envelope by
        // construction (one LSB of rounding ≤ every node's bound).
        let mut sims: Vec<Tensor> = (0..graph.depth())
            .map(|i| {
                let s = graph.node_output_shape(i);
                Tensor::from_vec(
                    s.channels,
                    s.height,
                    s.width,
                    outs[i].iter().map(|&v| Q88::from_f64(v)).collect(),
                )
            })
            .collect();
        golden
            .check(&input, &sims)
            .expect("quantized golden passes");
        let bad = sims[3].at(0).saturating_add(Q88::from_f64(2.0));
        sims[3].set_at(0, bad);
        let err = golden.check(&input, &sims).unwrap_err();
        assert_eq!(err.layer, 3, "corruption localized to the head node");
    }

    #[test]
    fn check_output_accepts_the_executor_and_flags_corruption() {
        let net = NetworkSpec::new(
            Shape::new(1, 10, 10),
            vec![
                LayerSpec::conv(2, 3, Activation::Tanh),
                LayerSpec::fc(5, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = net.init_params(13, 0.3);
        let input = ramp(net.input_shape());
        let exec = Executor::new(net.clone(), params.clone());
        let outputs = exec.forward(&input);
        let final_out = outputs.last().unwrap().clone();
        let golden = GoldenNet::from_quantized(net, params);
        golden
            .check_output(&input, &final_out)
            .expect("executor final output inside envelope");
        // Agreement with the full check on the same data.
        golden.check(&input, &outputs).expect("full check agrees");
        let mut bad = final_out;
        let v = bad.at(0).saturating_add(Q88::from_f64(1.5));
        bad.set_at(0, v);
        let err = golden.check_output(&input, &bad).unwrap_err();
        assert_eq!(err.layer, 1, "final layer index");
        assert_eq!(err.neuron, 0);
    }

    #[test]
    fn graph_check_output_checks_the_output_node_only() {
        use neurocube_nn::{GraphBuilder, INPUT};
        let mut b = GraphBuilder::new(Shape::new(1, 8, 8));
        b.layer("stem", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        b.layer("head", "stem", LayerSpec::fc(4, Activation::Identity));
        let graph = b.build().unwrap();
        let params = graph.init_params(3, 0.3);
        let golden = GoldenGraph::from_quantized(graph.clone(), params);
        let input = ramp(graph.input_shape());
        let outs = golden.forward(&input);
        let last = graph.depth() - 1;
        let s = graph.node_output_shape(last);
        let quantized = Tensor::from_vec(
            s.channels,
            s.height,
            s.width,
            outs[last].iter().map(|&v| Q88::from_f64(v)).collect(),
        );
        golden
            .check_output(&input, &quantized)
            .expect("quantized golden output passes");
        let mut bad = quantized;
        let v = bad.at(0).saturating_add(Q88::from_f64(2.0));
        bad.set_at(0, v);
        let err = golden.check_output(&input, &bad).unwrap_err();
        assert_eq!(err.layer, last, "output node index");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let net = NetworkSpec::new(
            Shape::flat(3),
            vec![
                LayerSpec::fc(4, Activation::Tanh),
                LayerSpec::fc(2, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = net.init_params(4, 0.4);
        let golden = GoldenNet::from_quantized(net.clone(), params.clone());
        let input = ramp(net.input_shape());
        let target = [0.25, 0.75];
        let grads = golden.backward(&input, &target);

        let loss_at = |params: &[Vec<Q88>], nudge: Option<(usize, usize, f64)>| -> f64 {
            // Recompute the loss with one weight perturbed in f64 space by
            // rebuilding a golden net whose forward uses the nudged value.
            // Q88 cannot represent arbitrary nudges, so perturb through the
            // f64 forward directly: clone into a helper closure.
            let g = GoldenNet::from_quantized(net.clone(), params.to_vec());
            let mut cur: Vec<f64> = input.as_slice().iter().map(|q| q.to_f64()).collect();
            for (i, layer_params) in params.iter().enumerate().take(g.spec.depth()) {
                let in_shape = g.spec.layer_input(i);
                let layer = g.spec.layers()[i];
                let n_conn = layer.connections_per_neuron(in_shape);
                let act = layer.activation();
                let mut next = Vec::new();
                for neuron in 0..g.spec.layer_output(i).len() {
                    let mut acc = 0.0;
                    for k in 0..n_conn {
                        let conn = connections::resolve(&layer, in_shape, neuron, k);
                        let mut w = connections::weight_value(conn, layer_params).to_f64();
                        if let connections::WeightRef::Stored(widx) = conn.weight {
                            if let Some((li, wi, d)) = nudge {
                                if li == i && wi == widx {
                                    w += d;
                                }
                            }
                        }
                        acc += w * cur[conn.input_index];
                    }
                    next.push(act.ideal(acc));
                }
                cur = next;
            }
            0.5 * cur
                .iter()
                .zip(&target)
                .map(|(o, t)| (o - t).powi(2))
                .sum::<f64>()
        };

        let h = 1e-6;
        for (li, layer_grads) in grads.d_weights.iter().enumerate() {
            for (wi, &g) in layer_grads.iter().enumerate().step_by(3) {
                let plus = loss_at(&params, Some((li, wi, h)));
                let minus = loss_at(&params, Some((li, wi, -h)));
                let numeric = (plus - minus) / (2.0 * h);
                assert!(
                    (numeric - g).abs() <= 1e-4 * (1.0 + g.abs()),
                    "layer {li} weight {wi}: numeric {numeric} vs analytic {g}"
                );
            }
        }
        assert!(grads.loss >= 0.0);
        assert_eq!(grads.d_input.len(), 3);
    }
}
