//! Golden reference models for differential verification.
//!
//! The paper cross-checks every simulated number against an independent
//! analytical model (Fig. 9–11: MAC utilization and vault-bandwidth
//! equations), and related near-memory compilers ship an f64 functional
//! reference next to their cycle-accurate backends. This crate is our
//! version of that oracle, split into two independent models:
//!
//! * [`func`] — a double-precision functional reference of forward and
//!   backward network execution. It shares only the *declarative* parts of
//!   the stack (layer geometry and the canonical connection map) with the
//!   simulator; all arithmetic is ideal `f64`. Because every error source
//!   of the `Q1.7.8` datapath is bounded (product truncation, LUT
//!   quantization, activation Lipschitz constants), the model derives a
//!   per-layer **error envelope** that the fixed-point simulator's outputs
//!   must fall inside — any excursion is a real defect, never noise.
//! * [`timing`] — an analytical cycle model per layer: the maximum of MAC
//!   array occupancy, per-PE packet serialization, per-channel DRAM
//!   bandwidth (burst/`t_CCD` pacing from [`neurocube_dram::ChannelConfig`])
//!   and NoC injection/ejection port serialization, each a provable **lower
//!   bound** on the cycle-level simulator's per-layer cycle count, plus a
//!   configurable upper tolerance envelope.
//!
//! The integration suite (`tests/tests/differential_golden.rs`) drives
//! randomized network configurations through both the simulator and these
//! models; with the real shrinking property-test engine any divergence is
//! reported as a minimal counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod func;
pub mod timing;

pub use func::{eval_layer, layer_row_sum_max, Divergence, GoldenBackward, GoldenGraph, GoldenNet};
pub use timing::{
    channel_stream_cycles, check_graph_report, check_inference_report, graph_bounds,
    graph_service_envelope, layer_bounds, multi_layer_bounds, plan_graph, program_bound,
    service_envelope, CycleEnvelope, EnvelopeViolation, GraphPlan, LayerBound, TimingViolation,
    DEFAULT_SLACK,
};
