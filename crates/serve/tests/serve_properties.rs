//! Property-based tests of the serving scheduler against its serial
//! oracle, plus determinism and malformed-request fuzz suites.
//!
//! Synthetic (timing-only) models keep these fast: the properties are
//! about scheduling policy, not cube execution, so no real inferences
//! run here. `tests/tests/serve_system.rs` covers the real-cube side.

use neurocube::SystemConfig;
use neurocube_serve::{
    generate, oracle, serve_mode, LoadProfile, ModelCatalog, Outcome, Request, ServeConfig,
    TrafficSpec,
};
use proptest::prelude::*;

/// A catalog of 1–3 synthetic models with varied timing.
fn catalog(models: usize) -> ModelCatalog {
    let mut cat = ModelCatalog::new(SystemConfig::paper(true));
    let names = ["alpha", "beta", "gamma"];
    for (i, name) in names.iter().enumerate().take(models) {
        let service = 80 + 70 * i as u64;
        let reprogram = 30 + 25 * i as u64;
        cat.register_synthetic(name, service, reprogram);
    }
    cat
}

fn mix(models: usize) -> Vec<(String, u32)> {
    ["alpha", "beta", "gamma"]
        .iter()
        .take(models)
        .enumerate()
        .map(|(i, n)| ((*n).to_string(), 1 + i as u32))
        .collect()
}

fn any_profile() -> impl Strategy<Value = LoadProfile> {
    prop_oneof![
        Just(LoadProfile::Poisson),
        Just(LoadProfile::Bursty),
        Just(LoadProfile::Diurnal),
    ]
}

fn any_config() -> impl Strategy<Value = ServeConfig> {
    (1usize..5, 1usize..7, 0u64..1500, 2usize..24).prop_map(
        |(pool, max_batch, max_delay, queue_cap)| ServeConfig {
            pool,
            max_batch,
            max_delay,
            queue_cap,
        },
    )
}

proptest! {
    /// The scheduler and the independent serial oracle produce the same
    /// schedule — record for record, outcome for outcome — over random
    /// configurations, load profiles and (possibly malformed) traces.
    /// The two share no machinery, so agreement here means the policy
    /// documented in `scheduler`'s module docs is what actually runs,
    /// with or without event-horizon fast-forwarding.
    #[test]
    fn scheduler_matches_the_serial_oracle(
        seed in any::<u64>(),
        models in 1usize..4,
        cfg in any_config(),
        profile in any_profile(),
        mean_gap in 20.0f64..600.0,
        count in 1u64..160,
        malformed in 0u32..300,
        skip in any::<bool>(),
    ) {
        let cat = catalog(models);
        let spec = TrafficSpec {
            profile,
            malformed_permille: malformed,
            ..TrafficSpec::poisson(seed, mean_gap, count, mix(models))
        };
        let trace = generate(&cat, &spec);
        let got = serve_mode(&cat, &cfg, &trace, Some(skip));
        let want = oracle::schedule(&cat, &cfg, &trace);
        prop_assert_eq!(&got.records, &want.records);
        prop_assert_eq!(&got.outcomes, &want.outcomes);
    }

    /// No dispatched batch ever violates a member's deadline: the batch
    /// completes at or before the deadline of every request it carries.
    /// Infeasible requests are shed (graceful degradation), and the
    /// outcome accounting is airtight — every request is exactly one of
    /// completed, shed, or rejected.
    #[test]
    fn batches_never_violate_member_deadlines(
        seed in any::<u64>(),
        cfg in any_config(),
        profile in any_profile(),
        mean_gap in 20.0f64..400.0,
        count in 1u64..160,
        malformed in 0u32..400,
    ) {
        let cat = catalog(2);
        let spec = TrafficSpec {
            profile,
            malformed_permille: malformed,
            ..TrafficSpec::poisson(seed, mean_gap, count, mix(2))
        };
        let trace = generate(&cat, &spec);
        let report = serve_mode(&cat, &cfg, &trace, None);
        for rec in &report.records {
            prop_assert!(rec.requests.len() <= cfg.max_batch);
            for &id in &rec.requests {
                let req = &trace[id as usize];
                prop_assert!(
                    rec.completes_at <= req.deadline,
                    "batch completing at {} carries request {} with deadline {}",
                    rec.completes_at, id, req.deadline
                );
            }
        }
        let mut completed = 0u64;
        let mut shed = 0u64;
        let mut rejected = 0u64;
        for o in &report.outcomes {
            match o {
                Outcome::Completed { .. } => completed += 1,
                Outcome::Shed => shed += 1,
                Outcome::Rejected(_) => rejected += 1,
            }
        }
        prop_assert_eq!(completed, report.completed());
        prop_assert_eq!(shed, report.shed());
        prop_assert_eq!(rejected, report.rejected());
        prop_assert_eq!(completed + shed + rejected, trace.len() as u64);
    }

    /// Same `(seed, trace, config)` twice — and with fast-forward on vs
    /// off — yields bitwise-identical `serve.*` registries, CSV and JSON
    /// included. This is the serving layer's determinism contract.
    #[test]
    fn serving_is_bitwise_deterministic(
        seed in any::<u64>(),
        cfg in any_config(),
        profile in any_profile(),
        mean_gap in 20.0f64..400.0,
        count in 1u64..120,
    ) {
        let cat = catalog(2);
        let spec = TrafficSpec {
            profile,
            ..TrafficSpec::poisson(seed, mean_gap, count, mix(2))
        };
        let trace = generate(&cat, &spec);
        let a = serve_mode(&cat, &cfg, &trace, Some(false));
        let b = serve_mode(&cat, &cfg, &trace, Some(false));
        let fast = serve_mode(&cat, &cfg, &trace, Some(true));
        prop_assert_eq!(a.stats.first_difference(&b.stats), None);
        prop_assert_eq!(a.stats.first_difference(&fast.stats), None);
        prop_assert_eq!(a.stats.to_csv(), fast.stats.to_csv());
        prop_assert_eq!(a.stats.to_json(), fast.stats.to_json());
        prop_assert_eq!(&a.records, &fast.records);
    }

    /// Malformed requests — unknown models, empty payloads, wrong
    /// shapes, dead-on-arrival deadlines — are *counted* rejections,
    /// never panics, and never reach a cube.
    #[test]
    fn malformed_requests_are_counted_not_fatal(
        seed in any::<u64>(),
        cfg in any_config(),
        count in 1u64..160,
        permille in 300u32..1000,
    ) {
        let cat = catalog(2);
        let spec = TrafficSpec {
            malformed_permille: permille,
            ..TrafficSpec::poisson(seed, 120.0, count, mix(2))
        };
        let trace = generate(&cat, &spec);
        let report = serve_mode(&cat, &cfg, &trace, None);
        for (i, req) in trace.iter().enumerate() {
            let malformed = cat.lookup(&req.model).is_none()
                || req.input.is_empty()
                || cat.lookup(&req.model).is_some_and(|e| req.input.len() != e.input_len())
                || req.deadline <= req.arrival;
            if malformed {
                prop_assert!(
                    matches!(report.outcomes[i], Outcome::Rejected(_)),
                    "malformed request {} ended as {:?}",
                    i,
                    report.outcomes[i]
                );
            }
            // Dispatched batches only ever carry well-formed requests.
            if let Outcome::Completed { .. } = report.outcomes[i] {
                prop_assert!(!malformed);
            }
        }
        let offered = report.stats.counter("serve.requests.offered");
        prop_assert_eq!(offered, trace.len() as u64);
    }
}

/// Hand-built (non-generated) traces hit the same policy: unsorted
/// traces are rejected loudly rather than scheduled wrongly.
#[test]
#[should_panic(expected = "trace sorted by arrival")]
fn unsorted_traces_are_rejected() {
    let cat = catalog(1);
    let mk = |id: u64, arrival: u64| Request {
        id,
        model: "alpha".to_string(),
        input: vec![neurocube_fixed::Q88::ZERO],
        arrival,
        deadline: arrival + 10_000,
        priority: 0,
    };
    let trace = vec![mk(0, 100), mk(1, 50)];
    let _ = serve_mode(&cat, &ServeConfig::new(1), &trace, None);
}
