//! The model catalog: per-model timing profiles and network payloads.
//!
//! A serving pool schedules in *virtual* time, so it needs each model's
//! service time before any request arrives. Because the cycle model's
//! timing is input-independent (operand values never change control
//! flow), one profiling inference per model captures it exactly: the
//! catalog runs each registered network once on a fresh cube and memoizes
//! the report's total cycles as the model's `service_cycles`. The
//! affinity-miss charge comes from the `golden::timing` host term — the
//! sum of per-layer `programming_cycles` under a [`ProgrammingModel`] —
//! so the scheduler and the analytical timing model can never disagree
//! about what a reprogram costs.
//!
//! Scheduler-only tests can skip the expensive profiling run with
//! [`ModelCatalog::register_synthetic`], which installs a model that has
//! timing but no network; such models schedule normally but cannot be
//! executed.

use neurocube::{Neurocube, PoolCube, ProgrammingModel, SystemConfig};
use neurocube_fixed::Q88;
use neurocube_golden::timing::{graph_service_envelope, service_envelope, DEFAULT_SLACK};
use neurocube_golden::CycleEnvelope;
use neurocube_nn::{GraphSpec, NetworkSpec, Shape, Tensor};

/// The servable payload of a registered model.
pub enum ModelPayload {
    /// A linear network and its weights, executed layer by layer.
    Linear(NetworkSpec, Vec<Vec<Q88>>),
    /// A compiled-graph tenant: the layer DAG and its per-node weights,
    /// executed pipelined (one host programming round-trip per
    /// inference).
    Graph(GraphSpec, Vec<Vec<Q88>>),
}

impl ModelPayload {
    /// Input element count the payload expects.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.input_shape().len()
    }

    /// Input volume shape the payload expects.
    #[must_use]
    pub fn input_shape(&self) -> Shape {
        match self {
            ModelPayload::Linear(spec, _) => spec.input_shape(),
            ModelPayload::Graph(graph, _) => graph.input_shape(),
        }
    }

    /// Ensures this payload is programmed on `cube` under `tag`,
    /// whichever kind it is. Returns `true` on an affinity hit (see
    /// [`PoolCube::ensure_loaded`]); after this the cube serves
    /// inferences through [`PoolCube::run_service`]. Shared by the
    /// full-replay executor and the two-speed audit replays so the two
    /// paths can never program a cube differently.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not fit the cube configuration.
    pub fn ensure_on(&self, cube: &mut PoolCube, tag: u64) -> bool {
        match self {
            ModelPayload::Linear(spec, params) => cube.ensure_loaded(tag, spec, params),
            ModelPayload::Graph(graph, params) => cube.ensure_graph_loaded(tag, graph, params),
        }
    }

    /// Wraps a request payload in the input tensor shape this model
    /// expects.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong element count (admission rejects
    /// such requests before any replay sees them).
    #[must_use]
    pub fn input_tensor(&self, input: Vec<Q88>) -> Tensor {
        let s = self.input_shape();
        Tensor::from_vec(s.channels, s.height, s.width, input)
    }
}

/// One registered model.
pub struct ModelEntry {
    /// Catalog-unique name tenants address the model by.
    pub name: String,
    /// Dense numeric tag (the index in registration order); cubes track
    /// affinity by tag.
    pub tag: u64,
    /// Cycles one inference of this model occupies a cube, from the
    /// profiling run.
    pub service_cycles: u64,
    /// Host programming cycles charged when a cube switches to this
    /// model (the `golden::timing` host term, summed — once per layer
    /// for linear models, once per inference for compiled graphs).
    pub reprogram_cycles: u64,
    /// The certified service envelope from `golden::timing`: every
    /// measured inference of this model must land inside (the two-speed
    /// audits assert it per replay). Registration asserts
    /// `service_cycles` itself sits inside, so the analytical fast path
    /// starts certified. Synthetic entries get the degenerate
    /// single-point envelope at their declared service time.
    pub envelope: CycleEnvelope,
    /// What the model executes; `None` for synthetic entries.
    pub payload: Option<ModelPayload>,
}

impl ModelEntry {
    /// Input element count this model expects (admission rejects any
    /// other payload length). Synthetic models declare a 1-element
    /// input, so shape validation applies to them uniformly.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.payload.as_ref().map_or(1, ModelPayload::input_len)
    }
}

/// The registry of servable models over one cube configuration.
pub struct ModelCatalog {
    cfg: SystemConfig,
    programming: ProgrammingModel,
    entries: Vec<ModelEntry>,
}

impl ModelCatalog {
    /// A catalog over `cfg`. Profiling and execution run with the host
    /// programming phase *untimed* (per-layer programming is not part of
    /// service time); the affinity-miss charge uses `cfg`'s programming
    /// model when set, [`ProgrammingModel::typical`] otherwise.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> ModelCatalog {
        let programming = cfg.programming.unwrap_or_else(ProgrammingModel::typical);
        let mut cfg = cfg;
        cfg.programming = None;
        ModelCatalog {
            cfg,
            programming,
            entries: Vec::new(),
        }
    }

    /// The execution configuration (programming phase untimed).
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The host programming model behind the reprogram charge.
    #[must_use]
    pub fn programming(&self) -> ProgrammingModel {
        self.programming
    }

    /// Registers a real network under `name`, initializing weights from
    /// `seed` and profiling one inference to measure service time.
    /// Returns the model's tag.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or when the network does not fit the
    /// cube configuration.
    pub fn register(&mut self, name: &str, spec: NetworkSpec, seed: u64) -> u64 {
        assert!(self.lookup(name).is_none(), "duplicate model name {name}");
        let params = spec.init_params(seed, 0.25);
        let mut cube = Neurocube::new(self.cfg.clone());
        let loaded = cube.load(spec.clone(), params.clone());
        let input = profile_input(&spec);
        let (_, report) = cube.run_inference(&loaded, &input);
        let service_cycles = report.total_cycles();
        assert!(service_cycles > 0, "profiled model must take time");

        // The affinity-miss charge: the golden timing model's host term,
        // summed over layers. With a uniform per-layer PNG count this
        // equals `ProgrammingModel::network_cycles`, asserted here so the
        // two formulations can never drift apart.
        let mut prog_cfg = self.cfg.clone();
        prog_cfg.programming = Some(self.programming);
        let reprogram_cycles: u64 = neurocube_golden::timing::layer_bounds(&prog_cfg, &spec)
            .iter()
            .map(|b| b.programming_cycles)
            .sum();
        let nodes = self.cfg.nodes() as u32;
        assert_eq!(
            reprogram_cycles,
            self.programming
                .network_cycles(std::iter::repeat_n(nodes, spec.depth())),
            "golden host term and ProgrammingModel::network_cycles disagree"
        );

        // The certified service envelope (programming untimed, matching
        // the profiling run). The profiled time must sit inside it —
        // outside would mean the golden timing model and the simulator
        // disagree, a defect registration refuses to memoize.
        let envelope = service_envelope(&self.cfg, &spec, DEFAULT_SLACK);
        assert!(
            envelope.contains(service_cycles),
            "model {name}: profiled {service_cycles} cycles escape the \
             certified envelope [{}, {}]",
            envelope.lower,
            envelope.upper
        );

        let tag = self.entries.len() as u64;
        self.entries.push(ModelEntry {
            name: name.to_string(),
            tag,
            service_cycles,
            reprogram_cycles,
            envelope,
            payload: Some(ModelPayload::Linear(spec, params)),
        });
        tag
    }

    /// Registers a compiled-graph tenant under `name`, initializing
    /// per-node weights from `seed` and profiling one pipelined inference
    /// to measure service time. The affinity-miss charge is a *single*
    /// host programming phase — the cube is programmed once per graph, so
    /// switching to a graph tenant costs one `layer_cycles` charge no
    /// matter how deep the DAG. Returns the model's tag.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or when the graph does not compile for
    /// the cube configuration.
    pub fn register_graph(&mut self, name: &str, graph: GraphSpec, seed: u64) -> u64 {
        assert!(self.lookup(name).is_none(), "duplicate model name {name}");
        let params = graph.init_params(seed, 0.25);
        let mut cube = Neurocube::new(self.cfg.clone());
        let loaded = cube
            .load_graph(&graph, params.clone())
            .expect("graph compiles for the catalog configuration");
        let s = graph.input_shape();
        let input = Tensor::from_vec(s.channels, s.height, s.width, input_payload(s.len(), 0));
        let (_, report) = cube.run_graph_inference(&loaded, &input);
        let service_cycles = report.total_cycles();
        assert!(service_cycles > 0, "profiled model must take time");

        // The golden timing model's host term for a compiled graph is one
        // programming charge on phase 0; asserted against the direct
        // formulation so the two can never drift apart.
        let mut prog_cfg = self.cfg.clone();
        prog_cfg.programming = Some(self.programming);
        let reprogram_cycles: u64 = neurocube_golden::timing::graph_bounds(&prog_cfg, &graph)
            .iter()
            .map(|b| b.programming_cycles)
            .sum();
        assert_eq!(
            reprogram_cycles,
            self.programming.layer_cycles(self.cfg.nodes() as u32),
            "golden graph host term and one layer_cycles charge disagree"
        );

        let envelope = graph_service_envelope(&self.cfg, &graph, DEFAULT_SLACK);
        assert!(
            envelope.contains(service_cycles),
            "model {name}: profiled {service_cycles} cycles escape the \
             certified envelope [{}, {}]",
            envelope.lower,
            envelope.upper
        );

        let tag = self.entries.len() as u64;
        self.entries.push(ModelEntry {
            name: name.to_string(),
            tag,
            service_cycles,
            reprogram_cycles,
            envelope,
            payload: Some(ModelPayload::Graph(graph, params)),
        });
        tag
    }

    /// Registers a timing-only model for scheduler tests: it queues,
    /// batches and sheds like any other, but holds no network and cannot
    /// be executed.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or zero service time.
    pub fn register_synthetic(
        &mut self,
        name: &str,
        service_cycles: u64,
        reprogram_cycles: u64,
    ) -> u64 {
        assert!(self.lookup(name).is_none(), "duplicate model name {name}");
        assert!(service_cycles > 0, "service time must be positive");
        let tag = self.entries.len() as u64;
        self.entries.push(ModelEntry {
            name: name.to_string(),
            tag,
            service_cycles,
            reprogram_cycles,
            envelope: CycleEnvelope::exact(service_cycles),
            payload: None,
        });
        tag
    }

    /// Looks a model up by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// One model by tag.
    ///
    /// # Panics
    ///
    /// Panics when the tag was never issued by this catalog.
    #[must_use]
    pub fn entry(&self, tag: u64) -> &ModelEntry {
        &self.entries[usize::try_from(tag).expect("tag fits usize")]
    }

    /// Registered models in tag order.
    pub fn entries(&self) -> impl Iterator<Item = &ModelEntry> {
        self.entries.iter()
    }

    /// Number of registered models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no model is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Deterministic profiling input (values never affect timing; any
/// payload of the right shape measures the same service time).
fn profile_input(spec: &NetworkSpec) -> Tensor {
    let s = spec.input_shape();
    Tensor::from_vec(s.channels, s.height, s.width, input_payload(s.len(), 0))
}

/// Deterministic per-request payload: a ramp offset by the request id so
/// different requests produce different outputs (exercising the
/// executor's checksum) while staying cheap to generate.
#[must_use]
pub fn input_payload(len: usize, request_id: u64) -> Vec<Q88> {
    (0..len)
        .map(|i| {
            let phase = (i as u64 + request_id) % 64;
            Q88::from_f64((phase as f64 - 32.0) / 32.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_nn::workloads;

    #[test]
    fn register_profiles_service_and_reprogram_cycles() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        let tag = cat.register("tiny", workloads::tiny_convnet(), 7);
        let e = cat.entry(tag);
        assert_eq!(e.name, "tiny");
        assert!(e.service_cycles > 0);
        // 4 layers × 16 nodes × 12 regs × 10 ns at 5 GHz.
        assert_eq!(
            e.reprogram_cycles,
            ProgrammingModel::typical().network_cycles(std::iter::repeat_n(16, 4))
        );
        assert_eq!(cat.lookup("tiny").unwrap().tag, tag);
        assert!(cat.lookup("missing").is_none());
    }

    #[test]
    fn synthetic_models_schedule_without_networks() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        let tag = cat.register_synthetic("ghost", 500, 100);
        let e = cat.entry(tag);
        assert_eq!(e.service_cycles, 500);
        assert_eq!(e.reprogram_cycles, 100);
        assert!(e.payload.is_none());
        assert_eq!(e.input_len(), 1);
        assert_eq!(e.envelope, CycleEnvelope::exact(500));
    }

    #[test]
    fn registered_entries_carry_a_certified_envelope() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        let lin = cat.register("tiny", workloads::tiny_convnet(), 7);
        let g = cat.register_graph("res", workloads::residual_toy(), 7);
        for tag in [lin, g] {
            let e = cat.entry(tag);
            assert!(e.envelope.lower > 0, "{}: positive lower bound", e.name);
            assert!(
                e.envelope.contains(e.service_cycles),
                "{}: profiled time inside its own envelope",
                e.name
            );
            assert!(e.envelope.upper > e.envelope.lower);
        }
        // The envelopes are the golden timing model's, bit for bit.
        let lin_env = service_envelope(cat.config(), &workloads::tiny_convnet(), DEFAULT_SLACK);
        assert_eq!(cat.entry(lin).envelope, lin_env);
    }

    #[test]
    fn payload_helpers_program_and_shape_uniformly() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        let tag = cat.register("tiny", workloads::tiny_convnet(), 7);
        let e = cat.entry(tag);
        let payload = e.payload.as_ref().unwrap();
        assert_eq!(payload.input_shape().len(), payload.input_len());
        let mut cube = PoolCube::new(cat.config().clone());
        assert!(!payload.ensure_on(&mut cube, tag), "first load is a miss");
        assert!(payload.ensure_on(&mut cube, tag), "second is a hit");
        let input = payload.input_tensor(input_payload(payload.input_len(), 3));
        let (out, report) = cube.run_service(&input);
        assert!(!out.is_empty() && report.total_cycles() > 0);
    }

    #[test]
    fn graph_tenants_profile_pipelined_and_reprogram_once() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        let lin = cat.register("tiny", workloads::tiny_convnet(), 7);
        let g = cat.register_graph("res", workloads::residual_toy(), 7);
        let e = cat.entry(g);
        assert!(e.service_cycles > 0);
        assert!(matches!(e.payload, Some(ModelPayload::Graph(..))));
        assert_eq!(e.input_len(), 144);
        // One host charge for the whole DAG, versus one per layer for the
        // linear tenant.
        assert_eq!(
            e.reprogram_cycles,
            ProgrammingModel::typical().layer_cycles(16)
        );
        assert_eq!(
            cat.entry(lin).reprogram_cycles,
            4 * e.reprogram_cycles,
            "a 4-layer linear tenant pays the charge per layer"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate model name")]
    fn duplicate_names_are_rejected() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        cat.register_synthetic("m", 10, 0);
        cat.register_synthetic("m", 20, 0);
    }
}
