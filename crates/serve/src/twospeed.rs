//! Two-speed execution: an analytical fast path with sampled
//! cycle-accurate audits.
//!
//! The scheduler already plans every dispatch in virtual time from the
//! catalog's memoized `service_cycles`, so for throughput studies the
//! full cube replay is pure overhead: the analytical path prices each
//! dispatch from the profile alone and never ticks a cube. What the
//! fast path *cannot* see is a defect in that profile — a stale
//! memoization, a drifted timing model, a corrupted payload. The
//! two-speed executor closes that gap with sampled audits: a
//! deterministic counter-PRNG draw keyed by `(audit_seed, dispatch
//! index)` selects a configurable fraction of dispatches for full
//! cycle-accurate and value-accurate replay on a real
//! [`PoolCube`].
//!
//! Each audited dispatch replays on a **fresh** cube — the same
//! conditions the catalog profiled under — so the first inference's
//! measured cycles must equal the memoized `service_cycles` *exactly*
//! (service time is input-independent; the suites certify this). The
//! audit therefore asserts three nested contracts, strongest first:
//!
//! 1. the analytical per-inference service time equals the measured
//!    first-inference cycles bit for bit (catches even a ±1-cycle
//!    defect in the fast path);
//! 2. every measured inference lands inside the model's certified
//!    `golden::timing` envelope (later batch members run on a warm cube
//!    whose DRAM row-buffer state legitimately shifts timing — the
//!    envelope is the contract that survives warmth);
//! 3. every output matches the golden functional reference within its
//!    certified error envelope.
//!
//! Violations are *collected*, never panicked — the report carries them
//! so harnesses can gate on `violations.is_empty()` — and the audited
//! subset depends only on `(audit_seed, audit_rate, dispatch index)`:
//! bitwise identical across serial and threaded execution and across
//! reruns. At `audit_rate = 1.0` the audit path degenerates to the full
//! executor record for record, folding the same output checksum.

use crate::catalog::{ModelCatalog, ModelPayload};
use crate::executor::{fold_checksum, ExecMode};
use crate::request::Request;
use crate::scheduler::DispatchRecord;
use neurocube::PoolCube;
use neurocube_fault::{draw, Bernoulli};
use neurocube_golden::{CycleEnvelope, Divergence, GoldenGraph, GoldenNet};
use neurocube_sim::{BatchRunner, Histogram, StatsRegistry};
use std::fmt;

/// PRNG domain for audit-selection draws, disjoint from the fault
/// domains (`0x01..=0x05`) and the traffic domain (`0x06`).
pub const DOMAIN_AUDIT: u64 = 0x0700_0000_0000_0000;

/// The deterministic audit sampler: one Bernoulli trial per dispatch,
/// keyed by `(seed, dispatch index)` through the counter PRNG. No
/// stream state — whether dispatch `i` is audited never depends on any
/// other dispatch, on thread interleaving, or on how many times the
/// question is asked.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditSampler {
    seed: u64,
    rate: f64,
    trial: Bernoulli,
}

impl AuditSampler {
    /// A sampler auditing `rate` of dispatches (clamped to `[0, 1]`;
    /// NaN reads as 0) under `seed`.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> AuditSampler {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        AuditSampler {
            seed,
            rate,
            trial: Bernoulli::new(rate),
        }
    }

    /// The clamped audit rate this sampler runs at.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether dispatch `dispatch` is audited. Pure in `(seed, rate,
    /// dispatch)`.
    #[must_use]
    pub fn audited(&self, dispatch: u64) -> bool {
        !self.trial.is_never() && self.trial.hit(draw(self.seed, DOMAIN_AUDIT, dispatch, 0))
    }

    /// The audited subset of dispatches `0..n`, ascending.
    #[must_use]
    pub fn select(&self, n: u64) -> Vec<u64> {
        (0..n).filter(|&d| self.audited(d)).collect()
    }
}

/// Two-speed executor knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoSpeedConfig {
    /// Seed of the audit-selection PRNG (independent of the traffic
    /// seed: reusing one stream for both would correlate the audited
    /// subset with the workload).
    pub audit_seed: u64,
    /// Fraction of dispatches audited, clamped to `[0, 1]` by the
    /// sampler. `0` never touches a cube; `1` degenerates to the full
    /// executor.
    pub audit_rate: f64,
    /// Signed corruption injected into the analytical per-inference
    /// service time, for defect-detection tests: the fast path prices
    /// every inference at `service_cycles + defect_cycles` (saturating
    /// at 0) while audits still measure the truth. Any non-zero value
    /// is caught by the next audited dispatch. Production value: 0.
    pub defect_cycles: i64,
}

impl TwoSpeedConfig {
    /// A config with no injected defect.
    #[must_use]
    pub fn new(audit_seed: u64, audit_rate: f64) -> TwoSpeedConfig {
        TwoSpeedConfig {
            audit_seed,
            audit_rate,
            defect_cycles: 0,
        }
    }

    /// Defaults overridden by the environment: `NEUROCUBE_SERVE_SEED`
    /// for the audit seed and `NEUROCUBE_SERVE_AUDIT_RATE` for the rate
    /// (see `neurocube_sim::env`). The defect knob has no environment
    /// override — it exists for the test suites only.
    #[must_use]
    pub fn from_env(default_seed: u64, default_rate: f64) -> TwoSpeedConfig {
        TwoSpeedConfig::new(
            neurocube_sim::serve_seed().unwrap_or(default_seed),
            neurocube_sim::serve_audit_rate().unwrap_or(default_rate),
        )
    }

    /// The sampler this config induces.
    #[must_use]
    pub fn sampler(&self) -> AuditSampler {
        AuditSampler::new(self.audit_seed, self.audit_rate)
    }
}

/// One contract an audited dispatch broke. Collected, never panicked.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditViolation {
    /// The analytical per-inference service time escaped the model's
    /// certified envelope (the fast path was selling uncertified
    /// numbers).
    AnalyticalOutsideEnvelope {
        /// Global dispatch index.
        dispatch: u64,
        /// Model tag.
        model: u64,
        /// The analytical per-inference cycles.
        cycles: u64,
        /// Envelope lower bound.
        lower: u64,
        /// Envelope upper bound.
        upper: u64,
    },
    /// The fresh-cube first-inference measurement disagreed with the
    /// analytical service time — the strongest check; catches a ±1
    /// defect.
    ServiceCycleMismatch {
        /// Global dispatch index.
        dispatch: u64,
        /// Model tag.
        model: u64,
        /// What the fast path charged per inference.
        analytical: u64,
        /// What the fresh cube measured on the first inference.
        measured: u64,
    },
    /// A measured inference (any batch member) escaped the certified
    /// envelope.
    MeasuredOutsideEnvelope {
        /// Global dispatch index.
        dispatch: u64,
        /// Model tag.
        model: u64,
        /// The measured cycles.
        cycles: u64,
        /// Envelope lower bound.
        lower: u64,
        /// Envelope upper bound.
        upper: u64,
    },
    /// An output diverged from the golden functional reference.
    OutputDivergence {
        /// Global dispatch index.
        dispatch: u64,
        /// Model tag.
        model: u64,
        /// The golden checker's diagnosis.
        detail: String,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::AnalyticalOutsideEnvelope {
                dispatch,
                model,
                cycles,
                lower,
                upper,
            } => write!(
                f,
                "dispatch {dispatch} model {model}: analytical {cycles} cycles \
                 outside certified envelope [{lower}, {upper}]"
            ),
            AuditViolation::ServiceCycleMismatch {
                dispatch,
                model,
                analytical,
                measured,
            } => write!(
                f,
                "dispatch {dispatch} model {model}: analytical {analytical} \
                 cycles but fresh-cube audit measured {measured}"
            ),
            AuditViolation::MeasuredOutsideEnvelope {
                dispatch,
                model,
                cycles,
                lower,
                upper,
            } => write!(
                f,
                "dispatch {dispatch} model {model}: measured {cycles} cycles \
                 outside certified envelope [{lower}, {upper}]"
            ),
            AuditViolation::OutputDivergence {
                dispatch,
                model,
                detail,
            } => write!(
                f,
                "dispatch {dispatch} model {model}: output diverged from the \
                 golden reference: {detail}"
            ),
        }
    }
}

/// What one audited dispatch measured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Global dispatch index (position in the schedule's record list).
    pub dispatch: u64,
    /// Pool index of the cube the schedule placed the batch on.
    pub cube: usize,
    /// Model tag.
    pub model: u64,
    /// Batch size.
    pub requests: u64,
    /// What the analytical path charged per inference.
    pub analytical_cycles: u64,
    /// Fresh-cube measured cycles of the batch's first inference.
    pub measured_first_cycles: u64,
    /// The executor checksum fold over this dispatch's outputs alone.
    pub output_checksum: u64,
}

/// Everything one two-speed run produced.
pub struct TwoSpeedReport {
    /// Audited dispatch indices, ascending — a pure function of
    /// `(audit_seed, audit_rate, record count)`.
    pub audited: Vec<u64>,
    /// Per-audit measurements, ascending by dispatch index.
    pub audits: Vec<AuditRecord>,
    /// Every broken contract, ascending by dispatch index. Empty on a
    /// healthy run; harnesses gate on exactly that.
    pub violations: Vec<AuditViolation>,
    /// The run's `serve.twospeed.*` registry.
    pub stats: StatsRegistry,
}

/// A golden functional reference, one per executable model.
enum GoldenRef {
    Net(GoldenNet),
    Graph(GoldenGraph),
}

impl GoldenRef {
    fn of(payload: &ModelPayload) -> GoldenRef {
        match payload {
            ModelPayload::Linear(spec, params) => {
                GoldenRef::Net(GoldenNet::from_quantized(spec.clone(), params.clone()))
            }
            ModelPayload::Graph(graph, params) => {
                GoldenRef::Graph(GoldenGraph::from_quantized(graph.clone(), params.clone()))
            }
        }
    }

    fn check_output(
        &self,
        input: &neurocube_nn::Tensor,
        output: &neurocube_nn::Tensor,
    ) -> Result<(), Divergence> {
        match self {
            GoldenRef::Net(net) => net.check_output(input, output),
            GoldenRef::Graph(graph) => graph.check_output(input, output),
        }
    }
}

/// Per-model analytical timing, fixed before any replay starts.
struct ModelAudit {
    /// Per-inference cycles the fast path charges (the memoized profile
    /// plus the injected defect, saturating at 0).
    analytical: u64,
    envelope: CycleEnvelope,
}

/// Per-cube audit result, merged in cube order regardless of mode.
struct CubeAudit {
    audits: Vec<AuditRecord>,
    violations: Vec<AuditViolation>,
    audited_requests: u64,
    measured_cycles: u64,
    /// The executor's per-cube checksum fold over every audited output
    /// value, in dispatch order.
    checksum: u64,
    slack_lower: Histogram,
    slack_upper: Histogram,
}

/// Replays one cube's audited dispatches, each on a fresh cube — the
/// profiling conditions — in dispatch order.
fn audit_cube(
    catalog: &ModelCatalog,
    goldens: &[Option<GoldenRef>],
    models: &[ModelAudit],
    trace: &[Request],
    records: &[(u64, &DispatchRecord)],
) -> CubeAudit {
    let mut out = CubeAudit {
        audits: Vec::with_capacity(records.len()),
        violations: Vec::new(),
        audited_requests: 0,
        measured_cycles: 0,
        checksum: 0,
        slack_lower: Histogram::new(),
        slack_upper: Histogram::new(),
    };
    for &(dispatch, rec) in records {
        let entry = catalog.entry(rec.model);
        let payload = entry
            .payload
            .as_ref()
            .expect("synthetic models cannot be audited; register real networks");
        let golden = goldens[rec.model as usize]
            .as_ref()
            .expect("executable models carry a golden reference");
        let m = &models[rec.model as usize];
        // Fresh cube: the exact conditions the catalog profiled under,
        // so the first inference must reproduce `service_cycles` bit
        // for bit. Later batch members run warm — DRAM row-buffer
        // state legitimately shifts their timing inside the envelope.
        let mut cube = PoolCube::new(catalog.config().clone());
        assert!(
            !payload.ensure_on(&mut cube, rec.model),
            "a fresh cube cannot have affinity"
        );
        let mut record_checksum = 0u64;
        let mut first_cycles = 0u64;
        for (i, &id) in rec.requests.iter().enumerate() {
            let req = &trace[usize::try_from(id).expect("id fits usize")];
            let input = payload.input_tensor(req.input.clone());
            let (output, report) = cube.run_service(&input);
            let measured = report.total_cycles();
            out.measured_cycles += measured;
            out.audited_requests += 1;
            if i == 0 {
                first_cycles = measured;
                if measured != m.analytical {
                    out.violations.push(AuditViolation::ServiceCycleMismatch {
                        dispatch,
                        model: rec.model,
                        analytical: m.analytical,
                        measured,
                    });
                }
            }
            if !m.envelope.contains(measured) {
                out.violations
                    .push(AuditViolation::MeasuredOutsideEnvelope {
                        dispatch,
                        model: rec.model,
                        cycles: measured,
                        lower: m.envelope.lower,
                        upper: m.envelope.upper,
                    });
            }
            out.slack_lower
                .record(measured.saturating_sub(m.envelope.lower));
            out.slack_upper
                .record(m.envelope.upper.saturating_sub(measured));
            if let Err(d) = golden.check_output(&input, &output) {
                out.violations.push(AuditViolation::OutputDivergence {
                    dispatch,
                    model: rec.model,
                    detail: d.to_string(),
                });
            }
            for &v in output.as_slice() {
                record_checksum = fold_checksum(record_checksum, v.to_bits() as u16 as u64);
                out.checksum = fold_checksum(out.checksum, v.to_bits() as u16 as u64);
            }
        }
        out.audits.push(AuditRecord {
            dispatch,
            cube: rec.cube,
            model: rec.model,
            requests: rec.requests.len() as u64,
            analytical_cycles: m.analytical,
            measured_first_cycles: first_cycles,
            output_checksum: record_checksum,
        });
    }
    out
}

/// Runs the two-speed executor over a schedule: every dispatch is
/// priced analytically from the catalog profile; the sampled subset is
/// additionally replayed cycle- and value-accurately on fresh cubes.
/// Returns the merged `serve.twospeed.*` registry plus the audit
/// evidence. Bitwise identical across [`ExecMode`]s and reruns.
///
/// # Panics
///
/// Panics when an *audited* record names a synthetic (timing-only)
/// model — synthetic tenants may ride the analytical path (rate 0) but
/// have nothing to replay.
#[must_use]
pub fn execute_two_speed(
    catalog: &ModelCatalog,
    trace: &[Request],
    records: &[DispatchRecord],
    cfg: &TwoSpeedConfig,
    mode: ExecMode,
) -> TwoSpeedReport {
    let sampler = cfg.sampler();
    let audited = sampler.select(records.len() as u64);

    let models: Vec<ModelAudit> = catalog
        .entries()
        .map(|e| ModelAudit {
            analytical: u64::try_from((e.service_cycles as i64 + cfg.defect_cycles).max(0))
                .expect("non-negative"),
            envelope: e.envelope,
        })
        .collect();
    // Build golden references once, only for models some audit needs.
    let mut needed = vec![false; catalog.len()];
    for &d in &audited {
        needed[usize::try_from(records[usize::try_from(d).expect("fits")].model)
            .expect("tag fits usize")] = true;
    }
    let goldens: Vec<Option<GoldenRef>> = catalog
        .entries()
        .map(|e| {
            if needed[usize::try_from(e.tag).expect("tag fits usize")] {
                e.payload.as_ref().map(GoldenRef::of)
            } else {
                None
            }
        })
        .collect();

    // Analytical pass: pure arithmetic over the schedule, no cubes.
    let mut analytical_cycles = 0u64;
    let mut total_requests = 0u64;
    let mut analytical_violations: Vec<AuditViolation> = Vec::new();
    for (d, rec) in records.iter().enumerate() {
        let m = &models[usize::try_from(rec.model).expect("tag fits usize")];
        total_requests += rec.requests.len() as u64;
        analytical_cycles += m.analytical * rec.requests.len() as u64;
        // The fast path's own certification: the number it prices with
        // must sit inside the envelope the catalog certified. Checked
        // on every dispatch — it costs two compares, not a cube.
        if !m.envelope.contains(m.analytical) {
            analytical_violations.push(AuditViolation::AnalyticalOutsideEnvelope {
                dispatch: d as u64,
                model: rec.model,
                cycles: m.analytical,
                lower: m.envelope.lower,
                upper: m.envelope.upper,
            });
        }
    }

    // Audit pass: the sampled subset, grouped per cube so the jobs are
    // independent; merged in cube order so both modes fold identically.
    let pool = records.iter().map(|r| r.cube + 1).max().unwrap_or(0);
    let per_cube: Vec<Vec<(u64, &DispatchRecord)>> = (0..pool)
        .map(|c| {
            audited
                .iter()
                .map(|&d| (d, &records[usize::try_from(d).expect("fits")]))
                .filter(|(_, r)| r.cube == c)
                .collect()
        })
        .collect();
    let cube_audits: Vec<CubeAudit> = match mode {
        ExecMode::Serial => per_cube
            .iter()
            .map(|recs| audit_cube(catalog, &goldens, &models, trace, recs))
            .collect(),
        ExecMode::Batched => BatchRunner::new().run(per_cube.len(), |c| {
            audit_cube(catalog, &goldens, &models, trace, &per_cube[c])
        }),
    };

    let mut audits: Vec<AuditRecord> = Vec::with_capacity(audited.len());
    let mut violations = analytical_violations;
    let mut audited_requests = 0u64;
    let mut measured_cycles = 0u64;
    let mut checksum = 0u64;
    let mut slack_lower = Histogram::new();
    let mut slack_upper = Histogram::new();
    for a in &cube_audits {
        audits.extend(a.audits.iter().cloned());
        violations.extend(a.violations.iter().cloned());
        audited_requests += a.audited_requests;
        measured_cycles += a.measured_cycles;
        // The executor's cube-order merge fold, empty cubes included:
        // at rate 1.0 this reproduces `serve.exec.output_checksum`.
        checksum = fold_checksum(checksum, a.checksum);
        slack_lower.merge(&a.slack_lower);
        slack_upper.merge(&a.slack_upper);
    }
    audits.sort_by_key(|a| a.dispatch);
    violations.sort_by_key(violation_dispatch);

    let mut stats = StatsRegistry::new();
    let mut s = stats.scoped("serve.twospeed");
    s.counter("dispatches", records.len() as u64);
    s.counter("requests", total_requests);
    s.counter("cycles.analytical", analytical_cycles);
    s.counter("audit.dispatches", audits.len() as u64);
    s.counter("audit.requests", audited_requests);
    s.counter("audit.cycles", measured_cycles);
    s.counter("audit.violations", violations.len() as u64);
    s.counter("audit.output_checksum", checksum);
    s.gauge("audit.rate", sampler.rate());
    if !records.is_empty() {
        s.gauge("audit.coverage", audits.len() as f64 / records.len() as f64);
    }
    s.histogram("audit.slack_lower_cycles", &slack_lower);
    s.histogram("audit.slack_upper_cycles", &slack_upper);

    TwoSpeedReport {
        audited,
        audits,
        violations,
        stats,
    }
}

fn violation_dispatch(v: &AuditViolation) -> u64 {
    match v {
        AuditViolation::AnalyticalOutsideEnvelope { dispatch, .. }
        | AuditViolation::ServiceCycleMismatch { dispatch, .. }
        | AuditViolation::MeasuredOutsideEnvelope { dispatch, .. }
        | AuditViolation::OutputDivergence { dispatch, .. } => *dispatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{serve, ServeConfig};
    use crate::traffic::{generate, TrafficSpec};
    use neurocube::SystemConfig;
    use neurocube_nn::workloads;

    fn tiny_setup() -> (ModelCatalog, Vec<Request>, Vec<DispatchRecord>) {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        cat.register("tiny", workloads::tiny_convnet(), 7);
        let spec = TrafficSpec::poisson(11, 40_000.0, 24, vec![("tiny".to_string(), 1)]);
        let trace = generate(&cat, &spec);
        let report = serve(&cat, &ServeConfig::new(2), &trace);
        (cat, trace, report.records)
    }

    #[test]
    fn sampler_is_pure_in_seed_rate_and_dispatch() {
        let s = AuditSampler::new(42, 0.25);
        let first = s.select(500);
        assert_eq!(first, AuditSampler::new(42, 0.25).select(500));
        assert!(!first.is_empty() && first.len() < 500, "a real sample");
        // Membership is per-dispatch: a shorter horizon is a prefix.
        let prefix: Vec<u64> = first.iter().copied().filter(|&d| d < 100).collect();
        assert_eq!(prefix, s.select(100));
        assert!(AuditSampler::new(42, 0.0).select(500).is_empty());
        assert_eq!(AuditSampler::new(42, 1.0).select(500).len(), 500);
        // NaN and out-of-range rates clamp, never panic.
        assert_eq!(AuditSampler::new(1, f64::NAN).rate(), 0.0);
        assert_eq!(AuditSampler::new(1, f64::INFINITY).rate(), 1.0);
        assert_eq!(AuditSampler::new(1, -3.0).rate(), 0.0);
    }

    #[test]
    fn healthy_runs_audit_clean_in_both_modes() {
        let (cat, trace, records) = tiny_setup();
        assert!(!records.is_empty());
        let cfg = TwoSpeedConfig::new(9, 0.5);
        let serial = execute_two_speed(&cat, &trace, &records, &cfg, ExecMode::Serial);
        let batched = execute_two_speed(&cat, &trace, &records, &cfg, ExecMode::Batched);
        assert!(serial.violations.is_empty(), "{:?}", serial.violations);
        assert_eq!(serial.audited, batched.audited);
        assert_eq!(serial.audits, batched.audits);
        assert_eq!(serial.stats.first_difference(&batched.stats), None);
        for a in &serial.audits {
            assert_eq!(a.measured_first_cycles, a.analytical_cycles);
        }
    }

    #[test]
    fn injected_defects_are_caught_by_the_next_audit() {
        let (cat, trace, records) = tiny_setup();
        let mut cfg = TwoSpeedConfig::new(9, 0.5);
        cfg.defect_cycles = 1;
        let r = execute_two_speed(&cat, &trace, &records, &cfg, ExecMode::Serial);
        assert!(!r.audited.is_empty());
        let first = r.audited[0];
        assert!(
            r.violations.iter().any(|v| matches!(
                v,
                AuditViolation::ServiceCycleMismatch { dispatch, .. } if *dispatch == first
            )),
            "the first audited dispatch flags the ±1 defect: {:?}",
            r.violations
        );
    }

    #[test]
    fn rate_zero_never_builds_goldens_or_cubes() {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        cat.register_synthetic("ghost", 700, 100);
        let spec = TrafficSpec::poisson(3, 500.0, 40, vec![("ghost".to_string(), 1)]);
        let trace = generate(&cat, &spec);
        let report = serve(&cat, &ServeConfig::new(2), &trace);
        // Synthetic tenants cannot be replayed; the analytical path
        // serves them anyway because rate 0 audits nothing.
        let r = execute_two_speed(
            &cat,
            &trace,
            &report.records,
            &TwoSpeedConfig::new(1, 0.0),
            ExecMode::Serial,
        );
        assert!(r.audited.is_empty() && r.audits.is_empty());
        assert!(r.violations.is_empty());
        assert_eq!(r.stats.counter("serve.twospeed.audit.dispatches"), 0);
        assert!(r.stats.counter("serve.twospeed.cycles.analytical") > 0);
    }
}
