//! Deterministic open-loop traffic generation.
//!
//! Arrivals, model picks, priorities, deadlines and (optionally)
//! malformed payloads are all pure functions of `(seed, request_id)`
//! through `fault::prng`'s counter PRNG — there is no stream state, so
//! the same [`TrafficSpec`] always produces the same trace, bit for bit,
//! no matter who generates it or how many times.
//!
//! Three load profiles modulate the Poisson baseline's mean inter-arrival
//! gap; the modulation is a deterministic function of the request index
//! (pure arithmetic — no trig, so the shape is reproducible bit-for-bit
//! on any platform):
//!
//! * **Poisson** — constant mean; memoryless arrivals.
//! * **Bursty** — every fourth block of 32 requests arrives 5× faster
//!   than the baseline, the rest 1.4× slower (same long-run mean as a
//!   gentle open-loop approximation, much higher peak pressure).
//! * **Diurnal** — the mean sweeps a triangle wave between 0.4× and 1.6×
//!   of baseline over a 256-request period: slow dawn, peak, slow dusk.

use crate::catalog::{input_payload, ModelCatalog};
use crate::request::Request;
use std::fmt;

/// Arrival-process shapes the generator can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadProfile {
    /// Constant-rate memoryless arrivals.
    Poisson,
    /// Alternating burst/lull blocks around the same long-run rate.
    Bursty,
    /// Triangle-wave rate sweep modeling a day's load curve.
    Diurnal,
}

impl LoadProfile {
    /// Parses the `NEUROCUBE_SERVE_LOAD` spelling of a profile.
    #[must_use]
    pub fn parse(name: &str) -> Option<LoadProfile> {
        match name {
            "poisson" => Some(LoadProfile::Poisson),
            "bursty" => Some(LoadProfile::Bursty),
            "diurnal" => Some(LoadProfile::Diurnal),
            _ => None,
        }
    }

    /// Multiplier applied to the mean inter-arrival gap before request
    /// `i` (deterministic, index-keyed).
    #[must_use]
    pub fn gap_factor(self, i: u64) -> f64 {
        match self {
            LoadProfile::Poisson => 1.0,
            LoadProfile::Bursty => {
                if (i / 32).is_multiple_of(4) {
                    0.2
                } else {
                    1.4
                }
            }
            LoadProfile::Diurnal => {
                // Triangle wave over a 256-request period: 1.6 at the
                // trough (requests far apart), down to 0.4 at the peak.
                let phase = i % 256;
                let tri = if phase < 128 { phase } else { 256 - phase };
                1.6 - 1.2 * (tri as f64 / 128.0)
            }
        }
    }
}

/// Everything that defines a trace; two equal specs generate equal
/// traces.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// PRNG seed for every per-request draw.
    pub seed: u64,
    /// Arrival-process shape.
    pub profile: LoadProfile,
    /// Baseline mean inter-arrival gap in virtual cycles.
    pub mean_gap: f64,
    /// Number of requests to generate.
    pub count: u64,
    /// Weighted model mix: `(model name, weight)`; picks are
    /// weight-proportional.
    pub mix: Vec<(String, u32)>,
    /// Deadline slack range: the deadline is `arrival + u × (service +
    /// reprogram)` with `u` uniform in `[slack.0, slack.1]` — scaled by
    /// the model's full cold-start cost so any `u ≥ 1` is feasible on an
    /// idle cube even when host programming dwarfs the inference itself.
    pub slack: (f64, f64),
    /// Per-mille rate of deliberately malformed requests (unknown model,
    /// empty payload, wrong shape, or dead-on-arrival deadline) — the
    /// fuzz suites' knob; 0 for clean traces.
    pub malformed_permille: u32,
    /// Weighted priority tiers `(priority, weight)`: picks are
    /// weight-proportional, like the model mix. `None` keeps the legacy
    /// uniform draw over priorities `0..=3` — bitwise-compatible with
    /// every trace generated before tiers existed.
    pub tiers: Option<Vec<(u8, u32)>>,
}

impl TrafficSpec {
    /// A clean Poisson trace over the given mix.
    #[must_use]
    pub fn poisson(seed: u64, mean_gap: f64, count: u64, mix: Vec<(String, u32)>) -> TrafficSpec {
        TrafficSpec {
            seed,
            profile: LoadProfile::Poisson,
            mean_gap,
            count,
            mix,
            slack: (4.0, 12.0),
            malformed_permille: 0,
            tiers: None,
        }
    }

    /// Applies a named [`Scenario`]'s arrival profile and priority tiers,
    /// keeping everything else (seed, mix, count, gap).
    #[must_use]
    pub fn with_scenario(mut self, scenario: &Scenario) -> TrafficSpec {
        self.profile = scenario.profile;
        self.tiers = Some(scenario.tiers.to_vec());
        self
    }
}

/// A named trace-driven serving scenario: an arrival shape plus a
/// priority-tier mix, selectable by name through
/// `NEUROCUBE_SERVE_SCENARIO` (see [`Scenario::from_env`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The scenario's `NEUROCUBE_SERVE_SCENARIO` spelling.
    pub name: &'static str,
    /// Arrival-process shape.
    pub profile: LoadProfile,
    /// Weighted priority tiers `(priority, weight)`.
    pub tiers: &'static [(u8, u32)],
}

/// The named scenario presets, in lookup order.
pub const SCENARIOS: [Scenario; 3] = [
    // Flat day: memoryless arrivals, every priority equally likely.
    Scenario {
        name: "steady",
        profile: LoadProfile::Poisson,
        tiers: &[(0, 1), (1, 1), (2, 1), (3, 1)],
    },
    // A day's load curve; background traffic dominates, a thin
    // latency-critical tier rides on top.
    Scenario {
        name: "diurnal",
        profile: LoadProfile::Diurnal,
        tiers: &[(0, 6), (1, 3), (2, 2), (3, 1)],
    },
    // Flash-crowd bursts with a bimodal priority split: bulk batch
    // traffic and interactive spikes, nothing in between.
    Scenario {
        name: "rush",
        profile: LoadProfile::Bursty,
        tiers: &[(0, 3), (1, 1), (3, 2)],
    },
];

/// A scenario name that matches no preset — the typed error
/// `NEUROCUBE_SERVE_SCENARIO` parsing returns instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownScenario(pub String);

impl fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown serving scenario {:?} (valid: steady, diurnal, rush)",
            self.0
        )
    }
}

impl std::error::Error for UnknownScenario {}

impl Scenario {
    /// Resolves a scenario by its `NEUROCUBE_SERVE_SCENARIO` spelling.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScenario`] when no preset matches.
    pub fn parse(name: &str) -> Result<&'static Scenario, UnknownScenario> {
        SCENARIOS
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| UnknownScenario(name.to_string()))
    }

    /// Reads `NEUROCUBE_SERVE_SCENARIO`: `Ok(None)` when unset or empty
    /// (the caller's default applies), `Ok(Some)` on a valid name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScenario`] when the variable names no preset —
    /// a typed error, never a panic.
    pub fn from_env() -> Result<Option<&'static Scenario>, UnknownScenario> {
        match neurocube_sim::serve_scenario() {
            None => Ok(None),
            Some(name) => Scenario::parse(&name).map(Some),
        }
    }
}

/// PRNG domain for traffic draws, disjoint from the fault domains
/// (`0x01..=0x05` prefixes in `fault::domain`).
pub const DOMAIN_TRAFFIC: u64 = 0x0600_0000_0000_0000;

/// Per-request draw salts.
mod salt {
    pub const GAP: u64 = 0;
    pub const MODEL: u64 = 1;
    pub const PRIORITY: u64 = 2;
    pub const SLACK: u64 = 3;
    pub const MALFORMED: u64 = 4;
    pub const MALFORMED_KIND: u64 = 5;
}

fn unit_draw(seed: u64, id: u64, salt: u64) -> f64 {
    neurocube_fault::unit(neurocube_fault::draw(seed, DOMAIN_TRAFFIC, id, salt))
}

/// Generates the trace described by `spec`, resolving service times and
/// input shapes against `catalog`. Request ids equal trace indices.
///
/// # Panics
///
/// Panics when the mix is empty, names a model missing from the catalog,
/// has zero total weight, the slack range is inverted, or the priority
/// tiers (when given) are empty or weightless.
#[must_use]
pub fn generate(catalog: &ModelCatalog, spec: &TrafficSpec) -> Vec<Request> {
    assert!(!spec.mix.is_empty(), "traffic mix must name a model");
    assert!(spec.mean_gap > 0.0, "mean gap must be positive");
    assert!(
        spec.slack.0 > 0.0 && spec.slack.1 >= spec.slack.0,
        "slack range must be positive and ordered"
    );
    let total_weight: u64 = spec.mix.iter().map(|(_, w)| u64::from(*w)).sum();
    assert!(total_weight > 0, "traffic mix needs positive weight");
    for (name, _) in &spec.mix {
        assert!(
            catalog.lookup(name).is_some(),
            "mix model {name} is not in the catalog"
        );
    }
    let tier_weight: u64 = spec
        .tiers
        .as_ref()
        .map(|t| {
            assert!(!t.is_empty(), "priority tiers must not be empty");
            t.iter().map(|(_, w)| u64::from(*w)).sum()
        })
        .unwrap_or(0);
    assert!(
        spec.tiers.is_none() || tier_weight > 0,
        "priority tiers need positive weight"
    );

    let mut trace = Vec::with_capacity(spec.count as usize);
    let mut arrival = 0u64;
    for id in 0..spec.count {
        // Exponential inter-arrival gap, modulated by the load profile.
        let u = unit_draw(spec.seed, id, salt::GAP);
        let gap = -(1.0 - u).ln() * spec.mean_gap * spec.profile.gap_factor(id);
        arrival += gap.ceil() as u64;

        // Weight-proportional model pick.
        let mut w =
            neurocube_fault::draw(spec.seed, DOMAIN_TRAFFIC, id, salt::MODEL) % total_weight;
        let mut pick = &spec.mix[0].0;
        for (name, weight) in &spec.mix {
            let weight = u64::from(*weight);
            if w < weight {
                pick = name;
                break;
            }
            w -= weight;
        }
        let entry = catalog.lookup(pick).expect("mix checked above");

        // Priority: the legacy uniform draw over 0..=3 without tiers
        // (bit-compatible with pre-tier traces), weight-proportional
        // over the scenario's tiers otherwise. Same salt either way, so
        // a spec only changes the trace where it changes the policy.
        let pri_draw = neurocube_fault::draw(spec.seed, DOMAIN_TRAFFIC, id, salt::PRIORITY);
        let priority = match &spec.tiers {
            None => (pri_draw % 4) as u8,
            Some(tiers) => {
                let mut w = pri_draw % tier_weight;
                let mut pick = tiers[0].0;
                for (p, weight) in tiers {
                    let weight = u64::from(*weight);
                    if w < weight {
                        pick = *p;
                        break;
                    }
                    w -= weight;
                }
                pick
            }
        };
        let s =
            spec.slack.0 + (spec.slack.1 - spec.slack.0) * unit_draw(spec.seed, id, salt::SLACK);
        let cold_start = entry.service_cycles + entry.reprogram_cycles;
        let deadline = arrival + (s * cold_start as f64).ceil() as u64;
        let len = entry.input_len();

        let mut req = Request {
            id,
            model: pick.clone(),
            input: input_payload(len, id),
            arrival,
            deadline,
            priority,
        };

        // Malformed-request injection for the fuzz suites: each corrupted
        // request exercises exactly one admission check.
        if spec.malformed_permille > 0 {
            let roll = neurocube_fault::draw(spec.seed, DOMAIN_TRAFFIC, id, salt::MALFORMED) % 1000;
            if roll < u64::from(spec.malformed_permille) {
                match neurocube_fault::draw(spec.seed, DOMAIN_TRAFFIC, id, salt::MALFORMED_KIND) % 4
                {
                    0 => req.model = format!("ghost-{id}"),
                    1 => req.input.clear(),
                    2 => req.input.push(neurocube_fixed::Q88::ZERO),
                    _ => req.deadline = req.arrival,
                }
            }
        }
        trace.push(req);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube::SystemConfig;

    fn catalog() -> ModelCatalog {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        cat.register_synthetic("a", 1000, 200);
        cat.register_synthetic("b", 3000, 500);
        cat
    }

    #[test]
    fn traces_are_reproducible_and_ordered() {
        let cat = catalog();
        let spec = TrafficSpec::poisson(
            42,
            500.0,
            200,
            vec![("a".to_string(), 3), ("b".to_string(), 1)],
        );
        let t1 = generate(&cat, &spec);
        let t2 = generate(&cat, &spec);
        assert_eq!(t1, t2, "same spec, same trace, bit for bit");
        assert_eq!(t1.len(), 200);
        for (i, r) in t1.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.deadline > r.arrival);
            assert!(!r.input.is_empty());
        }
        assert!(t1.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // The 3:1 mix should actually produce both models.
        assert!(t1.iter().any(|r| r.model == "a"));
        assert!(t1.iter().any(|r| r.model == "b"));
        // A different seed moves the arrivals.
        let other = generate(
            &cat,
            &TrafficSpec {
                seed: 43,
                ..spec.clone()
            },
        );
        assert_ne!(t1, other);
    }

    #[test]
    fn profiles_reshape_arrivals_without_changing_count() {
        let cat = catalog();
        let mk = |profile| {
            let spec = TrafficSpec {
                profile,
                ..TrafficSpec::poisson(7, 400.0, 256, vec![("a".to_string(), 1)])
            };
            generate(&cat, &spec)
        };
        let poisson = mk(LoadProfile::Poisson);
        let bursty = mk(LoadProfile::Bursty);
        let diurnal = mk(LoadProfile::Diurnal);
        assert_eq!(poisson.len(), 256);
        assert_eq!(bursty.len(), 256);
        assert_eq!(diurnal.len(), 256);
        // The first bursty block (factor 0.2) arrives much faster than
        // the same requests under Poisson.
        assert!(bursty[31].arrival < poisson[31].arrival);
    }

    #[test]
    fn malformed_injection_produces_each_kind() {
        let cat = catalog();
        let spec = TrafficSpec {
            malformed_permille: 400,
            ..TrafficSpec::poisson(11, 300.0, 400, vec![("a".to_string(), 1)])
        };
        let trace = generate(&cat, &spec);
        assert!(trace.iter().any(|r| r.model.starts_with("ghost-")));
        assert!(trace.iter().any(|r| r.input.is_empty()));
        assert!(trace.iter().any(|r| r.input.len() == 2));
        assert!(trace.iter().any(|r| r.deadline == r.arrival));
    }

    #[test]
    fn tiers_reshape_priorities_and_none_is_legacy_compatible() {
        let cat = catalog();
        let base = TrafficSpec::poisson(21, 300.0, 512, vec![("a".to_string(), 1)]);
        let legacy = generate(&cat, &base);
        // Explicit uniform tiers draw from the same salt but through the
        // weighted path; the *absence* of tiers is what preserves the
        // legacy bits.
        let again = generate(&cat, &base.clone());
        assert_eq!(legacy, again);
        for p in 0..4u8 {
            assert!(legacy.iter().any(|r| r.priority == p), "priority {p}");
        }
        // A bimodal tier set produces only its listed priorities, in
        // roughly weight proportion.
        let rush = generate(
            &cat,
            &TrafficSpec {
                tiers: Some(vec![(0, 3), (3, 1)]),
                ..base.clone()
            },
        );
        assert!(rush.iter().all(|r| r.priority == 0 || r.priority == 3));
        let zeros = rush.iter().filter(|r| r.priority == 0).count();
        assert!(
            (256..=512).contains(&zeros),
            "3:1 weighting should dominate: {zeros}/512"
        );
        // Arrivals and model picks are untouched by the tier change.
        for (l, r) in legacy.iter().zip(&rush) {
            assert_eq!(l.arrival, r.arrival);
            assert_eq!(l.model, r.model);
        }
    }

    #[test]
    fn scenarios_parse_by_name_and_reject_unknowns_typed() {
        let s = Scenario::parse("diurnal").expect("preset exists");
        assert_eq!(s.profile, LoadProfile::Diurnal);
        let err = Scenario::parse("weekend").unwrap_err();
        assert_eq!(err, UnknownScenario("weekend".to_string()));
        assert!(err.to_string().contains("valid: steady, diurnal, rush"));
        for preset in &SCENARIOS {
            assert_eq!(Scenario::parse(preset.name), Ok(preset));
            assert!(!preset.tiers.is_empty());
        }
        let cat = catalog();
        let spec = TrafficSpec::poisson(9, 250.0, 128, vec![("b".to_string(), 1)])
            .with_scenario(Scenario::parse("rush").unwrap());
        assert_eq!(spec.profile, LoadProfile::Bursty);
        let trace = generate(&cat, &spec);
        assert!(trace.iter().all(|r| [0, 1, 3].contains(&r.priority)));
    }

    #[test]
    #[should_panic(expected = "priority tiers must not be empty")]
    fn empty_tiers_are_rejected() {
        let cat = catalog();
        let spec = TrafficSpec {
            tiers: Some(Vec::new()),
            ..TrafficSpec::poisson(1, 100.0, 4, vec![("a".to_string(), 1)])
        };
        let _ = generate(&cat, &spec);
    }

    #[test]
    fn gap_factors_match_their_documented_shapes() {
        assert_eq!(LoadProfile::Poisson.gap_factor(5), 1.0);
        assert_eq!(LoadProfile::Bursty.gap_factor(0), 0.2);
        assert_eq!(LoadProfile::Bursty.gap_factor(33), 1.4);
        assert!((LoadProfile::Diurnal.gap_factor(0) - 1.6).abs() < 1e-12);
        assert!((LoadProfile::Diurnal.gap_factor(128) - 0.4).abs() < 1e-12);
    }
}
