//! An independent serial oracle for the scheduler.
//!
//! Re-implements the normative policy in [`crate::scheduler`] with none
//! of its machinery: no `CycleLoop`, no stages, no horizons — just an
//! event list stepped to the next interesting cycle (arrival, cube
//! release, or queue ripening) and the same admission/selection/batching
//! rules applied longhand. The property suites run both over random
//! traces and require record-for-record equality; any divergence means
//! one of the two got the policy wrong, and the fast-forward machinery
//! can never paper over a scheduling bug.

use crate::catalog::ModelCatalog;
use crate::request::{Outcome, RejectReason, Request};
use crate::scheduler::{DispatchRecord, ServeConfig};

struct Queued {
    id: u64,
    arrival: u64,
    deadline: u64,
    priority: u8,
}

/// What the oracle produced: the same record/outcome shape the scheduler
/// reports, for field-by-field comparison.
pub struct OracleResult {
    /// Batches in dispatch order.
    pub records: Vec<DispatchRecord>,
    /// Terminal outcome per trace index.
    pub outcomes: Vec<Outcome>,
}

/// Runs the reference policy over `trace` serially.
///
/// # Panics
///
/// Panics if the trace is unsorted, ids are not trace indices, or any
/// request ends the run without an outcome.
#[must_use]
pub fn schedule(catalog: &ModelCatalog, cfg: &ServeConfig, trace: &[Request]) -> OracleResult {
    assert!(cfg.pool > 0 && cfg.max_batch > 0 && cfg.queue_cap > 0);
    let models: Vec<(String, u64, u64, usize)> = catalog
        .entries()
        .map(|e| {
            (
                e.name.clone(),
                e.service_cycles,
                e.reprogram_cycles,
                e.input_len(),
            )
        })
        .collect();

    let mut queues: Vec<Vec<Queued>> = (0..models.len()).map(|_| Vec::new()).collect();
    let mut free_at = vec![0u64; cfg.pool];
    let mut loaded: Vec<Option<u64>> = vec![None; cfg.pool];
    let mut outcomes: Vec<Option<Outcome>> = vec![None; trace.len()];
    let mut records: Vec<DispatchRecord> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0u64;

    let ripe = |queues: &[Vec<Queued>], tag: usize, now: u64| -> bool {
        let q = &queues[tag];
        match q.first() {
            None => false,
            Some(h) => q.len() >= cfg.max_batch || h.arrival + cfg.max_delay <= now,
        }
    };

    loop {
        // Admit everything arriving at `now`, in trace order.
        while next_arrival < trace.len() && trace[next_arrival].arrival <= now {
            let r = &trace[next_arrival];
            assert_eq!(r.id, next_arrival as u64, "ids equal trace indices");
            next_arrival += 1;
            let outcome = match models.iter().position(|(n, ..)| *n == r.model) {
                None => Some(Outcome::Rejected(RejectReason::UnknownModel)),
                Some(_) if r.input.is_empty() => Some(Outcome::Rejected(RejectReason::EmptyInput)),
                Some(t) if r.input.len() != models[t].3 => {
                    Some(Outcome::Rejected(RejectReason::ShapeMismatch))
                }
                Some(_) if r.deadline <= r.arrival => {
                    Some(Outcome::Rejected(RejectReason::PastDeadline))
                }
                Some(t) if queues[t].len() >= cfg.queue_cap => {
                    Some(Outcome::Rejected(RejectReason::QueueFull))
                }
                Some(t) => {
                    let q = &mut queues[t];
                    let pos = q
                        .iter()
                        .position(|e| e.priority < r.priority)
                        .unwrap_or(q.len());
                    q.insert(
                        pos,
                        Queued {
                            id: r.id,
                            arrival: r.arrival,
                            deadline: r.deadline,
                            priority: r.priority,
                        },
                    );
                    None
                }
            };
            if let Some(o) = outcome {
                outcomes[r.id as usize] = Some(o);
            }
        }

        // Dispatch to a fixed point at `now`.
        loop {
            let mut changed = false;
            for cube in 0..cfg.pool {
                if free_at[cube] > now {
                    continue;
                }
                // Selection: loaded model's queue when ripe, else the
                // ripe queue with the oldest head.
                let tag = loaded[cube]
                    .map(|t| t as usize)
                    .filter(|&t| ripe(&queues, t, now))
                    .or_else(|| {
                        (0..queues.len())
                            .filter(|&t| ripe(&queues, t, now))
                            .min_by_key(|&t| queues[t].first().map(|h| h.id))
                    });
                let Some(tag) = tag else { continue };
                let (_, service, reprogram, _) = models[tag];
                let cost = if loaded[cube] == Some(tag as u64) {
                    0
                } else {
                    reprogram
                };
                // Shed heads that cannot make their deadline even alone.
                while let Some(h) = queues[tag].first() {
                    if now + cost + service > h.deadline {
                        let h = queues[tag].remove(0);
                        outcomes[h.id as usize] = Some(Outcome::Shed);
                        changed = true;
                    } else {
                        break;
                    }
                }
                if !ripe(&queues, tag, now) {
                    continue;
                }
                // Greedy batch growth under every member's deadline.
                let mut members: Vec<Queued> = Vec::new();
                let mut min_deadline = u64::MAX;
                while members.len() < cfg.max_batch {
                    let Some(h) = queues[tag].first() else { break };
                    let completes = now + cost + (members.len() as u64 + 1) * service;
                    if completes > h.deadline || completes > min_deadline {
                        break;
                    }
                    min_deadline = min_deadline.min(h.deadline);
                    members.push(queues[tag].remove(0));
                }
                if members.is_empty() {
                    continue;
                }
                let b = members.len() as u64;
                let completes = now + cost + b * service;
                for m in &members {
                    outcomes[m.id as usize] = Some(Outcome::Completed {
                        latency: completes - m.arrival,
                        batch_size: b,
                    });
                }
                free_at[cube] = completes;
                loaded[cube] = Some(tag as u64);
                records.push(DispatchRecord {
                    cube,
                    model: tag as u64,
                    dispatched_at: now,
                    completes_at: completes,
                    affinity_hit: cost == 0,
                    requests: members.iter().map(|m| m.id).collect(),
                });
                changed = true;
            }
            if !changed {
                break;
            }
        }

        if next_arrival >= trace.len() && queues.iter().all(Vec::is_empty) {
            break;
        }

        // Step to the next interesting cycle: an arrival, a cube
        // release, or a queue head's batching window expiring.
        let mut next = u64::MAX;
        if let Some(r) = trace.get(next_arrival) {
            next = next.min(r.arrival);
        }
        for &f in &free_at {
            if f > now {
                next = next.min(f);
            }
        }
        for q in &queues {
            if let Some(h) = q.first() {
                // Only a *future* ripening is an event; an already-ripe
                // queue is waiting on a cube, whose release is the event.
                if q.len() < cfg.max_batch && h.arrival + cfg.max_delay > now {
                    next = next.min(h.arrival + cfg.max_delay);
                }
            }
        }
        assert!(next > now && next != u64::MAX, "oracle stalled at {now}");
        now = next;
    }

    let outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| panic!("request {i} has no outcome")))
        .collect();
    OracleResult { records, outcomes }
}
