//! The virtual-time serving scheduler: admission, dynamic batching,
//! affinity placement and load shedding over a pool of cube timelines.
//!
//! The scheduler is a discrete-event loop layered on
//! [`neurocube_sim::CycleLoop`]: an arrival stage admits trace requests
//! at their arrival cycles and a dispatch stage forms batches whenever a
//! free cube meets a ripe queue. Both stages declare exact event
//! horizons, so the loop fast-forwards across quiescent stretches and —
//! by the kernel's null-tick contract — produces bitwise-identical
//! results with skipping on or off (asserted in the test suites).
//!
//! ## Policy (normative — the oracle in [`crate::oracle`] re-implements
//! exactly this)
//!
//! **Admission** (at the request's arrival cycle, in trace order):
//! unknown model, empty payload, wrong payload length, and a deadline
//! not in the future are counted rejections; a full per-model queue
//! rejects with `queue_full`. Admitted requests enter their model's
//! queue ordered by (priority descending, arrival order) — never a
//! panic, load is shed gracefully.
//!
//! **Ripeness**: a queue may dispatch when it holds `max_batch` requests
//! or its head has waited `max_delay` cycles.
//!
//! **Placement**: cubes are scanned in index order; a free cube prefers
//! the ripe queue of the model it already holds (affinity — no
//! reprogramming charge), otherwise the ripe queue with the oldest head.
//! Switching models charges the catalog's reprogram cycles (the
//! `golden::timing` host programming term) before the batch runs.
//!
//! **Batching**: from the chosen queue, first shed every head that can
//! no longer meet its deadline even dispatched alone on this cube, then
//! take requests in queue order while the *whole batch's* completion —
//! `now + reprogram + B × service` — stays at or before every member's
//! deadline, up to `max_batch`. A dispatched batch therefore never
//! violates any member's deadline; infeasibility is resolved by
//! shedding, never by a late completion.

use crate::catalog::ModelCatalog;
use crate::request::{Outcome, RejectReason, Request};
use neurocube_sim::{Clocked, CycleLoop, Histogram, StatsRegistry};
use std::collections::VecDeque;

/// Scheduler knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of cubes in the pool.
    pub pool: usize,
    /// Dynamic-batching size cap.
    pub max_batch: usize,
    /// Max cycles a queue head waits for batch-mates before the queue
    /// ripens regardless of size.
    pub max_delay: u64,
    /// Per-model queue capacity; arrivals beyond it are rejected
    /// (`queue_full`), bounding memory under overload.
    pub queue_cap: usize,
}

impl ServeConfig {
    /// Defaults: the given pool, batches of up to 8, a 4096-cycle
    /// batching window, 64-deep queues.
    #[must_use]
    pub fn new(pool: usize) -> ServeConfig {
        ServeConfig {
            pool,
            max_batch: 8,
            max_delay: 4096,
            queue_cap: 64,
        }
    }

    /// Defaults overridden by the `NEUROCUBE_SERVE_*` environment knobs
    /// (pool, max batch, max delay — see `neurocube_sim::env`).
    #[must_use]
    pub fn from_env(default_pool: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(default_pool);
        if let Some(p) = neurocube_sim::serve_pool() {
            cfg.pool = usize::try_from(p).expect("pool fits usize");
        }
        if let Some(b) = neurocube_sim::serve_max_batch() {
            cfg.max_batch = usize::try_from(b).expect("max batch fits usize");
        }
        if let Some(d) = neurocube_sim::serve_max_delay() {
            cfg.max_delay = d;
        }
        cfg
    }
}

/// One batch placed on one cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchRecord {
    /// Pool index of the cube the batch ran on.
    pub cube: usize,
    /// Model tag of every request in the batch.
    pub model: u64,
    /// Virtual cycle the batch left its queue.
    pub dispatched_at: u64,
    /// Virtual cycle the batch completes (`dispatched_at + reprogram +
    /// B × service`).
    pub completes_at: u64,
    /// Whether the cube already held the model (no reprogram charge).
    pub affinity_hit: bool,
    /// Trace ids of the batch members, in dispatch order.
    pub requests: Vec<u64>,
}

/// Everything one serving run produced.
pub struct ServeReport {
    /// Batches in dispatch order (the executor replays these).
    pub records: Vec<DispatchRecord>,
    /// Terminal outcome of each trace request, by trace index.
    pub outcomes: Vec<Outcome>,
    /// The run's `serve.*` statistics.
    pub stats: StatsRegistry,
    /// Last completion cycle across the pool (0 when nothing ran).
    pub makespan: u64,
}

impl ServeReport {
    /// Completed-request count.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.stats.counter("serve.requests.completed")
    }

    /// Shed-request count.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.stats.counter("serve.requests.shed")
    }

    /// Total rejected at admission, over all reasons.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.stats
            .counters()
            .filter(|(k, _)| k.starts_with("serve.rejected."))
            .map(|(_, v)| v)
            .sum()
    }

    /// The latency distribution of completed requests.
    #[must_use]
    pub fn latency(&self) -> &Histogram {
        self.stats
            .histogram("serve.latency_cycles")
            .expect("serve runs always export latency")
    }
}

/// Minimal per-model timing copied out of the catalog so the bus owns
/// its state.
struct ModelTiming {
    name: String,
    service: u64,
    reprogram: u64,
    input_len: usize,
}

struct Queued {
    id: u64,
    arrival: u64,
    deadline: u64,
    priority: u8,
}

struct CubeState {
    free_at: u64,
    loaded: Option<u64>,
    busy_cycles: u64,
}

/// The scheduler's shared bus: queues, cube timelines and tallies.
struct ServeBus<'t> {
    trace: &'t [Request],
    cfg: ServeConfig,
    models: Vec<ModelTiming>,
    next_arrival: usize,
    queues: Vec<VecDeque<Queued>>,
    queued_total: u64,
    cubes: Vec<CubeState>,
    records: Vec<DispatchRecord>,
    outcomes: Vec<Option<Outcome>>,
    offered: u64,
    admitted: u64,
    completed: u64,
    shed: u64,
    rejected: [u64; 5],
    reprogram_cycles: u64,
    latency: Histogram,
    batch_size: Histogram,
    queue_depth: Histogram,
    /// Monotonic event count driving the loop's watchdog.
    progress: u64,
}

impl<'t> ServeBus<'t> {
    fn new(catalog: &ModelCatalog, cfg: &ServeConfig, trace: &'t [Request]) -> ServeBus<'t> {
        assert!(cfg.pool > 0, "a serving pool needs at least one cube");
        assert!(cfg.max_batch > 0, "batches hold at least one request");
        assert!(cfg.queue_cap > 0, "queues hold at least one request");
        let models: Vec<ModelTiming> = catalog
            .entries()
            .map(|e| ModelTiming {
                name: e.name.clone(),
                service: e.service_cycles,
                reprogram: e.reprogram_cycles,
                input_len: e.input_len(),
            })
            .collect();
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "trace sorted by arrival");
        }
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i as u64, "request ids equal trace indices");
        }
        ServeBus {
            trace,
            cfg: *cfg,
            queues: (0..models.len()).map(|_| VecDeque::new()).collect(),
            models,
            next_arrival: 0,
            queued_total: 0,
            cubes: (0..cfg.pool)
                .map(|_| CubeState {
                    free_at: 0,
                    loaded: None,
                    busy_cycles: 0,
                })
                .collect(),
            records: Vec::new(),
            outcomes: vec![None; trace.len()],
            offered: 0,
            admitted: 0,
            completed: 0,
            shed: 0,
            rejected: [0; 5],
            reprogram_cycles: 0,
            latency: Histogram::new(),
            batch_size: Histogram::new(),
            queue_depth: Histogram::new(),
            progress: 0,
        }
    }

    fn drained(&self) -> bool {
        self.next_arrival >= self.trace.len() && self.queued_total == 0
    }

    fn reject(&mut self, id: u64, reason: RejectReason) {
        self.rejected[reason as usize] += 1;
        self.outcomes[id as usize] = Some(Outcome::Rejected(reason));
        self.progress += 1;
    }

    fn admit(&mut self, ix: usize) {
        let r = &self.trace[ix];
        self.offered += 1;
        self.progress += 1;
        let Some(tag) = self.models.iter().position(|m| m.name == r.model) else {
            self.reject(r.id, RejectReason::UnknownModel);
            return;
        };
        if r.input.is_empty() {
            self.reject(r.id, RejectReason::EmptyInput);
            return;
        }
        if r.input.len() != self.models[tag].input_len {
            self.reject(r.id, RejectReason::ShapeMismatch);
            return;
        }
        if r.deadline <= r.arrival {
            self.reject(r.id, RejectReason::PastDeadline);
            return;
        }
        if self.queues[tag].len() >= self.cfg.queue_cap {
            self.reject(r.id, RejectReason::QueueFull);
            return;
        }
        // Insert after every entry of equal-or-higher priority: priority
        // classes are served in order, arrival order within a class.
        let q = &mut self.queues[tag];
        let pos = q
            .iter()
            .position(|e| e.priority < r.priority)
            .unwrap_or(q.len());
        q.insert(
            pos,
            Queued {
                id: r.id,
                arrival: r.arrival,
                deadline: r.deadline,
                priority: r.priority,
            },
        );
        self.admitted += 1;
        self.queued_total += 1;
        self.queue_depth.record(self.queued_total);
    }

    fn ripe(&self, now: u64, tag: usize) -> bool {
        let q = &self.queues[tag];
        match q.front() {
            None => false,
            Some(h) => q.len() >= self.cfg.max_batch || h.arrival + self.cfg.max_delay <= now,
        }
    }

    /// The queue a free cube serves at `now`: the loaded model's queue
    /// when ripe (affinity), else the ripe queue with the oldest head.
    fn select_queue(&self, now: u64, cube: usize) -> Option<usize> {
        if let Some(tag) = self.cubes[cube].loaded {
            let tag = tag as usize;
            if self.ripe(now, tag) {
                return Some(tag);
            }
        }
        (0..self.queues.len())
            .filter(|&t| self.ripe(now, t))
            .min_by_key(|&t| self.queues[t].front().map(|h| h.id))
    }

    /// Sheds infeasible heads and dispatches at most one batch from
    /// `tag` onto `cube`. Returns whether anything changed.
    fn serve_queue(&mut self, now: u64, cube: usize, tag: usize) -> bool {
        let service = self.models[tag].service;
        let cost = if self.cubes[cube].loaded == Some(tag as u64) {
            0
        } else {
            self.models[tag].reprogram
        };
        let mut changed = false;
        // Graceful shedding: a head that cannot meet its deadline even
        // dispatched alone right now will never meet it later.
        while let Some(h) = self.queues[tag].front() {
            if now + cost + service > h.deadline {
                let h = self.queues[tag].pop_front().expect("front exists");
                self.queued_total -= 1;
                self.shed += 1;
                self.progress += 1;
                self.outcomes[h.id as usize] = Some(Outcome::Shed);
                changed = true;
            } else {
                break;
            }
        }
        // Shedding may have changed the head; dispatch only a still-ripe
        // queue (a fresher head may deserve its batching window).
        if !self.ripe(now, tag) {
            return changed;
        }
        let mut members: Vec<Queued> = Vec::new();
        let mut min_deadline = u64::MAX;
        while members.len() < self.cfg.max_batch {
            let Some(h) = self.queues[tag].front() else {
                break;
            };
            let completes = now + cost + (members.len() as u64 + 1) * service;
            if completes > h.deadline || completes > min_deadline {
                break;
            }
            min_deadline = min_deadline.min(h.deadline);
            members.push(self.queues[tag].pop_front().expect("front exists"));
            self.queued_total -= 1;
        }
        if members.is_empty() {
            return changed;
        }
        let b = members.len() as u64;
        let completes = now + cost + b * service;
        for m in &members {
            self.outcomes[m.id as usize] = Some(Outcome::Completed {
                latency: completes - m.arrival,
                batch_size: b,
            });
            self.latency.record(completes - m.arrival);
            self.completed += 1;
        }
        self.batch_size.record(b);
        self.reprogram_cycles += cost;
        let cube_state = &mut self.cubes[cube];
        cube_state.busy_cycles += completes - now;
        cube_state.free_at = completes;
        cube_state.loaded = Some(tag as u64);
        self.records.push(DispatchRecord {
            cube,
            model: tag as u64,
            dispatched_at: now,
            completes_at: completes,
            affinity_hit: cost == 0,
            requests: members.iter().map(|m| m.id).collect(),
        });
        self.progress += 1;
        changed | true
    }

    fn dispatch(&mut self, now: u64) {
        loop {
            let mut changed = false;
            for cube in 0..self.cubes.len() {
                if self.cubes[cube].free_at > now {
                    continue;
                }
                let Some(tag) = self.select_queue(now, cube) else {
                    continue;
                };
                changed |= self.serve_queue(now, cube, tag);
            }
            if !changed {
                break;
            }
        }
    }

    /// Whether the dispatch stage could change state at `now`.
    fn can_act(&self, now: u64) -> bool {
        self.cubes.iter().any(|c| c.free_at <= now)
            && (0..self.queues.len()).any(|t| self.ripe(now, t))
    }
}

struct ArrivalStage;

impl Clocked<ServeBus<'_>> for ArrivalStage {
    fn tick(&mut self, now: u64, bus: &mut ServeBus<'_>) {
        while bus.next_arrival < bus.trace.len() && bus.trace[bus.next_arrival].arrival <= now {
            let ix = bus.next_arrival;
            bus.next_arrival += 1;
            bus.admit(ix);
        }
    }

    fn next_event(&self, now: u64, bus: &ServeBus<'_>) -> Option<u64> {
        match bus.trace.get(bus.next_arrival) {
            None => Some(u64::MAX),
            Some(r) if r.arrival <= now => None,
            Some(r) => Some(r.arrival),
        }
    }

    fn name(&self) -> &'static str {
        "serve arrivals"
    }
}

struct DispatchStage;

impl Clocked<ServeBus<'_>> for DispatchStage {
    fn tick(&mut self, now: u64, bus: &mut ServeBus<'_>) {
        bus.dispatch(now);
    }

    fn next_event(&self, now: u64, bus: &ServeBus<'_>) -> Option<u64> {
        if bus.queued_total == 0 {
            // Purely reactive: only an arrival can create work, and the
            // arrival stage owns that horizon.
            return Some(u64::MAX);
        }
        if bus.can_act(now) {
            return None;
        }
        let mut t = u64::MAX;
        for c in &bus.cubes {
            if c.free_at > now {
                t = t.min(c.free_at);
            }
        }
        for q in &bus.queues {
            if let Some(h) = q.front() {
                // A future ripening is an event; an already-ripe queue is
                // waiting on a cube, covered by the free_at horizons.
                if q.len() < bus.cfg.max_batch && h.arrival + bus.cfg.max_delay > now {
                    t = t.min(h.arrival + bus.cfg.max_delay);
                }
            }
        }
        Some(t.max(now + 1))
    }

    fn name(&self) -> &'static str {
        "serve dispatch"
    }
}

/// Runs the scheduler over `trace` and returns the full report.
/// Deterministic: equal `(catalog timings, config, trace)` give equal
/// reports, bit for bit, regardless of fast-forward mode.
#[must_use]
pub fn serve(catalog: &ModelCatalog, cfg: &ServeConfig, trace: &[Request]) -> ServeReport {
    serve_mode(catalog, cfg, trace, None)
}

/// Like [`serve`], with explicit control over event-horizon
/// fast-forwarding (`None` inherits the `NEUROCUBE_NO_SKIP` process
/// default) — the differential suites run both modes in one process.
#[must_use]
pub fn serve_mode(
    catalog: &ModelCatalog,
    cfg: &ServeConfig,
    trace: &[Request],
    skip: Option<bool>,
) -> ServeReport {
    let mut bus = ServeBus::new(catalog, cfg, trace);
    let mut cl = CycleLoop::new().stage(ArrivalStage).stage(DispatchStage);
    if let Some(s) = skip {
        cl = cl.with_skip(s);
    }
    cl.run(
        &mut bus,
        0,
        ServeBus::drained,
        |b| b.progress,
        |b, idle| {
            format!(
                "serving loop stalled for {idle} cycles: \
                 {} of {} arrivals admitted, {} queued, cube free_at {:?}",
                b.next_arrival,
                b.trace.len(),
                b.queued_total,
                b.cubes.iter().map(|c| c.free_at).collect::<Vec<_>>()
            )
        },
    );

    let makespan = bus
        .records
        .iter()
        .map(|r| r.completes_at)
        .max()
        .unwrap_or(0);
    let outcomes: Vec<Outcome> = bus
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| panic!("request {i} has no outcome after drain")))
        .collect();

    let mut stats = StatsRegistry::new();
    let mut s = stats.scoped("serve");
    s.counter("requests.offered", bus.offered);
    s.counter("requests.admitted", bus.admitted);
    s.counter("requests.completed", bus.completed);
    s.counter("requests.shed", bus.shed);
    for reason in [
        RejectReason::UnknownModel,
        RejectReason::EmptyInput,
        RejectReason::ShapeMismatch,
        RejectReason::PastDeadline,
        RejectReason::QueueFull,
    ] {
        s.counter(
            &format!("rejected.{}", reason.key()),
            bus.rejected[reason as usize],
        );
    }
    s.counter("batches", bus.records.len() as u64);
    let hits = bus.records.iter().filter(|r| r.affinity_hit).count() as u64;
    s.counter("affinity.hits", hits);
    s.counter("affinity.misses", bus.records.len() as u64 - hits);
    s.counter("cycles.makespan", makespan);
    s.counter(
        "cycles.busy",
        bus.cubes.iter().map(|c| c.busy_cycles).sum::<u64>(),
    );
    s.counter("cycles.reprogram", bus.reprogram_cycles);
    s.histogram("latency_cycles", &bus.latency);
    s.histogram("batch_size", &bus.batch_size);
    s.histogram("queue_depth", &bus.queue_depth);
    if bus.offered > 0 {
        s.gauge("rate.shed", bus.shed as f64 / bus.offered as f64);
    }
    if !bus.records.is_empty() {
        s.gauge("rate.affinity_hit", hits as f64 / bus.records.len() as f64);
    }
    if makespan > 0 {
        s.gauge(
            "throughput.completed_per_mcycle",
            bus.completed as f64 * 1e6 / makespan as f64,
        );
    }

    ServeReport {
        records: bus.records,
        outcomes,
        stats,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube::SystemConfig;
    use neurocube_fixed::Q88;

    fn catalog() -> ModelCatalog {
        let mut cat = ModelCatalog::new(SystemConfig::paper(true));
        cat.register_synthetic("a", 100, 50);
        cat.register_synthetic("b", 300, 80);
        cat
    }

    fn req(id: u64, model: &str, arrival: u64, deadline: u64, priority: u8) -> Request {
        Request {
            id,
            model: model.to_string(),
            input: vec![Q88::ZERO],
            arrival,
            deadline,
            priority,
        }
    }

    #[test]
    fn batches_fill_and_affinity_skips_reprogramming() {
        let cat = catalog();
        let cfg = ServeConfig {
            pool: 1,
            max_batch: 4,
            max_delay: 10,
            queue_cap: 8,
        };
        let mut trace: Vec<Request> = (0..4).map(|i| req(i, "a", 0, 10_000, 0)).collect();
        trace.push(req(4, "a", 5, 10_000, 0));
        let r = serve(&cat, &cfg, &trace);
        // Four arrivals at cycle 0 fill a batch instantly: reprogram (50)
        // plus 4 x 100 service completes at 450. The straggler waits for
        // the cube, then rides alone on a warm cube: no reprogram.
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0].requests, vec![0, 1, 2, 3]);
        assert!(!r.records[0].affinity_hit);
        assert_eq!(r.records[0].completes_at, 450);
        assert_eq!(r.records[1].requests, vec![4]);
        assert!(r.records[1].affinity_hit);
        assert_eq!(r.records[1].dispatched_at, 450);
        assert_eq!(r.records[1].completes_at, 550);
        assert_eq!(r.completed(), 5);
        assert_eq!(r.makespan, 550);
        assert_eq!(r.stats.counter("serve.affinity.hits"), 1);
        assert_eq!(r.stats.counter("serve.affinity.misses"), 1);
        assert_eq!(r.stats.counter("serve.cycles.reprogram"), 50);
        assert_eq!(r.latency().count(), 5);
    }

    #[test]
    fn infeasible_heads_are_shed_not_paniced() {
        let cat = catalog();
        let cfg = ServeConfig {
            pool: 1,
            max_batch: 4,
            max_delay: 0,
            queue_cap: 8,
        };
        // Deadline 60 < reprogram + service = 150: never feasible.
        let trace = vec![req(0, "a", 0, 60, 0), req(1, "a", 0, 10_000, 0)];
        let r = serve(&cat, &cfg, &trace);
        assert_eq!(r.outcomes[0], Outcome::Shed);
        assert!(matches!(r.outcomes[1], Outcome::Completed { .. }));
        assert_eq!(r.shed(), 1);
        assert_eq!(r.stats.counter("serve.requests.shed"), 1);
    }

    #[test]
    fn a_batch_never_grows_past_a_members_deadline() {
        let cat = catalog();
        let cfg = ServeConfig {
            pool: 1,
            max_batch: 4,
            max_delay: 0,
            queue_cap: 8,
        };
        // Head's deadline fits one service (50 + 100 <= 160) but not two
        // (50 + 200 > 160): the batch must stay at size 1 even though a
        // second request is queued and would fit its own deadline.
        let trace = vec![req(0, "a", 0, 160, 0), req(1, "a", 0, 10_000, 0)];
        let r = serve(&cat, &cfg, &trace);
        assert_eq!(r.records[0].requests, vec![0]);
        assert_eq!(r.records[0].completes_at, 150);
        // The second request follows on the warm cube.
        assert_eq!(r.records[1].requests, vec![1]);
        assert!(r.records[1].affinity_hit);
    }

    #[test]
    fn admission_counts_every_rejection_class() {
        let cat = catalog();
        let cfg = ServeConfig {
            pool: 1,
            max_batch: 8,
            max_delay: 1_000,
            queue_cap: 2,
        };
        let mut trace = vec![
            req(0, "ghost", 0, 100, 0),
            req(1, "a", 0, 100, 0),
            req(2, "a", 0, 0, 0),
            req(3, "a", 0, 10_000, 0),
            req(4, "a", 0, 10_000, 0),
            req(5, "a", 0, 10_000, 0),
            req(6, "a", 0, 10_000, 0),
        ];
        trace[1].input.clear();
        trace[3].input.push(Q88::ZERO);
        // trace[2] is dead on arrival; ids 4 and 5 fill the 2-deep queue,
        // so trace[6] overflows it.
        let r = serve(&cat, &cfg, &trace);
        assert_eq!(r.outcomes[0], Outcome::Rejected(RejectReason::UnknownModel));
        assert_eq!(r.outcomes[1], Outcome::Rejected(RejectReason::EmptyInput));
        assert_eq!(r.outcomes[2], Outcome::Rejected(RejectReason::PastDeadline));
        assert_eq!(
            r.outcomes[3],
            Outcome::Rejected(RejectReason::ShapeMismatch)
        );
        assert_eq!(r.outcomes[6], Outcome::Rejected(RejectReason::QueueFull));
        assert_eq!(r.rejected(), 5);
        assert_eq!(r.stats.counter("serve.rejected.unknown_model"), 1);
        assert_eq!(r.stats.counter("serve.rejected.queue_full"), 1);
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let cat = catalog();
        let cfg = ServeConfig {
            pool: 1,
            max_batch: 1,
            max_delay: 0,
            queue_cap: 8,
        };
        let trace = vec![req(0, "b", 0, 100_000, 0), req(1, "b", 0, 100_000, 3)];
        let r = serve(&cat, &cfg, &trace);
        assert_eq!(r.records[0].requests, vec![1], "priority 3 serves first");
        assert_eq!(r.records[1].requests, vec![0]);
    }

    #[test]
    fn skip_and_naive_modes_agree_bitwise() {
        let cat = catalog();
        let cfg = ServeConfig {
            pool: 3,
            max_batch: 4,
            max_delay: 500,
            queue_cap: 16,
        };
        let spec = crate::traffic::TrafficSpec {
            malformed_permille: 150,
            ..crate::traffic::TrafficSpec::poisson(
                19,
                90.0,
                300,
                vec![("a".to_string(), 2), ("b".to_string(), 1)],
            )
        };
        let trace = crate::traffic::generate(&cat, &spec);
        let naive = serve_mode(&cat, &cfg, &trace, Some(false));
        let fast = serve_mode(&cat, &cfg, &trace, Some(true));
        assert_eq!(naive.records, fast.records);
        assert_eq!(naive.outcomes, fast.outcomes);
        assert_eq!(naive.stats.first_difference(&fast.stats), None);
        assert!(naive.completed() > 0);
    }

    // `ServeConfig::from_env` reads fixed process-global variables, so
    // its set/unset tests live in `tests/tests/env_knobs.rs` behind the
    // shared `EnvGuard` mutex — an unguarded set/unset dance here would
    // race against any parallel test touching the same names.

    #[test]
    fn empty_traces_serve_trivially() {
        let cat = catalog();
        let r = serve(&cat, &ServeConfig::new(2), &[]);
        assert!(r.records.is_empty());
        assert!(r.outcomes.is_empty());
        assert_eq!(r.makespan, 0);
    }
}
