//! Deterministic multi-tenant inference serving over a Neurocube pool.
//!
//! This crate layers a request-level serving frontend on the cycle
//! simulator: an open-loop [`traffic`] generator emits inference
//! requests (model, payload, deadline, priority) from `fault::prng`'s
//! counter PRNG; the [`scheduler`] admits them, forms dynamic batches
//! per model, places batches on a pool of cube timelines with
//! model-affinity awareness (a cube keeps its last-programmed network,
//! so same-model batches skip the host reprogramming charge), and sheds
//! requests that can no longer meet their deadlines — gracefully, as
//! counted statistics, never a panic. The [`executor`] then replays the
//! schedule on real [`neurocube::PoolCube`]s, serially or on
//! `BatchRunner` threads, with bitwise-identical merged statistics
//! either way.
//!
//! Everything is deterministic end to end: the same `(seed, trace,
//! config)` produces the same `serve.*` registry bit for bit — across
//! reruns, across fast-forward modes (the scheduler rides
//! `sim::CycleLoop`'s event-horizon contract), and across
//! serial-versus-threaded execution. An independent [`oracle`]
//! re-implements the scheduling policy longhand so the property suites
//! can difference the two.
//!
//! For scale, the [`twospeed`] executor replaces the full replay with an
//! analytical fast path — every dispatch priced from the catalog's
//! memoized profile, no cube ticking — plus deterministic sampled
//! audits: a counter-PRNG draw keyed by `(audit seed, dispatch index)`
//! picks a configurable fraction of dispatches for full cycle- and
//! value-accurate replay on fresh cubes, asserting the analytical
//! numbers against the certified `golden::timing` envelope and the
//! golden functional reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod executor;
pub mod oracle;
pub mod request;
pub mod scheduler;
pub mod traffic;
pub mod twospeed;

pub use catalog::{input_payload, ModelCatalog, ModelEntry, ModelPayload};
pub use executor::{execute, ExecMode};
pub use request::{Outcome, RejectReason, Request};
pub use scheduler::{serve, serve_mode, DispatchRecord, ServeConfig, ServeReport};
pub use traffic::{
    generate, LoadProfile, Scenario, TrafficSpec, UnknownScenario, DOMAIN_TRAFFIC, SCENARIOS,
};
pub use twospeed::{
    execute_two_speed, AuditRecord, AuditSampler, AuditViolation, TwoSpeedConfig, TwoSpeedReport,
    DOMAIN_AUDIT,
};
