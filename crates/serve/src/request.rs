//! Inference requests and their admission/terminal outcomes.

use neurocube_fixed::Q88;

/// One inference request as submitted by a tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Trace-unique id; the generator assigns ids equal to the request's
    /// index in the trace, which the executor relies on for lookups.
    pub id: u64,
    /// Name of the model to run (resolved against the catalog at
    /// admission).
    pub model: String,
    /// Flat input payload in the model's canonical tensor order. Kept as
    /// raw values rather than a `Tensor` so malformed payloads (empty,
    /// wrong length) exist as *data* the admission path must reject,
    /// instead of being unrepresentable by construction.
    pub input: Vec<Q88>,
    /// Virtual cycle the request arrives at the frontend.
    pub arrival: u64,
    /// Absolute virtual-cycle deadline: the batch carrying this request
    /// must complete at or before this cycle, or the request is shed.
    pub deadline: u64,
    /// Scheduling priority — higher values queue ahead of lower ones
    /// within a model's queue; ties keep arrival order.
    pub priority: u8,
}

/// Why a request was refused at admission, before ever queueing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The model name is not in the catalog.
    UnknownModel,
    /// The input payload is empty.
    EmptyInput,
    /// The input payload length does not match the model's input shape.
    ShapeMismatch,
    /// The deadline is not in the future at arrival time.
    PastDeadline,
    /// The model's queue is at capacity.
    QueueFull,
}

impl RejectReason {
    /// Stats-registry key suffix for this rejection class.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            RejectReason::UnknownModel => "unknown_model",
            RejectReason::EmptyInput => "empty_input",
            RejectReason::ShapeMismatch => "shape_mismatch",
            RejectReason::PastDeadline => "past_deadline",
            RejectReason::QueueFull => "queue_full",
        }
    }
}

/// Terminal state of one request, indexed by trace position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served: dispatched in a batch that completed by the deadline.
    Completed {
        /// Completion cycle minus arrival cycle.
        latency: u64,
        /// Size of the batch the request rode in.
        batch_size: u64,
    },
    /// Admitted but shed later: no feasible dispatch existed when the
    /// request reached the head of its queue.
    Shed,
    /// Refused at admission.
    Rejected(RejectReason),
}
