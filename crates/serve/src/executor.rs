//! Replays a schedule on real cubes and proves execution determinism.
//!
//! The scheduler plans in virtual time; this module carries the plan out:
//! each [`DispatchRecord`] becomes real `Neurocube` inferences on a
//! [`PoolCube`], with `ensure_loaded` reproducing exactly the affinity
//! hits and misses the scheduler predicted (asserted per record).
//!
//! Per-cube record streams are independent once the schedule is fixed, so
//! they can run serially or on [`BatchRunner`] threads; either way each
//! cube replays its own records in dispatch order, and the merged
//! `serve.exec.*` registry — including a checksum folded over every
//! output value — is bitwise identical. That is the serving layer's
//! execution-determinism contract, and the suites assert it.

use crate::catalog::ModelCatalog;
use crate::request::Request;
use crate::scheduler::DispatchRecord;
use neurocube::PoolCube;
use neurocube_sim::{BatchRunner, StatsRegistry};

/// The order-sensitive output-checksum fold both replay paths share:
/// every output element of every request, in replay order — two replays
/// agree on the final value iff they agree on every output bit. The
/// same fold merges per-cube checksums in cube order.
pub(crate) const CHECKSUM_PRIME: u64 = 0x100_0000_01b3;

/// One step of the checksum fold.
pub(crate) fn fold_checksum(checksum: u64, value: u64) -> u64 {
    checksum.wrapping_mul(CHECKSUM_PRIME).wrapping_add(value)
}

/// How to drive the per-cube replay jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// One cube after another on the calling thread.
    Serial,
    /// All cubes concurrently on [`BatchRunner`] threads.
    Batched,
}

/// Per-cube replay result, merged in cube order regardless of mode.
struct CubeExec {
    batches: u64,
    requests: u64,
    affinity_hits: u64,
    affinity_misses: u64,
    /// Order-sensitive fold over every output element of every request,
    /// in replay order — two replays agree on this iff they agree on
    /// every output value.
    output_checksum: u64,
}

fn replay_cube(catalog: &ModelCatalog, trace: &[Request], records: &[&DispatchRecord]) -> CubeExec {
    let mut cube = PoolCube::new(catalog.config().clone());
    let mut exec = CubeExec {
        batches: 0,
        requests: 0,
        affinity_hits: 0,
        affinity_misses: 0,
        output_checksum: 0,
    };
    for rec in records {
        let entry = catalog.entry(rec.model);
        let payload = entry
            .payload
            .as_ref()
            .expect("synthetic models cannot be executed; register real networks");
        // Linear tenants program per layer; graph tenants compile once and
        // run pipelined. Both share the cube's affinity slot.
        let hit = payload.ensure_on(&mut cube, rec.model);
        assert_eq!(
            hit, rec.affinity_hit,
            "cube {} model {}: the pool's affinity state diverged from the schedule",
            rec.cube, entry.name
        );
        if hit {
            exec.affinity_hits += 1;
        } else {
            exec.affinity_misses += 1;
        }
        exec.batches += 1;
        for &id in &rec.requests {
            let req = &trace[usize::try_from(id).expect("id fits usize")];
            let input = payload.input_tensor(req.input.clone());
            let (output, _) = cube.run_service(&input);
            for &v in output.as_slice() {
                exec.output_checksum =
                    fold_checksum(exec.output_checksum, v.to_bits() as u16 as u64);
            }
            exec.requests += 1;
        }
    }
    exec
}

/// Executes every batch in `records` on real cubes and returns the
/// merged `serve.exec.*` registry. Bitwise identical across modes.
///
/// # Panics
///
/// Panics when a record names a synthetic (timing-only) model, or when a
/// cube's real affinity state disagrees with the schedule's prediction.
#[must_use]
pub fn execute(
    catalog: &ModelCatalog,
    trace: &[Request],
    records: &[DispatchRecord],
    mode: ExecMode,
) -> StatsRegistry {
    let pool = records.iter().map(|r| r.cube + 1).max().unwrap_or(0);
    let per_cube: Vec<Vec<&DispatchRecord>> = (0..pool)
        .map(|c| records.iter().filter(|r| r.cube == c).collect())
        .collect();

    let execs: Vec<CubeExec> = match mode {
        ExecMode::Serial => per_cube
            .iter()
            .map(|recs| replay_cube(catalog, trace, recs))
            .collect(),
        ExecMode::Batched => BatchRunner::new().run(per_cube.len(), |c| {
            replay_cube(catalog, trace, &per_cube[c])
        }),
    };

    let mut total = CubeExec {
        batches: 0,
        requests: 0,
        affinity_hits: 0,
        affinity_misses: 0,
        output_checksum: 0,
    };
    // Merge in cube order — the same fold no matter which threads ran
    // which cube, so both modes export identical registries.
    for e in &execs {
        total.batches += e.batches;
        total.requests += e.requests;
        total.affinity_hits += e.affinity_hits;
        total.affinity_misses += e.affinity_misses;
        total.output_checksum = total
            .output_checksum
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(e.output_checksum);
    }

    let mut stats = StatsRegistry::new();
    let mut s = stats.scoped("serve.exec");
    s.counter("cubes", pool as u64);
    s.counter("batches", total.batches);
    s.counter("requests", total.requests);
    s.counter("affinity.hits", total.affinity_hits);
    s.counter("affinity.misses", total.affinity_misses);
    s.counter("output_checksum", total.output_checksum);
    stats
}
