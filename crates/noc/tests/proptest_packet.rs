//! Property-based tests of the wire format and the deterministic X-Y
//! router: every packet survives encode/decode exactly, and every route
//! terminates at its destination in exactly the Manhattan hop count, on
//! meshes of any size.

use neurocube_noc::{Packet, PacketKind, Topology};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = PacketKind> {
    (0u8..4).prop_map(|k| match k {
        0 => PacketKind::State,
        1 => PacketKind::SharedState,
        2 => PacketKind::Weight,
        _ => PacketKind::Result,
    })
}

fn any_packet() -> impl Strategy<Value = Packet> {
    (
        0u8..64,
        0u8..64,
        0u8..16,
        any::<u8>(),
        any_kind(),
        any::<u16>(),
    )
        .prop_map(|(dst, src, mac_id, op_id, kind, data)| Packet {
            dst,
            src,
            mac_id,
            op_id,
            kind,
            data,
        })
}

proptest! {
    /// The 36-bit-style flit encoding loses nothing: every field
    /// round-trips exactly for every representable value.
    #[test]
    fn packet_roundtrips_through_wire_encoding(p in any_packet()) {
        prop_assert_eq!(Packet::decode(p.encode()), p);
    }

    /// X-Y routing terminates at the destination after exactly
    /// `hops(src, dst)` link traversals on a mesh of any size — no
    /// livelock, no detour, for every (src, dst) pair.
    #[test]
    fn xy_routing_terminates_in_hop_count(
        w in 1u8..9,
        h in 1u8..9,
        src_pick in any::<u8>(),
        dst_pick in any::<u8>(),
    ) {
        let topo = Topology::Mesh { width: w, height: h };
        let nodes = topo.nodes();
        let src = src_pick % nodes;
        let dst = dst_pick % nodes;

        let mut cur = src;
        let mut steps = 0u32;
        while let Some(port) = topo.route(cur, dst) {
            let next = topo.neighbor(cur, port)
                .expect("router must never emit a port with no link");
            // Each traversal moves strictly closer to the destination.
            prop_assert_eq!(topo.hops(next, dst) + 1, topo.hops(cur, dst));
            cur = next;
            steps += 1;
            prop_assert!(
                steps <= u32::from(w) + u32::from(h),
                "route from {} to {} exceeded the mesh diameter", src, dst
            );
        }
        prop_assert_eq!(cur, dst);
        prop_assert_eq!(steps, topo.hops(src, dst));
    }

    /// The fully connected reference topology routes every pair in one hop.
    #[test]
    fn fully_connected_routes_directly(
        n in 1u8..64,
        src_pick in any::<u8>(),
        dst_pick in any::<u8>(),
    ) {
        let topo = Topology::FullyConnected { nodes: n };
        let (src, dst) = (src_pick % n, dst_pick % n);
        match topo.route(src, dst) {
            None => prop_assert_eq!(src, dst),
            Some(port) => {
                prop_assert_eq!(topo.neighbor(src, port), Some(dst));
                prop_assert_eq!(topo.hops(src, dst), 1);
            }
        }
    }
}
