//! NoC wiring: 2D mesh (Fig. 6(a)) and fully connected (Fig. 6(b)).

use crate::packet::NodeId;
use std::fmt;

/// The fabric wiring pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// `width × height` 2D mesh with deterministic X-Y routing — the
    /// Neurocube's native NoC (4×4 for the 16-vault HMC).
    Mesh {
        /// Routers per row.
        width: u8,
        /// Rows.
        height: u8,
    },
    /// Every router directly linked to every other (§VI-C). One hop between
    /// any pair; each router needs `nodes + 1` I/O channels, which the paper
    /// notes is a high-radix design.
    FullyConnected {
        /// Router count.
        nodes: u8,
    },
}

impl Topology {
    /// The paper's 4×4 mesh.
    pub const fn mesh4x4() -> Topology {
        Topology::Mesh {
            width: 4,
            height: 4,
        }
    }

    /// Number of routers in the fabric.
    pub fn nodes(&self) -> u8 {
        match *self {
            Topology::Mesh { width, height } => width * height,
            Topology::FullyConnected { nodes } => nodes,
        }
    }

    /// Number of router-to-router ports on each router (excluding the PE
    /// and memory ports).
    pub fn mesh_ports(&self) -> usize {
        match *self {
            Topology::Mesh { .. } => 4,
            Topology::FullyConnected { nodes } => usize::from(nodes) - 1,
        }
    }

    /// Total ports per router including PE and memory ports.
    pub fn ports(&self) -> usize {
        self.mesh_ports() + 2
    }

    /// Minimal hop distance between two nodes (Manhattan for the mesh, 0/1
    /// for fully connected).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        match *self {
            Topology::Mesh { width, .. } => {
                let (ax, ay) = (a % width, a / width);
                let (bx, by) = (b % width, b / width);
                u32::from(ax.abs_diff(bx)) + u32::from(ay.abs_diff(by))
            }
            Topology::FullyConnected { .. } => u32::from(a != b),
        }
    }

    /// The router-port a packet at `cur` must take to reach `dst`, or `None`
    /// if it has arrived. Mesh routing is deterministic X-then-Y, the
    /// paper's stated algorithm; it is deadlock-free for single-flit packets
    /// with finite buffers because the X→Y turn order admits no cyclic
    /// channel dependencies.
    ///
    /// Port numbering for the mesh: 0 = +x (east), 1 = −x (west),
    /// 2 = +y (south), 3 = −y (north). For fully connected, port `p` leads
    /// to node `p` if `p < cur`, otherwise to node `p + 1`.
    pub fn route(&self, cur: NodeId, dst: NodeId) -> Option<usize> {
        if cur == dst {
            return None;
        }
        match *self {
            Topology::Mesh { width, .. } => {
                let (cx, cy) = (cur % width, cur / width);
                let (dx, dy) = (dst % width, dst / width);
                Some(if dx > cx {
                    0
                } else if dx < cx {
                    1
                } else if dy > cy {
                    2
                } else {
                    3
                })
            }
            Topology::FullyConnected { .. } => Some(if dst < cur {
                usize::from(dst)
            } else {
                usize::from(dst) - 1
            }),
        }
    }

    /// The node reached by leaving `cur` through router-port `port`, or
    /// `None` if that port has no link (mesh edge).
    pub fn neighbor(&self, cur: NodeId, port: usize) -> Option<NodeId> {
        match *self {
            Topology::Mesh { width, height } => {
                let (cx, cy) = (cur % width, cur / width);
                match port {
                    0 if cx + 1 < width => Some(cur + 1),
                    1 if cx > 0 => Some(cur - 1),
                    2 if cy + 1 < height => Some(cur + width),
                    3 if cy > 0 => Some(cur - width),
                    _ => None,
                }
            }
            Topology::FullyConnected { nodes } => {
                let target = if (port as u8) < cur {
                    port as u8
                } else {
                    port as u8 + 1
                };
                (target < nodes && port < usize::from(nodes) - 1).then_some(target)
            }
        }
    }

    /// The input port on the *receiving* router corresponding to a link
    /// leaving `cur` through `port` (links are bidirectional pairs).
    pub fn reverse_port(&self, cur: NodeId, port: usize) -> usize {
        match *self {
            // East pairs with west, south with north.
            Topology::Mesh { .. } => port ^ 1,
            Topology::FullyConnected { .. } => {
                let target = self
                    .neighbor(cur, port)
                    .expect("reverse_port of unconnected port");
                // On `target`, the port leading back to `cur`:
                if cur < target {
                    usize::from(cur)
                } else {
                    usize::from(cur) - 1
                }
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Mesh { width, height } => write!(f, "{width}x{height} mesh"),
            Topology::FullyConnected { nodes } => write!(f, "{nodes}-node fully connected"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_geometry() {
        let t = Topology::mesh4x4();
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.ports(), 6);
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(5, 5), 0);
        assert_eq!(t.hops(0, 3), 3);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let t = Topology::mesh4x4();
        // node 0 = (0,0), node 15 = (3,3): east until x matches, then south.
        assert_eq!(t.route(0, 15), Some(0));
        assert_eq!(t.route(3, 15), Some(2));
        assert_eq!(t.route(15, 15), None);
        // Westward and northward.
        assert_eq!(t.route(15, 0), Some(1));
        assert_eq!(t.route(12, 0), Some(3));
    }

    #[test]
    fn mesh_neighbors_respect_edges() {
        let t = Topology::mesh4x4();
        assert_eq!(t.neighbor(0, 0), Some(1)); // east
        assert_eq!(t.neighbor(0, 1), None); // west edge
        assert_eq!(t.neighbor(0, 2), Some(4)); // south
        assert_eq!(t.neighbor(0, 3), None); // north edge
        assert_eq!(t.neighbor(15, 0), None);
        assert_eq!(t.neighbor(15, 3), Some(11));
    }

    #[test]
    fn mesh_links_are_symmetric() {
        let t = Topology::mesh4x4();
        for node in 0..16u8 {
            for port in 0..4 {
                if let Some(n) = t.neighbor(node, port) {
                    let back = t.reverse_port(node, port);
                    assert_eq!(t.neighbor(n, back), Some(node), "node {node} port {port}");
                }
            }
        }
    }

    #[test]
    fn xy_routing_reaches_destination() {
        let t = Topology::mesh4x4();
        for src in 0..16u8 {
            for dst in 0..16u8 {
                let mut cur = src;
                let mut hops = 0;
                while let Some(port) = t.route(cur, dst) {
                    cur = t.neighbor(cur, port).expect("route led off the mesh");
                    hops += 1;
                    assert!(hops <= 6, "routing loop {src}->{dst}");
                }
                assert_eq!(cur, dst);
                assert_eq!(hops, t.hops(src, dst));
            }
        }
    }

    #[test]
    fn fully_connected_is_single_hop() {
        let t = Topology::FullyConnected { nodes: 16 };
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.ports(), 17); // 15 mesh + PE + memory: the paper's "17 input/output channels"
        for src in 0..16u8 {
            for dst in 0..16u8 {
                if src == dst {
                    assert_eq!(t.route(src, dst), None);
                } else {
                    let port = t.route(src, dst).unwrap();
                    assert_eq!(t.neighbor(src, port), Some(dst));
                    assert_eq!(t.hops(src, dst), 1);
                }
            }
        }
    }

    #[test]
    fn fully_connected_links_are_symmetric() {
        let t = Topology::FullyConnected { nodes: 8 };
        for node in 0..8u8 {
            for port in 0..7 {
                let n = t.neighbor(node, port).unwrap();
                let back = t.reverse_port(node, port);
                assert_eq!(t.neighbor(n, back), Some(node));
            }
        }
    }

    #[test]
    fn display_names_topologies() {
        assert_eq!(Topology::mesh4x4().to_string(), "4x4 mesh");
        assert_eq!(
            Topology::FullyConnected { nodes: 16 }.to_string(),
            "16-node fully connected"
        );
    }
}
