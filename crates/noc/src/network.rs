//! The cycle-driven fabric.

use crate::packet::{NodeId, Packet};
use crate::router::{FlatQueues, Flit};
use crate::stats::NocStats;
use crate::topology::Topology;
use neurocube_fault::{FaultConfig, LinkFault, NocFaultCounts, NocFaults};
use neurocube_sim::{ScopedStats, StatSource};
use std::fmt;

/// No-winner sentinel for the switch-allocation scratch array.
const NO_GRANT: u16 = u16::MAX;

/// No-link sentinel in the precomputed link table.
const NO_LINK: u8 = u8::MAX;

/// `v % ports` for `v < 2 * ports`, without the integer division (`ports`
/// is a runtime value, so `%` compiles to a real `div` — measurable at
/// one-hundred-plus reductions per fabric tick).
#[inline]
fn wrap(v: usize, ports: usize) -> usize {
    if v >= ports {
        v - ports
    } else {
        v
    }
}

/// A complete NoC: one router per node, each with a PE port and a memory
/// (vault/PNG) port in addition to its router-to-router links.
///
/// All router state is struct-of-arrays: the input and output FIFOs of
/// every `(router, port)` pair live in two flat ring-buffer pools and the
/// arbiter pointers in one dense array, so the per-cycle switch-allocation
/// and link-traversal phases are passes over contiguous memory (see
/// `router.rs`).
///
/// Drive the fabric with [`tick`](Network::tick) once per reference cycle.
/// Producers inject with [`try_inject_from_mem`](Network::try_inject_from_mem)
/// / [`try_inject_from_pe`](Network::try_inject_from_pe) (returns `false`
/// on backpressure) and consumers drain with
/// [`pop_for_pe`](Network::pop_for_pe) / [`pop_for_mem`](Network::pop_for_mem).
///
/// # Examples
///
/// ```
/// use neurocube_noc::{Network, Packet, PacketKind, Topology};
///
/// let mut net = Network::new(Topology::mesh4x4());
/// let pkt = Packet { dst: 5, src: 0, mac_id: 0, op_id: 0,
///                    kind: PacketKind::State, data: 42 };
/// assert!(net.try_inject_from_mem(0, pkt, 0));
/// let mut got = None;
/// for now in 1..100 {
///     net.tick(now);
///     if let Some(p) = net.pop_for_pe(5, now) { got = Some(p); break; }
/// }
/// assert_eq!(got.unwrap().data, 42);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    topo: Topology,
    nodes: usize,
    ports: usize,
    /// Input FIFOs, queue index `router * ports + port`.
    inputs: FlatQueues,
    /// Output FIFOs, same indexing.
    outputs: FlatQueues,
    /// Rotating daisy-chain priority pointer per `(router, output port)`
    /// (§III-C: "priorities are updated every clock cycle").
    priority: Vec<u8>,
    stats: NocStats,
    pe_port: usize,
    mem_port: usize,
    /// Bit `i` set ⇔ router `i` buffers at least one flit. [`tick`] scans
    /// only set bits; everything else takes the cheap idle path.
    busy: u128,
    /// Per-router flit counts backing the `busy` mask.
    occ: Vec<u32>,
    /// Count of [`tick`](Self::tick) calls. With `seen` it drives the lazy
    /// idle-arbiter rotation: an idle router's only observable behaviour is
    /// its every-cycle `+1` pointer rotation, so instead of touching every
    /// idle router's pointers each tick, phase 1 folds the accumulated lag
    /// in (mod `ports`) when a router next holds flits.
    ticks: u64,
    /// Per-router `ticks` value at which the arbiter pointers were last
    /// brought current; `ticks - seen[n]` tick calls of pending idle
    /// rotation are outstanding (every such call found the router idle, or
    /// it would have been processed and stamped).
    seen: Vec<u64>,
    /// Scratch for phase-1 switch allocation: per output port, the winning
    /// `(rank << 8) | input` pair ([`NO_GRANT`] = no requester), where rank
    /// is the input's distance from the output's priority pointer. Reused
    /// across ticks so the critical path never allocates.
    grant: Vec<u16>,
    /// Precomputed X-Y routing decision, index `node * nodes + dst`: the
    /// output port a transiting flit takes ([`NO_LINK`] = already home,
    /// the eject port applies). The topology is immutable, so the per-tick
    /// route calls are table lookups.
    route_lut: Vec<u8>,
    /// Precomputed mesh links, index `node * mesh_ports + port`:
    /// `(neighbor, reverse_port)`, neighbor [`NO_LINK`] on mesh edges.
    links: Vec<(u8, u8)>,
    /// Optional link-fault lens. Link faults are conditioned on a flit
    /// actually traversing a link, so the fabric needs no event-horizon
    /// clamping: a busy fabric never skips, and an idle one draws nothing.
    faults: Option<NocFaults>,
    /// In lenient mode malformed packets become counted drops instead of
    /// panics. Fault-free runs keep `debug_assert!` teeth so golden suites
    /// still catch logic errors.
    lenient: bool,
    /// Drops counted by the fabric itself (unroutable destinations), kept
    /// separate from the lens so they are visible even without an injector.
    drop_counts: NocFaultCounts,
    /// One-shot flag: the first unroutable packet emits a rich diagnostic;
    /// later ones only count.
    diagnosed_unroutable: bool,
}

/// A topology the flat-pool fabric representation cannot carry — the
/// typed form of what used to be construction-time panics, so compilers
/// and hosts can surface oversized configurations gracefully (the PR 4
/// degradation policy) instead of aborting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NocError {
    /// More routers than the `u128` occupancy mask can track.
    MeshTooLarge {
        /// Routers the topology wires.
        nodes: usize,
        /// The representation's limit (128).
        max: usize,
    },
    /// More ports per router than the `u8` arbiter priority pointers can
    /// index (a fully connected fabric needs `nodes + 1` ports).
    TooManyPorts {
        /// Ports per router the topology needs.
        ports: usize,
        /// The representation's limit (255).
        max: usize,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NocError::MeshTooLarge { nodes, max } => write!(
                f,
                "topology wires {nodes} routers but the occupancy mask supports at most {max}"
            ),
            NocError::TooManyPorts { ports, max } => write!(
                f,
                "topology needs {ports} ports per router but the arbiter pointers index at most {max}"
            ),
        }
    }
}

impl std::error::Error for NocError {}

impl Network {
    /// Builds an idle fabric with the given wiring.
    ///
    /// # Panics
    ///
    /// Panics if the topology exceeds the fabric representation's limits
    /// (see [`Network::try_new`]; every Neurocube configuration is 16
    /// nodes, far inside them).
    pub fn new(topo: Topology) -> Network {
        match Network::try_new(topo) {
            Ok(net) => net,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds an idle fabric with the given wiring, or reports a typed
    /// [`NocError`] when the topology exceeds what the flat-pool
    /// representation can carry: at most 128 routers (the occupancy mask
    /// is a `u128`) and at most 255 ports per router (arbiter priority
    /// pointers are `u8`).
    ///
    /// # Errors
    ///
    /// [`NocError::TooManyPorts`] or [`NocError::MeshTooLarge`] on an
    /// oversized topology.
    pub fn try_new(topo: Topology) -> Result<Network, NocError> {
        let ports = topo.ports();
        let nodes = usize::from(topo.nodes());
        if ports >= 256 {
            return Err(NocError::TooManyPorts { ports, max: 255 });
        }
        if nodes > 128 {
            return Err(NocError::MeshTooLarge { nodes, max: 128 });
        }
        let mut route_lut = vec![NO_LINK; nodes * nodes];
        for cur in 0..nodes {
            for dst in 0..nodes {
                if let Some(port) = topo.route(cur as NodeId, dst as NodeId) {
                    route_lut[cur * nodes + dst] = port as u8;
                }
            }
        }
        let mesh = topo.mesh_ports();
        let mut links = vec![(NO_LINK, 0u8); nodes * mesh];
        for cur in 0..nodes {
            for port in 0..mesh {
                if let Some(n) = topo.neighbor(cur as NodeId, port) {
                    links[cur * mesh + port] = (n, topo.reverse_port(cur as NodeId, port) as u8);
                }
            }
        }
        Ok(Network {
            nodes,
            ports,
            inputs: FlatQueues::new(nodes * ports),
            outputs: FlatQueues::new(nodes * ports),
            priority: vec![0; nodes * ports],
            stats: NocStats::default(),
            pe_port: topo.mesh_ports(),
            mem_port: topo.mesh_ports() + 1,
            busy: 0,
            occ: vec![0; nodes],
            ticks: 0,
            seen: vec![0; nodes],
            grant: vec![NO_GRANT; ports],
            route_lut,
            links,
            faults: None,
            lenient: false,
            drop_counts: NocFaultCounts::default(),
            diagnosed_unroutable: false,
            topo,
        })
    }

    /// Attaches (or detaches) the link-fault lens. Attaching also switches
    /// the fabric to lenient packet handling, since injected faults make
    /// otherwise-impossible packet states reachable.
    pub fn set_faults(&mut self, cfg: Option<&FaultConfig>) {
        self.faults = cfg.map(NocFaults::new);
        if self.faults.is_some() {
            self.lenient = true;
        }
    }

    /// Switches malformed-packet handling between panicking (strict, the
    /// default) and counted drops (lenient). Independent of the fault lens
    /// so hosts can harden against untrusted inputs without injecting.
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Aggregated fault counters: lens-injected link events plus the
    /// fabric's own unroutable-packet drops.
    pub fn fault_counts(&self) -> NocFaultCounts {
        let mut c = self.drop_counts;
        if let Some(f) = &self.faults {
            c.merge(&f.counts);
        }
        c
    }

    fn note_gain(&mut self, node: usize) {
        self.occ[node] += 1;
        self.busy |= 1u128 << node;
    }

    fn note_loss(&mut self, node: usize) {
        self.occ[node] -= 1;
        if self.occ[node] == 0 {
            self.busy &= !(1u128 << node);
        }
    }

    /// The wiring this fabric was built with.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Buffered flits at a router, recounted from the queue headers
    /// (consistency checks; the hot paths use `occ`).
    fn recount(&self, node: usize) -> usize {
        let range = node * self.ports..(node + 1) * self.ports;
        self.inputs.occupancy_range(range.clone()) + self.outputs.occupancy_range(range)
    }

    /// `true` when no flit is buffered anywhere. O(1) via the mask.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.busy == 0,
            (0..self.nodes).all(|n| self.recount(n) == 0),
            "occupancy mask out of sync with router buffers"
        );
        self.busy == 0
    }

    /// Total flits buffered in the fabric.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occ.iter().map(|&c| c as usize).sum::<usize>(),
            (0..self.nodes).map(|n| self.recount(n)).sum::<usize>(),
            "occupancy counters out of sync with router buffers"
        );
        self.occ.iter().map(|&c| c as usize).sum()
    }

    /// The output port a packet takes when it reaches its destination
    /// router.
    fn eject_port(&self, pkt: Packet) -> usize {
        if pkt.is_for_memory() {
            self.mem_port
        } else {
            self.pe_port
        }
    }

    fn inject(&mut self, node: NodeId, port: usize, pkt: Packet, now: u64) -> bool {
        let q = usize::from(node) * self.ports + port;
        if self.inputs.is_full(q) {
            self.stats.inject_stalls += 1;
            return false;
        }
        self.inputs.push_back(
            q,
            Flit {
                pkt,
                entered: now,
                injected: now,
                hops: 0,
            },
        );
        self.stats.injected += 1;
        self.note_gain(usize::from(node));
        true
    }

    /// Graceful-degradation path for a packet whose destination does not
    /// exist in this fabric: count it, emit one rich diagnostic per fabric,
    /// and report the packet consumed (returning `false` would look like
    /// backpressure and make the producer retry forever). Still a
    /// `debug_assert!` failure in strict mode, so fault-free golden suites
    /// keep catching real routing logic errors.
    fn consume_unroutable(&mut self, node: NodeId, pkt: Packet, now: u64, from: &str) -> bool {
        debug_assert!(
            self.lenient,
            "unroutable packet from {from} port of node {node}: \
             dst {} outside 0..{} ({pkt:?})",
            pkt.dst, self.nodes,
        );
        self.drop_counts.unroutable += 1;
        if !self.diagnosed_unroutable {
            self.diagnosed_unroutable = true;
            eprintln!(
                "neurocube-noc: dropping unroutable packet at cycle {now}: \
                 dst {} outside 0..{} (src {}, {from} port of node {node}, \
                 kind {:?}, mac {}, op {}, data {:#06x}); counted under \
                 fault.noc.unroutable, further drops are silent",
                pkt.dst, self.nodes, pkt.src, pkt.kind, pkt.mac_id, pkt.op_id, pkt.data,
            );
        }
        true
    }

    /// Injects a packet from node `node`'s vault/PNG.
    ///
    /// An unroutable destination is a counted drop in lenient mode (see
    /// [`set_lenient`](Self::set_lenient)).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, or — in strict debug builds —
    /// if `pkt.dst` is.
    pub fn try_inject_from_mem(&mut self, node: NodeId, pkt: Packet, now: u64) -> bool {
        if usize::from(pkt.dst) >= self.nodes {
            return self.consume_unroutable(node, pkt, now, "mem");
        }
        self.inject(node, self.mem_port, pkt, now)
    }

    /// Injects a packet from node `node`'s PE (write-back results).
    ///
    /// An unroutable destination is a counted drop in lenient mode (see
    /// [`set_lenient`](Self::set_lenient)).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, or — in strict debug builds —
    /// if `pkt.dst` is.
    pub fn try_inject_from_pe(&mut self, node: NodeId, pkt: Packet, now: u64) -> bool {
        if usize::from(pkt.dst) >= self.nodes {
            return self.consume_unroutable(node, pkt, now, "pe");
        }
        self.inject(node, self.pe_port, pkt, now)
    }

    fn pop_ejected(&mut self, node: NodeId, port: usize, now: u64) -> Option<Packet> {
        let q = usize::from(node) * self.ports + port;
        if self.outputs.front(q).is_some_and(|f| f.entered < now) {
            let f = self.outputs.pop_front(q).expect("just checked");
            self.stats.delivered += 1;
            self.stats.total_hops += u64::from(f.hops);
            self.stats.total_latency += now - f.injected;
            if f.pkt.is_lateral() {
                self.stats.lateral += 1;
            }
            self.note_loss(usize::from(node));
            Some(f.pkt)
        } else {
            None
        }
    }

    /// Removes the next packet waiting at node `node`'s PE port, if any.
    /// At most one packet per node per cycle (the PE ingest datapath is one
    /// packet wide).
    pub fn pop_for_pe(&mut self, node: NodeId, now: u64) -> Option<Packet> {
        self.pop_ejected(node, self.pe_port, now)
    }

    /// The packet [`pop_for_pe`](Self::pop_for_pe) would return, without
    /// removing it — lets a PE refuse delivery (backpressure) and leave the
    /// packet queued in the router.
    pub fn peek_for_pe(&self, node: NodeId, now: u64) -> Option<&Packet> {
        let q = usize::from(node) * self.ports + self.pe_port;
        self.outputs
            .front(q)
            .filter(|f| f.entered < now)
            .map(|f| &f.pkt)
    }

    /// Removes the next packet waiting at node `node`'s memory port
    /// (write-backs destined for the PNG/vault controller).
    pub fn pop_for_mem(&mut self, node: NodeId, now: u64) -> Option<Packet> {
        self.pop_ejected(node, self.mem_port, now)
    }

    /// The packet [`pop_for_mem`](Self::pop_for_mem) would return, without
    /// removing it (vault-controller backpressure).
    pub fn peek_for_mem(&self, node: NodeId, now: u64) -> Option<&Packet> {
        let q = usize::from(node) * self.ports + self.mem_port;
        self.outputs
            .front(q)
            .filter(|f| f.entered < now)
            .map(|f| &f.pkt)
    }

    /// Advances the fabric one cycle: switch allocation (inputs → outputs,
    /// rotating-priority arbitration per output) followed by link traversal
    /// (outputs → neighbour inputs). A flit moves at most one stage per
    /// cycle.
    pub fn tick(&mut self, now: u64) {
        let ports = self.ports;
        self.ticks += 1;
        let ticks = self.ticks;

        // Phase 1: switch allocation within each router. Only routers
        // holding flits run the want/grant scan; an empty router's sole
        // observable behaviour is its every-cycle arbiter rotation, which
        // is deferred (`ticks`/`seen`) and folded in below when the router
        // next holds flits — an idle router costs nothing per cycle.
        //
        // Flits never cross routers in phase 1, so the mask snapshot is
        // exact for the whole phase.
        let mut pending = self.busy;
        let mut grant = std::mem::take(&mut self.grant);
        while pending != 0 {
            let node = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let base = node * ports;
            // Ticks since the last stamp all found this router idle; apply
            // their pending rotation (the current tick is not one of them —
            // the grant loop below rotates or resets each pointer itself).
            let lag = (ticks - 1) - self.seen[node];
            self.seen[node] = ticks;
            let k = (lag % ports as u64) as usize;
            if k != 0 {
                for p in &mut self.priority[base..base + ports] {
                    *p = wrap(usize::from(*p) + k, ports) as u8;
                }
            }
            // One pass over the input heads computes every output's winner
            // directly: the rotating daisy chain grants the requesting
            // input closest past the priority pointer, i.e. the one with
            // the smallest rank `(i - start) mod ports`. Equivalent to
            // scanning `(start + k) % ports` per output, without the
            // O(ports²) inner loop. Encoded as `(rank << 8) | input`, so
            // the numeric minimum is the winner.
            grant.fill(NO_GRANT);
            for i in 0..ports {
                let Some(f) = self.inputs.front(base + i) else {
                    continue;
                };
                if f.entered >= now {
                    continue;
                }
                let out = if usize::from(f.pkt.dst) == node {
                    self.eject_port(f.pkt)
                } else {
                    match self.route_lut[node * self.nodes + usize::from(f.pkt.dst)] {
                        NO_LINK => continue,
                        o => usize::from(o),
                    }
                };
                let start = usize::from(self.priority[base + out]);
                let rank = wrap(i + ports - start, ports);
                let encoded = ((rank as u16) << 8) | i as u16;
                if encoded < grant[out] {
                    grant[out] = encoded;
                }
            }
            for (out, &g) in grant.iter().enumerate() {
                if self.outputs.is_full(base + out) {
                    continue;
                }
                if g != NO_GRANT {
                    let i = usize::from(g as u8);
                    let mut f = self
                        .inputs
                        .pop_front(base + i)
                        .expect("granted input had a head");
                    f.entered = now;
                    self.outputs.push_back(base + out, f);
                    self.priority[base + out] = wrap(i + 1, ports) as u8;
                } else {
                    // Priorities rotate every cycle even without a grant.
                    let start = usize::from(self.priority[base + out]);
                    self.priority[base + out] = wrap(start + 1, ports) as u8;
                }
            }
        }
        self.grant = grant;

        // Phase 2: link traversal between routers. The mask snapshot is
        // again exact: a flit arriving this phase lands in a neighbour's
        // *input* queue and cannot move again, and a router that was empty
        // has nothing in its output queues to send.
        let mesh = self.topo.mesh_ports();
        let mut pending = self.busy;
        while pending != 0 {
            let node = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let base = node * ports;
            for port in 0..mesh {
                let movable = self
                    .outputs
                    .front(base + port)
                    .is_some_and(|f| f.entered < now);
                if !movable {
                    continue;
                }
                let (neighbor, rport) = self.links[node * mesh + port];
                if neighbor == NO_LINK {
                    continue;
                }
                let rport = usize::from(rport);
                if self.inputs.is_full(usize::from(neighbor) * ports + rport) {
                    continue; // no credit
                }
                // Link-fault hook: faults strike only traversals that were
                // about to happen, so the clean schedule of link events is
                // identical with the lens detached — and identical between
                // skip and naive loops, which both tick every busy cycle.
                let (mut target, mut tport) = (neighbor, rport);
                if let Some(lens) = &mut self.faults {
                    let link = (node * ports + port) as u64;
                    match lens.link_event(now, link) {
                        LinkFault::None => {}
                        LinkFault::Corrupt => {
                            // Parity at the receiver rejects the flit; the
                            // sender's copy retries next cycle.
                            continue;
                        }
                        LinkFault::Drop => {
                            // Lost on the wire. The ack timeout holds the
                            // sender's copy for DROP_TIMEOUT cycles, then
                            // retransmits; the flit stays buffered, so the
                            // busy mask keeps the fabric unskippable.
                            let f = self
                                .outputs
                                .front_mut(base + port)
                                .expect("checked movable");
                            f.entered = now + NocFaults::DROP_TIMEOUT - 1;
                            continue;
                        }
                        LinkFault::Misroute => {
                            // Deliver out a wrong mesh port with capacity;
                            // per-hop routing recovers from the detour. With
                            // no usable wrong turn the flit proceeds
                            // correctly (the misroute is still counted as
                            // the lens saw the event fire).
                            let mesh = self.topo.mesh_ports();
                            for off in 1..mesh {
                                let cand = (port + off) % mesh;
                                let Some(alt) = self.topo.neighbor(node as NodeId, cand) else {
                                    continue;
                                };
                                let rp = self.topo.reverse_port(node as NodeId, cand);
                                if !self.inputs.is_full(usize::from(alt) * ports + rp) {
                                    target = alt;
                                    tport = rp;
                                    break;
                                }
                            }
                        }
                    }
                }
                let mut f = self
                    .outputs
                    .pop_front(base + port)
                    .expect("checked movable");
                f.entered = now;
                f.hops += 1;
                self.inputs
                    .push_back(usize::from(target) * ports + tport, f);
                self.note_loss(node);
                self.note_gain(usize::from(target));
            }
        }
    }

    /// Bulk-applies the only observable effect ticking an *idle* fabric
    /// has: every output arbiter rotates one step per cycle. Lets the
    /// cycle loop fast-forward over quiescent stretches while keeping the
    /// arbitration state (and therefore later grant decisions) bitwise
    /// identical to naive ticking.
    ///
    /// Callers must only skip while [`is_idle`](Self::is_idle) holds —
    /// the fabric reports exactly that through the system's `next_event`.
    pub fn skip_cycles(&mut self, cycles: u64) {
        debug_assert!(self.is_idle(), "fast-forward over a non-idle fabric");
        let ports = self.ports;
        for node in 0..self.nodes {
            // Outstanding lazy rotation from ticked idle cycles, plus the
            // skipped stretch itself.
            let lag = (self.ticks - self.seen[node]) + cycles;
            self.seen[node] = self.ticks;
            let k = (lag % ports as u64) as usize;
            if k == 0 {
                continue;
            }
            for p in &mut self.priority[node * ports..(node + 1) * ports] {
                *p = wrap(usize::from(*p) + k, ports) as u8;
            }
        }
    }

    /// Applies every lazily-pending idle-arbiter rotation so `priority`
    /// holds the effective pointers (tests compare the arrays directly;
    /// the hot paths never need this — phase 1 folds lag per router).
    #[cfg(test)]
    fn sync_arbiters(&mut self) {
        self.skip_cycles(0);
    }
}

impl StatSource for Network {
    fn report(&self, stats: &mut ScopedStats<'_>) {
        stats.counter("injected", self.stats.injected);
        stats.counter("delivered", self.stats.delivered);
        stats.counter("lateral", self.stats.lateral);
        stats.counter("total_hops", self.stats.total_hops);
        stats.counter("total_latency", self.stats.total_latency);
        stats.counter("inject_stalls", self.stats.inject_stalls);
        stats.gauge("occupancy", self.occupancy() as f64);
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NoC ({} in flight)",
            self.topo,
            self.stats.in_flight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::router::BUFFER_DEPTH;

    #[test]
    fn oversized_mesh_is_a_typed_error() {
        // 12×12 = 144 routers: past the u128 occupancy mask.
        let err = Network::try_new(Topology::Mesh {
            width: 12,
            height: 12,
        })
        .expect_err("144 nodes must not construct");
        assert_eq!(
            err,
            NocError::MeshTooLarge {
                nodes: 144,
                max: 128
            }
        );
        assert!(err.to_string().contains("144 routers"));
    }

    #[test]
    fn oversized_port_count_is_a_typed_error() {
        // 255 fully connected routers need 256 ports per router: past the
        // u8 arbiter pointers (checked before the node count so each
        // limit has its own reachable error).
        let err = Network::try_new(Topology::FullyConnected { nodes: 255 })
            .expect_err("256 ports must not construct");
        assert_eq!(
            err,
            NocError::TooManyPorts {
                ports: 256,
                max: 255
            }
        );
        assert!(err.to_string().contains("256 ports"));
    }

    #[test]
    fn in_range_topologies_still_construct() {
        assert!(Network::try_new(Topology::mesh4x4()).is_ok());
        assert!(Network::try_new(Topology::FullyConnected { nodes: 128 }).is_ok());
    }

    #[test]
    #[should_panic(expected = "occupancy mask")]
    fn panicking_constructor_keeps_its_teeth() {
        let _ = Network::new(Topology::Mesh {
            width: 13,
            height: 10,
        });
    }

    fn pkt(src: NodeId, dst: NodeId, kind: PacketKind, data: u16) -> Packet {
        Packet {
            dst,
            src,
            mac_id: 0,
            op_id: 0,
            kind,
            data,
        }
    }

    /// Runs the fabric until `n` packets arrive at `dst`'s PE port.
    fn drain(net: &mut Network, dst: NodeId, n: usize, deadline: u64) -> Vec<(Packet, u64)> {
        let mut got = Vec::new();
        let mut now = 1;
        while got.len() < n {
            net.tick(now);
            if let Some(p) = net.pop_for_pe(dst, now) {
                got.push((p, now)); // one per cycle
            }
            now += 1;
            assert!(now < deadline, "NoC did not deliver in time");
        }
        got
    }

    #[test]
    fn local_delivery_takes_two_stages() {
        let mut net = Network::new(Topology::mesh4x4());
        assert!(net.try_inject_from_mem(3, pkt(3, 3, PacketKind::State, 9), 0));
        let got = drain(&mut net, 3, 1, 100);
        assert_eq!(got[0].0.data, 9);
        // inject at 0, switch at 1, eject visible at 2.
        assert_eq!(got[0].1, 2);
        assert_eq!(net.stats().lateral, 0);
        assert_eq!(net.stats().total_hops, 0);
    }

    #[test]
    fn cross_mesh_delivery_latency_grows_with_hops() {
        let mut net = Network::new(Topology::mesh4x4());
        assert!(net.try_inject_from_mem(0, pkt(0, 15, PacketKind::State, 1), 0));
        let got = drain(&mut net, 15, 1, 100);
        // 6 hops * 2 stages + 2 ejection stages = 14.
        assert_eq!(got[0].1, 14);
        assert_eq!(net.stats().total_hops, 6);
        assert_eq!(net.stats().lateral, 1);
    }

    #[test]
    fn fully_connected_is_distance_independent() {
        let mut net = Network::new(Topology::FullyConnected { nodes: 16 });
        assert!(net.try_inject_from_mem(0, pkt(0, 15, PacketKind::State, 1), 0));
        let got = drain(&mut net, 15, 1, 100);
        assert_eq!(got[0].1, 4); // 1 hop * 2 + 2
        assert_eq!(net.stats().total_hops, 1);
    }

    #[test]
    fn results_eject_at_memory_port() {
        let mut net = Network::new(Topology::mesh4x4());
        assert!(net.try_inject_from_pe(5, pkt(5, 4, PacketKind::Result, 7), 0));
        let mut now = 1;
        loop {
            net.tick(now);
            assert!(net.pop_for_pe(4, now).is_none(), "result leaked to PE port");
            if let Some(p) = net.pop_for_mem(4, now) {
                assert_eq!(p.data, 7);
                break;
            }
            now += 1;
            assert!(now < 100);
        }
    }

    #[test]
    fn fifo_order_preserved_per_flow() {
        let mut net = Network::new(Topology::mesh4x4());
        for i in 0..10u16 {
            assert!(net.try_inject_from_mem(0, pkt(0, 3, PacketKind::State, i), 0));
        }
        let got = drain(&mut net, 3, 10, 200);
        let data: Vec<u16> = got.iter().map(|(p, _)| p.data).collect();
        assert_eq!(data, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn throughput_is_one_packet_per_cycle_steady_state() {
        let mut net = Network::new(Topology::mesh4x4());
        // Saturate a single flow 0 -> 1 and measure the delivery rate.
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut last = 0;
        for now in 0..400u64 {
            if injected < 200 && net.try_inject_from_mem(0, pkt(0, 1, PacketKind::State, 0), now) {
                injected += 1;
            }
            net.tick(now);
            if net.pop_for_pe(1, now).is_some() {
                delivered += 1;
                last = now;
            }
        }
        assert_eq!(delivered, 200);
        // 200 packets in ~206 cycles: full rate after pipeline fill.
        assert!(last < 210, "last delivery at {last}");
    }

    #[test]
    fn injection_backpressure_reports_stall() {
        let mut net = Network::new(Topology::mesh4x4());
        // Fill the mem input buffer without ever ticking.
        for _ in 0..BUFFER_DEPTH {
            assert!(net.try_inject_from_mem(0, pkt(0, 1, PacketKind::State, 0), 0));
        }
        assert!(!net.try_inject_from_mem(0, pkt(0, 1, PacketKind::State, 0), 0));
        assert_eq!(net.stats().inject_stalls, 1);
    }

    #[test]
    fn no_packets_lost_under_random_all_to_all() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let mut net = Network::new(Topology::mesh4x4());
        let mut to_send = 2000u32;
        let mut received = 0u32;
        let mut now = 0u64;
        while received < 2000 {
            if to_send > 0 {
                let src: u8 = rng.random_range(0..16);
                let dst: u8 = rng.random_range(0..16);
                if net.try_inject_from_mem(src, pkt(src, dst, PacketKind::State, 0), now) {
                    to_send -= 1;
                }
            }
            net.tick(now);
            for node in 0..16u8 {
                if net.pop_for_pe(node, now).is_some() {
                    received += 1;
                }
            }
            now += 1;
            assert!(now < 100_000, "lost packets: {} received", received);
        }
        assert!(net.is_idle());
        assert_eq!(net.stats().in_flight(), 0);
    }

    #[test]
    fn occupancy_mask_tracks_actual_buffers_under_random_traffic() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        let mut net = Network::new(Topology::mesh4x4());
        let mut received = 0u32;
        for now in 0..3000u64 {
            if now < 1500 {
                let src: u8 = rng.random_range(0..16);
                let dst: u8 = rng.random_range(0..16);
                let _ = net.try_inject_from_mem(src, pkt(src, dst, PacketKind::State, 0), now);
            }
            net.tick(now);
            for node in 0..16u8 {
                received += u32::from(net.pop_for_pe(node, now).is_some());
            }
            // The derived mask/counters must agree with the real queues.
            let actual: usize = (0..net.nodes).map(|n| net.recount(n)).sum();
            assert_eq!(net.occupancy(), actual);
            assert_eq!(net.is_idle(), actual == 0);
            for node in 0..net.nodes {
                assert_eq!(
                    net.busy & (1 << node) != 0,
                    net.recount(node) > 0,
                    "router {node}"
                );
            }
        }
        assert!(net.is_idle());
        assert!(received > 0);
    }

    #[test]
    fn skip_cycles_matches_ticking_an_idle_fabric() {
        for topo in [Topology::mesh4x4(), Topology::FullyConnected { nodes: 16 }] {
            // Perturb the arbiters first so rotation starts off-phase.
            let mut seed = Network::new(topo);
            assert!(seed.try_inject_from_mem(2, pkt(2, 9, PacketKind::State, 1), 0));
            let mut now = 1;
            while !seed.is_idle() {
                seed.tick(now);
                let _ = seed.pop_for_pe(9, now);
                now += 1;
                assert!(now < 100);
            }
            for gap in [1u64, 5, 63, 64, 128, 1000] {
                let mut ticked = seed.clone();
                for c in 0..gap {
                    ticked.tick(now + c);
                }
                let mut skipped = seed.clone();
                skipped.skip_cycles(gap);
                // Rotation is lazy on the ticked side: materialize both
                // before comparing the raw pointer arrays.
                ticked.sync_arbiters();
                skipped.sync_arbiters();
                assert_eq!(ticked.priority, skipped.priority, "gap {gap}");
                // The two fabrics must stay bitwise interchangeable: same
                // delivery schedule for the next packet, injected at the
                // (common) post-gap cycle.
                let t0 = now + gap;
                assert!(ticked.try_inject_from_mem(0, pkt(0, 9, PacketKind::State, 3), t0));
                assert!(skipped.try_inject_from_mem(0, pkt(0, 9, PacketKind::State, 3), t0));
                for c in 1..100 {
                    ticked.tick(t0 + c);
                    skipped.tick(t0 + c);
                    let a = ticked.pop_for_pe(9, t0 + c);
                    let b = skipped.pop_for_pe(9, t0 + c);
                    assert_eq!(a, b);
                    if a.is_some() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn unroutable_packet_is_a_counted_drop_in_lenient_mode() {
        let mut net = Network::new(Topology::mesh4x4());
        net.set_lenient(true);
        // Consumed (true), not backpressured: a `false` would make the
        // producer spin on an undeliverable packet forever.
        assert!(net.try_inject_from_mem(0, pkt(0, 200, PacketKind::State, 1), 5));
        assert!(net.try_inject_from_pe(3, pkt(3, 99, PacketKind::Result, 2), 6));
        assert_eq!(net.fault_counts().unroutable, 2);
        // Nothing entered the fabric.
        assert!(net.is_idle());
        assert_eq!(net.stats().injected, 0);
    }

    /// Injects `n` random packets under the given fault config and runs to
    /// completion, returning the fabric for inspection.
    fn run_faulty(seed: u64, n: u32) -> Network {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let cfg = neurocube_fault::FaultConfig {
            seed,
            noc_corrupt_rate: 0.02,
            noc_drop_rate: 0.02,
            noc_misroute_rate: 0.02,
            ..Default::default()
        };
        let mut net = Network::new(Topology::mesh4x4());
        net.set_faults(Some(&cfg));
        let mut rng = SmallRng::seed_from_u64(7);
        let mut to_send = n;
        let mut received = 0;
        let mut now = 0u64;
        while received < n {
            if to_send > 0 {
                let src: u8 = rng.random_range(0..16);
                let dst: u8 = rng.random_range(0..16);
                if net.try_inject_from_mem(src, pkt(src, dst, PacketKind::State, 0), now) {
                    to_send -= 1;
                }
            }
            net.tick(now);
            for node in 0..16u8 {
                if net.pop_for_pe(node, now).is_some() {
                    received += 1;
                }
            }
            now += 1;
            assert!(now < 200_000, "lost packets under faults: {received}/{n}");
        }
        net
    }

    #[test]
    fn link_faults_delay_but_never_lose_packets() {
        let net = run_faulty(0xDEAD, 1000);
        assert!(net.is_idle());
        assert_eq!(net.stats().in_flight(), 0);
        let c = net.fault_counts();
        // ~3 hops/packet × 1000 packets × 2% per class: every fault class
        // must have fired many times.
        assert!(c.corrupt > 0, "no corruption events: {c:?}");
        assert!(c.drops > 0, "no drop events: {c:?}");
        assert!(c.misroutes > 0, "no misroute events: {c:?}");
        assert_eq!(c.retransmits, c.corrupt + c.drops);
        assert_eq!(c.unroutable, 0);
        // Detours cost extra hops relative to minimal routing.
        assert!(net.stats().delivered == 1000);
    }

    #[test]
    fn link_faults_are_seed_deterministic() {
        let a = run_faulty(0xFEED, 400);
        let b = run_faulty(0xFEED, 400);
        assert_eq!(a.fault_counts(), b.fault_counts());
        assert_eq!(a.stats().total_hops, b.stats().total_hops);
        assert_eq!(a.stats().total_latency, b.stats().total_latency);
        let c = run_faulty(0xBEEF, 400);
        assert_ne!(
            (a.fault_counts(), a.stats().total_latency),
            (c.fault_counts(), c.stats().total_latency),
            "different fault seeds produced identical runs"
        );
    }

    #[test]
    fn zero_rate_lens_leaves_the_fabric_bitwise_unchanged() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let cfg = neurocube_fault::FaultConfig::uniform(0x11, 0.0);
        let mut plain = Network::new(Topology::mesh4x4());
        let mut lensed = Network::new(Topology::mesh4x4());
        lensed.set_faults(Some(&cfg));
        let mut rng = SmallRng::seed_from_u64(3);
        for now in 0..2000u64 {
            if now < 1000 {
                let src: u8 = rng.random_range(0..16);
                let dst: u8 = rng.random_range(0..16);
                let p = pkt(src, dst, PacketKind::State, now as u16);
                assert_eq!(
                    plain.try_inject_from_mem(src, p, now),
                    lensed.try_inject_from_mem(src, p, now)
                );
            }
            plain.tick(now);
            lensed.tick(now);
            for node in 0..16u8 {
                assert_eq!(plain.pop_for_pe(node, now), lensed.pop_for_pe(node, now));
            }
        }
        assert!(plain.is_idle() && lensed.is_idle());
        assert_eq!(plain.stats().total_latency, lensed.stats().total_latency);
        assert_eq!(
            lensed.fault_counts(),
            neurocube_fault::NocFaultCounts::default()
        );
    }

    #[test]
    fn arbitration_is_fair_between_competing_inputs() {
        // Two flows (from node 1 going west, from node 4 going north... both
        // toward node 0) compete for node 0's PE port.
        let mut net = Network::new(Topology::mesh4x4());
        let mut from1 = 0u32;
        let mut from4 = 0u32;
        for now in 0..600u64 {
            let _ = net.try_inject_from_mem(1, pkt(1, 0, PacketKind::State, 0), now);
            let _ = net.try_inject_from_mem(4, pkt(4, 0, PacketKind::State, 0), now);
            net.tick(now);
            if let Some(p) = net.pop_for_pe(0, now) {
                if p.src == 1 {
                    from1 += 1;
                } else {
                    from4 += 1;
                }
            }
        }
        let total = from1 + from4;
        assert!(total > 400, "PE port underutilized: {total}");
        let imbalance = (i64::from(from1) - i64::from(from4)).unsigned_abs();
        assert!(
            imbalance <= total as u64 / 10,
            "unfair arbitration: {from1} vs {from4}"
        );
    }
}
