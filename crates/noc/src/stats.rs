//! Fabric-level traffic statistics.
//!
//! The paper quantifies NoC pressure as the *lateral traffic* fraction —
//! packets that cross at least one mesh link because their source vault and
//! destination PE sit at different nodes (e.g. "lateral traffic on the NoC
//! is high (71%)" for the undivided fully-connected layer, §VI-A).

/// Counters accumulated by a [`Network`](crate::Network) over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets accepted into the fabric.
    pub injected: u64,
    /// Packets handed to a PE or memory port.
    pub delivered: u64,
    /// Delivered packets whose source node differed from their destination.
    pub lateral: u64,
    /// Sum of per-packet link traversals (for mean hop count).
    pub total_hops: u64,
    /// Sum of per-packet in-fabric latencies in cycles.
    pub total_latency: u64,
    /// Injection attempts rejected because the entry buffer was full.
    pub inject_stalls: u64,
}

impl NocStats {
    /// Fraction of delivered packets that crossed at least one link.
    pub fn lateral_fraction(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.lateral as f64 / self.delivered as f64
        }
    }

    /// Mean link traversals per delivered packet.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Mean injection-to-ejection latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Packets still somewhere in the fabric.
    pub fn in_flight(&self) -> u64 {
        self.injected - self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_traffic() {
        let s = NocStats::default();
        assert_eq!(s.lateral_fraction(), 0.0);
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn ratios_compute() {
        let s = NocStats {
            injected: 10,
            delivered: 8,
            lateral: 4,
            total_hops: 16,
            total_latency: 40,
            inject_stalls: 1,
        };
        assert_eq!(s.lateral_fraction(), 0.5);
        assert_eq!(s.mean_hops(), 2.0);
        assert_eq!(s.mean_latency(), 5.0);
        assert_eq!(s.in_flight(), 2);
    }
}
