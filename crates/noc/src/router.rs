//! Flattened router state: all port queues of all routers live in one
//! struct-of-arrays ring-buffer pool, indexed by `(router, port)`.
//!
//! The fabric used to hold a `Vec<VecDeque<Flit>>` pair per router; on the
//! saturated fig. 14 shapes the per-cycle switch-allocation and link
//! phases walk every busy queue, so the queue headers now sit in three
//! dense arrays (`head`, `len`, and a fixed-stride slot pool). One queue's
//! storage is a [`BUFFER_DEPTH`]-slot ring at a fixed offset, so "the
//! queue of router `r`, port `p`" is pure index arithmetic — no pointer
//! chasing, and the headers of all ports of a router share cache lines.

use crate::packet::{Packet, PacketKind};

/// Packet-buffer depth of every input and output channel (§III-C: "a
/// 16-depth packet buffer for each input and output channel").
pub const BUFFER_DEPTH: usize = 16;

/// Ring-index mask; the depth is a power of two by construction.
const RING_MASK: usize = BUFFER_DEPTH - 1;

/// A packet in flight, with the bookkeeping the fabric needs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Flit {
    pub pkt: Packet,
    /// Cycle at which the flit entered its current buffer; it may not move
    /// again until a strictly later cycle (one pipeline stage per cycle).
    pub entered: u64,
    /// Cycle at which the flit was injected into the fabric (for latency).
    pub injected: u64,
    /// Links traversed so far.
    pub hops: u32,
}

/// Filler for never-written ring slots.
const EMPTY_FLIT: Flit = Flit {
    pkt: Packet {
        dst: 0,
        src: 0,
        mac_id: 0,
        op_id: 0,
        kind: PacketKind::State,
        data: 0,
    },
    entered: 0,
    injected: 0,
    hops: 0,
};

/// A pool of fixed-depth FIFO queues in struct-of-arrays layout: queue `q`
/// owns the ring `slots[q * BUFFER_DEPTH ..][..BUFFER_DEPTH]` described by
/// `head[q]` / `len[q]`. The fabric keeps two pools (inputs and outputs),
/// each indexed by `router * ports + port`.
#[derive(Clone, Debug)]
pub(crate) struct FlatQueues {
    slots: Vec<Flit>,
    head: Vec<u8>,
    len: Vec<u8>,
}

impl FlatQueues {
    pub fn new(queues: usize) -> FlatQueues {
        FlatQueues {
            slots: vec![EMPTY_FLIT; queues * BUFFER_DEPTH],
            head: vec![0; queues],
            len: vec![0; queues],
        }
    }

    #[inline]
    pub fn len(&self, q: usize) -> usize {
        usize::from(self.len[q])
    }

    #[inline]
    pub fn is_full(&self, q: usize) -> bool {
        self.len(q) >= BUFFER_DEPTH
    }

    #[inline]
    pub fn front(&self, q: usize) -> Option<&Flit> {
        if self.len[q] == 0 {
            None
        } else {
            Some(&self.slots[q * BUFFER_DEPTH + usize::from(self.head[q])])
        }
    }

    #[inline]
    pub fn front_mut(&mut self, q: usize) -> Option<&mut Flit> {
        if self.len[q] == 0 {
            None
        } else {
            Some(&mut self.slots[q * BUFFER_DEPTH + usize::from(self.head[q])])
        }
    }

    /// Appends at the tail. Callers check [`is_full`](Self::is_full) first
    /// (that refusal *is* the credit-based flow control).
    #[inline]
    pub fn push_back(&mut self, q: usize, f: Flit) {
        let n = usize::from(self.len[q]);
        debug_assert!(n < BUFFER_DEPTH, "push into a full ring");
        let tail = (usize::from(self.head[q]) + n) & RING_MASK;
        self.slots[q * BUFFER_DEPTH + tail] = f;
        self.len[q] = (n + 1) as u8;
    }

    #[inline]
    pub fn pop_front(&mut self, q: usize) -> Option<Flit> {
        if self.len[q] == 0 {
            return None;
        }
        let h = usize::from(self.head[q]);
        let f = self.slots[q * BUFFER_DEPTH + h];
        self.head[q] = ((h + 1) & RING_MASK) as u8;
        self.len[q] -= 1;
        Some(f)
    }

    /// Total buffered flits across a contiguous queue range (diagnostics
    /// and consistency asserts).
    pub fn occupancy_range(&self, range: std::ops::Range<usize>) -> usize {
        self.len[range].iter().map(|&n| usize::from(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(data: u16) -> Flit {
        Flit {
            pkt: Packet {
                data,
                ..EMPTY_FLIT.pkt
            },
            ..EMPTY_FLIT
        }
    }

    #[test]
    fn rings_are_fifo_and_independent() {
        let mut q = FlatQueues::new(3);
        for i in 0..5u16 {
            q.push_back(1, flit(i));
        }
        q.push_back(2, flit(99));
        assert_eq!(q.len(0), 0);
        assert_eq!(q.len(1), 5);
        assert_eq!(q.front(1).unwrap().pkt.data, 0);
        for i in 0..5u16 {
            assert_eq!(q.pop_front(1).unwrap().pkt.data, i);
        }
        assert!(q.pop_front(1).is_none());
        assert_eq!(q.pop_front(2).unwrap().pkt.data, 99);
    }

    #[test]
    fn ring_wraps_at_depth() {
        let mut q = FlatQueues::new(1);
        // Drive head all the way around the ring several times.
        for round in 0..5u16 {
            for i in 0..BUFFER_DEPTH as u16 {
                q.push_back(0, flit(round * 100 + i));
            }
            assert!(q.is_full(0));
            for i in 0..BUFFER_DEPTH as u16 {
                assert_eq!(q.pop_front(0).unwrap().pkt.data, round * 100 + i);
            }
        }
        assert_eq!(q.occupancy_range(0..1), 0);
    }
}
