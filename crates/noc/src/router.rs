//! Router state: buffered input/output channels and the rotating arbiter.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Packet-buffer depth of every input and output channel (§III-C: "a
/// 16-depth packet buffer for each input and output channel").
pub const BUFFER_DEPTH: usize = 16;

/// A packet in flight, with the bookkeeping the fabric needs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Flit {
    pub pkt: Packet,
    /// Cycle at which the flit entered its current buffer; it may not move
    /// again until a strictly later cycle (one pipeline stage per cycle).
    pub entered: u64,
    /// Cycle at which the flit was injected into the fabric (for latency).
    pub injected: u64,
    /// Links traversed so far.
    pub hops: u32,
}

/// One router: `ports` input queues, `ports` output queues, and one
/// rotating daisy-chain priority pointer per output (§III-C: "Input buffers
/// use a rotating daisy chain priority scheme ... priorities are updated
/// every clock cycle").
#[derive(Clone, Debug)]
pub(crate) struct Router {
    pub inputs: Vec<VecDeque<Flit>>,
    pub outputs: Vec<VecDeque<Flit>>,
    pub priority: Vec<usize>,
}

impl Router {
    pub fn new(ports: usize) -> Router {
        Router {
            inputs: (0..ports)
                .map(|_| VecDeque::with_capacity(BUFFER_DEPTH))
                .collect(),
            outputs: (0..ports)
                .map(|_| VecDeque::with_capacity(BUFFER_DEPTH))
                .collect(),
            priority: vec![0; ports],
        }
    }

    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(VecDeque::is_empty) && self.outputs.iter().all(VecDeque::is_empty)
    }

    /// Buffered flit count across all queues.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum::<usize>()
            + self.outputs.iter().map(VecDeque::len).sum::<usize>()
    }
}
