//! The Neurocube NoC packet (Fig. 11).

use std::fmt;

/// Index of a node (router + its PE + its vault) in the fabric.
pub type NodeId = u8;

/// What a packet's 16-bit payload means to the receiving PE or PNG.
///
/// The paper's 36-bit packet format does not spell out how a PE tells a
/// weight from a state operand; the minimal resolution is a 2-bit tag,
/// documented as a deviation in `DESIGN.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A neuron state destined for one specific MAC (conv dataflow: the 16
    /// MACs compute 16 adjacent pixels, each needing its own input).
    State,
    /// A neuron state shared by *all* MACs of the destination PE (fully
    /// connected dataflow: the 16 MACs compute 16 output neurons that all
    /// consume the same input `x_k`, Fig. 11(c) "16 weights and input").
    SharedState,
    /// A synaptic weight destined for one specific MAC.
    Weight,
    /// A computed output state travelling from a PE back to its home vault
    /// for the PNG to pass through the activation LUT and write to DRAM.
    Result,
}

impl PacketKind {
    const fn to_bits(self) -> u64 {
        match self {
            PacketKind::State => 0,
            PacketKind::SharedState => 1,
            PacketKind::Weight => 2,
            PacketKind::Result => 3,
        }
    }

    const fn from_bits(v: u64) -> PacketKind {
        match v & 0b11 {
            0 => PacketKind::State,
            1 => PacketKind::SharedState,
            2 => PacketKind::Weight,
            _ => PacketKind::Result,
        }
    }
}

/// A single-flit NoC packet.
///
/// Field widths follow §V-B: 4-bit `SRC` (16 vaults), 4-bit `DST` (16 PEs),
/// 4-bit `MAC-ID`, 8-bit `OP-ID` ("if maximum iteration for one pixel is
/// more than 256, OP-ID represents the remainder of OP-ID divided by 256"),
/// 16-bit data. Our encoding widens `SRC`/`DST` to 6 bits so meshes larger
/// than 4×4 can be swept, and appends the 2-bit [`PacketKind`]; everything
/// packs into [`Packet::encode`]'s u64 and round-trips exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Destination node.
    pub dst: NodeId,
    /// Source node.
    pub src: NodeId,
    /// Target MAC within the destination PE (ignored for
    /// [`PacketKind::SharedState`]).
    pub mac_id: u8,
    /// Operation sequence number modulo 256.
    pub op_id: u8,
    /// Payload interpretation.
    pub kind: PacketKind,
    /// The 16-bit payload (a `Q1.7.8` bit pattern).
    pub data: u16,
}

impl Packet {
    /// Packs the packet into its wire representation.
    pub const fn encode(self) -> u64 {
        (self.dst as u64)
            | ((self.src as u64) << 6)
            | ((self.mac_id as u64) << 12)
            | ((self.op_id as u64) << 16)
            | (self.kind.to_bits() << 24)
            | ((self.data as u64) << 26)
    }

    /// Unpacks a wire representation produced by [`encode`](Self::encode).
    pub const fn decode(bits: u64) -> Packet {
        Packet {
            dst: (bits & 0x3F) as u8,
            src: ((bits >> 6) & 0x3F) as u8,
            mac_id: ((bits >> 12) & 0xF) as u8,
            op_id: ((bits >> 16) & 0xFF) as u8,
            kind: PacketKind::from_bits(bits >> 24),
            data: ((bits >> 26) & 0xFFFF) as u16,
        }
    }

    /// `true` when the destination node differs from the source node, i.e.
    /// the packet must traverse at least one mesh link ("lateral traffic" in
    /// the paper's Figs. 14–15).
    pub const fn is_lateral(self) -> bool {
        self.dst != self.src
    }

    /// `true` for packets that terminate at a vault/PNG (memory port) rather
    /// than a PE.
    pub const fn is_for_memory(self) -> bool {
        matches!(self.kind, PacketKind::Result)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}[{}->{} mac{} op{} data={:#06x}]",
            self.kind, self.src, self.dst, self.mac_id, self.op_id, self.data
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            dst: 13,
            src: 5,
            mac_id: 15,
            op_id: 201,
            kind: PacketKind::Weight,
            data: 0xBEEF,
        }
    }

    #[test]
    fn encode_roundtrip() {
        let p = sample();
        assert_eq!(Packet::decode(p.encode()), p);
    }

    #[test]
    fn encode_roundtrip_all_kinds() {
        for kind in [
            PacketKind::State,
            PacketKind::SharedState,
            PacketKind::Weight,
            PacketKind::Result,
        ] {
            let p = Packet { kind, ..sample() };
            assert_eq!(Packet::decode(p.encode()), p);
        }
    }

    #[test]
    fn encoding_fits_42_bits() {
        // 6+6+4+8+2+16 = 42 bits; the paper's 4-bit src/dst variant is 36.
        assert!(sample().encode() < (1u64 << 42));
    }

    #[test]
    fn laterality() {
        assert!(sample().is_lateral());
        let local = Packet {
            dst: 5,
            src: 5,
            ..sample()
        };
        assert!(!local.is_lateral());
    }

    #[test]
    fn memory_direction() {
        assert!(!sample().is_for_memory());
        let result = Packet {
            kind: PacketKind::Result,
            ..sample()
        };
        assert!(result.is_for_memory());
    }

    #[test]
    fn display_mentions_route() {
        let s = sample().to_string();
        assert!(s.contains("5->13"));
        assert!(s.contains("op201"));
    }
}
