//! Cycle-level network-on-chip models for the Neurocube simulator.
//!
//! The paper's logic die connects 16 PEs and 16 vault controllers with a
//! 4×4 2D-mesh NoC (§III-C): wormhole-switched routers with credit-based
//! flow control, 16-deep packet buffers per channel, deterministic X-Y
//! routing and a rotating daisy-chain priority arbiter updated every cycle.
//! Each router has six ports: four mesh neighbours, one PE and one memory
//! (vault/PNG) port. §VI-C additionally evaluates a *fully connected* NoC in
//! which every router links directly to every other router.
//!
//! This crate provides:
//!
//! * [`Packet`] — the 36-bit NoC packet of Fig. 11 (`DST`, `SRC`, `MAC-ID`,
//!   `OP-ID`, 16-bit data) plus a 2-bit kind tag (see `DESIGN.md` for why
//!   the tag is needed),
//! * [`Topology`] — mesh or fully-connected wiring,
//! * [`Network`] — the cycle-driven fabric with injection/ejection ports for
//!   the PNGs (memory side) and PEs (compute side),
//! * [`NocStats`] — delivered/lateral packet counts and latency accounting
//!   used for the paper's lateral-traffic percentages (Fig. 14/15).
//!
//! Packets are single-flit: the link datapath is 36 bits wide (Table II), so
//! a packet *is* a flit and wormhole switching degenerates to virtual
//! cut-through with per-queue backpressure, which we model with explicit
//! buffer occupancy (equivalent to credit counting for single-flit packets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod packet;
mod router;
mod stats;
mod topology;

pub use network::{Network, NocError};
pub use packet::{NodeId, Packet, PacketKind};
pub use router::BUFFER_DEPTH;
pub use stats::NocStats;
pub use topology::Topology;
