//! The Neurocube processing element (PE).
//!
//! One PE per HMC vault (§III-B): `n_MAC` multiply-accumulate units running
//! at `f_PE / n_MAC`, a 512-bit *temporal buffer* holding exactly one
//! operation's operands (16 weights + 16 states), a 2.5 KB SRAM cache split
//! into 16 sub-banks for packets that arrive ahead of the operation counter,
//! and a weight register file for layers whose (small) kernels are
//! duplicated into every PE.
//!
//! The PE is **data driven**: it fires its MAC array when, and only when,
//! the temporal buffer holds a complete operand set for the current
//! operation (Fig. 11). There is no instruction stream — sequencing comes
//! entirely from the OP-IDs stamped on incoming packets by the PNGs.
//!
//! Two dataflows cover all layer types (see `DESIGN.md`):
//!
//! * **Per-MAC states + local weights** (conv/pool): the 16 MACs compute 16
//!   adjacent output pixels; at operation `k` they share kernel weight `k`
//!   (read from the PE weight memory) and each consumes its own input pixel.
//! * **Shared state + streamed weights** (fully connected): the 16 MACs
//!   compute 16 output neurons; at operation `k` they share input state
//!   `x_k` (one broadcast packet, Fig. 11(c) "16 weights and input") and
//!   each consumes its own streamed weight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod unit;

pub use cache::{PacketCache, CACHE_SUB_BANKS, SUB_BANK_ENTRIES};
pub use config::{PeLayerConfig, StateMode, WeightMode};
pub use unit::{PeStats, ProcessingElement};
