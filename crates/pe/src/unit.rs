//! The processing element proper: MAC array + temporal buffer + sequencing.
//!
//! The per-cycle hot state is kept in struct-of-arrays form: the temporal
//! buffer is a pair of packed `i16` lane arrays with fill bitmasks (one bit
//! per MAC) instead of `Vec<Option<Q88>>`, and the MAC accumulators are
//! flat `i32`/`i16` lane banks fed by the branch-free batch kernels in
//! `neurocube_fixed::lanes`. A fire gathers the active lanes into two
//! scratch rows, applies any transient-fault upsets as a sparse pass over
//! the state row (same lens-call order as the scalar loop, so `fault`
//! determinism is untouched), and accumulates all lanes in one pass.
//!
//! The original scalar path — per-lane [`MacUnit`] accumulation — survives
//! behind `NEUROCUBE_NO_SIMD=1` (or [`ProcessingElement::set_simd`]) as
//! the differential oracle; both paths are asserted bitwise identical by
//! the integration equivalence suite.
//!
//! **Sparsity.** Every fire classifies its operand lanes: a lane whose
//! weight or state operand is exactly `0` contributes nothing to its
//! accumulator in either `Q1.7.8` width (`0·x = 0`, and adding `0` is the
//! identity under both wrapping and saturating accumulation), so a
//! gated-update MAC array could clock-gate it. The PE counts those lanes
//! (`lanes_gated`) on every fire, and — on the SoA path with no fault
//! lens attached — skips or mask-iterates them on the host, which is
//! bitwise invisible by construction. `NEUROCUBE_NO_SPARSITY=1` (or
//! [`ProcessingElement::set_sparsity`]) disables the host fast paths
//! while leaving the classification counters on.

use crate::cache::PacketCache;
use crate::config::{PeLayerConfig, StateMode, WeightMode};
use neurocube_fault::{FaultConfig, PeFaultCounts, PeFaults};
use neurocube_fixed::{
    accumulate_narrow_broadcast_state, accumulate_narrow_broadcast_weight, accumulate_narrow_lanes,
    accumulate_narrow_masked, accumulate_wide_broadcast_state, accumulate_wide_broadcast_weight,
    accumulate_wide_lanes, accumulate_wide_masked, wide_result_bits, AccumulatorWidth, LaneSrc,
    MacUnit, Q88,
};
use neurocube_noc::{NodeId, Packet, PacketKind};
use neurocube_sim::{simd_default, sparsity_default, ScopedStats, StatSource};
use std::collections::VecDeque;

/// Lifetime/layer counters exposed by a PE.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeStats {
    /// MAC operations performed (one multiply-accumulate each).
    pub mac_ops: u64,
    /// Temporal-buffer firings (operations completed).
    pub ops_fired: u64,
    /// Neuron groups completed (MAC-array result sets written back).
    pub groups_done: u64,
    /// Cycles the MAC array sat ready but starved of operands.
    pub starved_cycles: u64,
    /// Result packets emitted.
    pub results_emitted: u64,
    /// Packets that had to be parked in the SRAM cache.
    pub cached_packets: u64,
    /// MAC lane-cycles whose weight or state operand was exactly zero —
    /// the lanes a gated-update MAC array would have clock-gated. Always
    /// counted (independent of the host fast paths); a subset of
    /// `mac_ops`, which keeps charging the full architectural op count.
    pub lanes_gated: u64,
}

/// One Neurocube processing element.
///
/// Drive with [`try_accept`](ProcessingElement::try_accept) for every packet
/// the NoC delivers (refusal = backpressure: leave the packet in the router
/// buffer) and [`tick`](ProcessingElement::tick) once per reference cycle;
/// drain write-backs through [`peek_result`](ProcessingElement::peek_result)
/// / [`pop_result`](ProcessingElement::pop_result).
#[derive(Clone, Debug)]
pub struct ProcessingElement {
    node: NodeId,
    accumulator: AccumulatorWidth,
    cache_entries: usize,
    cfg: Option<PeLayerConfig>,
    local_weights: Vec<Q88>,
    cache: PacketCache,
    /// Temporal-buffer lanes: raw `Q1.7.8` bits, one per MAC, with fill
    /// bitmasks (bit `m` set ⟺ lane `m`'s slot holds an operand).
    state_bits: Vec<i16>,
    weight_bits: Vec<i16>,
    state_mask: u64,
    weight_mask: u64,
    /// Zero-operand bitmasks, maintained alongside the fill bitmasks: bit
    /// `m` tracks whether lane `m`'s most recent operand was exactly zero
    /// (meaningful only while the corresponding fill bit is set).
    state_zero_mask: u64,
    weight_zero_mask: u64,
    shared_state: Option<Q88>,
    /// MAC accumulator banks for the batch path (one of the two is live,
    /// by configured [`AccumulatorWidth`]).
    acc_wide: Vec<i32>,
    acc_narrow: Vec<i16>,
    /// Scalar-oracle MAC units; populated only when `simd` is off.
    macs: Vec<MacUnit>,
    /// Gather rows reused by every firing (keeps the fire path
    /// allocation-free).
    w_lanes: Vec<i16>,
    x_lanes: Vec<i16>,
    hits_scratch: Vec<Packet>,
    group: u64,
    op: u32,
    /// Cumulative operation counter (`group * conns + op`, maintained
    /// incrementally): `progress()` and the expected OP-ID (`as u8`) in
    /// one register.
    global_op: u64,
    next_fire_at: u64,
    results: VecDeque<Packet>,
    done: bool,
    simd: bool,
    /// Host fast paths for zero-operand lanes (skip / masked iteration).
    /// Never changes any observable — classification counters stay on
    /// either way.
    sparsity: bool,
    stats: PeStats,
    /// Optional transient-MAC-fault lens. MAC faults strike only fires
    /// that were about to happen, so no event-horizon clamping is needed.
    faults: Option<PeFaults>,
    /// In lenient mode malformed packets become counted drops instead of
    /// panics; fault-free runs keep `debug_assert!` teeth.
    lenient: bool,
    /// Drops counted by the PE itself, visible even without a lens.
    drop_counts: PeFaultCounts,
    /// One-shot flag: the first dropped packet emits a rich diagnostic.
    diagnosed_drop: bool,
}

impl ProcessingElement {
    /// Creates an unconfigured PE at mesh node `node` with the paper's
    /// 64-entry cache sub-banks.
    pub fn new(node: NodeId, accumulator: AccumulatorWidth) -> ProcessingElement {
        ProcessingElement::with_cache(node, accumulator, crate::cache::SUB_BANK_ENTRIES)
    }

    /// Creates an unconfigured PE with explicit cache sub-bank capacity
    /// (the sizing ablation).
    pub fn with_cache(
        node: NodeId,
        accumulator: AccumulatorWidth,
        cache_entries: usize,
    ) -> ProcessingElement {
        ProcessingElement {
            node,
            accumulator,
            cache_entries,
            cfg: None,
            local_weights: Vec::new(),
            cache: PacketCache::with_capacity(cache_entries),
            state_bits: Vec::new(),
            weight_bits: Vec::new(),
            state_mask: 0,
            weight_mask: 0,
            state_zero_mask: 0,
            weight_zero_mask: 0,
            shared_state: None,
            acc_wide: Vec::new(),
            acc_narrow: Vec::new(),
            macs: Vec::new(),
            w_lanes: Vec::new(),
            x_lanes: Vec::new(),
            hits_scratch: Vec::new(),
            group: 0,
            op: 0,
            global_op: 0,
            next_fire_at: 0,
            results: VecDeque::new(),
            done: true,
            simd: simd_default(),
            sparsity: sparsity_default(),
            stats: PeStats::default(),
            faults: None,
            lenient: false,
            drop_counts: PeFaultCounts::default(),
            diagnosed_drop: false,
        }
    }

    /// The mesh node this PE sits at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Selects the MAC arithmetic path: `Some(true)` forces the SoA batch
    /// kernels, `Some(false)` forces the per-lane scalar [`MacUnit`]
    /// oracle, `None` re-resolves the environment default
    /// (`NEUROCUBE_NO_SIMD`, read fresh — never cached). Both paths are
    /// bitwise identical in every observable; the scalar path exists as
    /// the differential oracle.
    ///
    /// # Panics
    ///
    /// Panics if called in the middle of an active layer (the accumulator
    /// banks live in different representations per path).
    pub fn set_simd(&mut self, simd: Option<bool>) {
        assert!(
            self.done,
            "set_simd must not switch arithmetic paths mid-layer"
        );
        self.simd = simd.unwrap_or_else(simd_default);
    }

    /// The arithmetic path currently selected (`true` = SoA batch).
    pub fn simd(&self) -> bool {
        self.simd
    }

    /// Enables/disables the zero-operand host fast paths: `Some(..)`
    /// forces, `None` re-resolves the environment default
    /// (`NEUROCUBE_NO_SPARSITY`, read fresh — never cached). Safe at any
    /// time, including mid-layer: the fast paths are stateless and every
    /// observable (results, counters, timing) is identical either way.
    pub fn set_sparsity(&mut self, sparsity: Option<bool>) {
        self.sparsity = sparsity.unwrap_or_else(sparsity_default);
    }

    /// Whether the zero-operand host fast paths are enabled.
    pub fn sparsity(&self) -> bool {
        self.sparsity
    }

    /// Attaches (or detaches) the transient-MAC-fault lens. Attaching also
    /// switches the PE to lenient packet handling.
    pub fn set_faults(&mut self, cfg: Option<&FaultConfig>) {
        self.faults = cfg.map(|c| PeFaults::new(c, u16::from(self.node)));
        if self.faults.is_some() {
            self.lenient = true;
        }
    }

    /// Switches malformed-packet handling between panicking (strict, the
    /// default) and counted drops (lenient).
    pub fn set_lenient(&mut self, lenient: bool) {
        self.lenient = lenient;
    }

    /// Aggregated fault counters: lens-injected MAC faults plus the PE's
    /// own dropped-packet counts.
    pub fn fault_counts(&self) -> PeFaultCounts {
        let mut c = self.drop_counts;
        if let Some(f) = &self.faults {
            c.merge(&f.counts);
        }
        c
    }

    /// Loads a layer configuration and (for [`WeightMode::Local`]) the
    /// duplicated weight memory image, resetting all sequencing state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent, `weights` is smaller
    /// than the configured weight memory footprint, or `n_mac` exceeds the
    /// 64 lanes the fill bitmasks carry.
    pub fn configure(&mut self, cfg: PeLayerConfig, weights: Vec<Q88>) {
        cfg.validate();
        assert!(cfg.n_mac <= 64, "lane bitmasks carry at most 64 MACs");
        if let WeightMode::Local {
            weights_per_neuron,
            rows,
        } = cfg.weights
        {
            assert!(
                weights.len() >= (weights_per_neuron * rows) as usize,
                "weight memory image too small"
            );
        }
        let n = cfg.n_mac as usize;
        self.local_weights = weights;
        self.cache = PacketCache::with_capacity(self.cache_entries);
        self.state_bits = vec![0; n];
        self.weight_bits = vec![0; n];
        self.state_mask = 0;
        self.weight_mask = 0;
        self.state_zero_mask = 0;
        self.weight_zero_mask = 0;
        self.shared_state = None;
        self.acc_wide = vec![0; n];
        self.acc_narrow = vec![0; n];
        self.macs = if self.simd {
            Vec::new()
        } else {
            (0..n).map(|_| MacUnit::new(self.accumulator)).collect()
        };
        self.w_lanes = vec![0; n];
        self.x_lanes = vec![0; n];
        self.group = 0;
        self.op = 0;
        self.global_op = 0;
        self.next_fire_at = 0;
        self.results.clear();
        self.done = false;
        self.cfg = Some(cfg);
    }

    /// `true` once every configured neuron group has been computed *and*
    /// all result packets have been drained.
    pub fn layer_done(&self) -> bool {
        self.done && self.results.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> &PeStats {
        &self.stats
    }

    /// Peak cache occupancy (SRAM sizing statistic).
    pub fn cache_high_water(&self) -> usize {
        self.cache.high_water()
    }

    /// Deadlock diagnostics: `(group, op, filled-state-slot bitmap,
    /// filled-weight-slot bitmap, shared-state present, cache occupancy)`.
    pub fn debug_position(&self) -> (u64, u32, u32, u32, bool, usize) {
        (
            self.group,
            self.op,
            self.state_mask as u32,
            self.weight_mask as u32,
            self.shared_state.is_some(),
            self.cache.occupancy(),
        )
    }

    /// The PE's cumulative operation counter — the number of operations it
    /// has completed this layer, `u64::MAX` when unconfigured or done (no
    /// flow-control gating applies). This is the credit value the PNGs'
    /// run-ahead window compares against.
    #[inline]
    pub fn progress(&self) -> u64 {
        if self.cfg.is_some() && !self.done {
            self.global_op
        } else {
            u64::MAX
        }
    }

    /// The OP-ID expected by the current operation: the cumulative
    /// operation counter modulo 256, matching the PNG's stamping.
    #[inline]
    fn current_op_id(&self) -> u8 {
        self.global_op as u8
    }

    fn slot_fill(&mut self, pkt: Packet) -> bool {
        let mac = usize::from(pkt.mac_id);
        match pkt.kind {
            PacketKind::State => {
                let bit = 1u64 << mac;
                if self.state_mask & bit == 0 {
                    self.state_bits[mac] = pkt.data as i16;
                    self.state_mask |= bit;
                    if pkt.data == 0 {
                        self.state_zero_mask |= bit;
                    } else {
                        self.state_zero_mask &= !bit;
                    }
                    return true;
                }
            }
            PacketKind::SharedState => {
                if self.shared_state.is_none() {
                    self.shared_state = Some(Q88::from_bits(pkt.data as i16));
                    return true;
                }
            }
            PacketKind::Weight => {
                let bit = 1u64 << mac;
                if self.weight_mask & bit == 0 {
                    self.weight_bits[mac] = pkt.data as i16;
                    self.weight_mask |= bit;
                    if pkt.data == 0 {
                        self.weight_zero_mask |= bit;
                    } else {
                        self.weight_zero_mask &= !bit;
                    }
                    return true;
                }
            }
            // Result packets are intercepted (dropped or asserted on) in
            // `try_accept` and never cached, so none can reach here.
            PacketKind::Result => {
                debug_assert!(false, "Result packet reached slot_fill");
                return false;
            }
        }
        false
    }

    /// Graceful-degradation path for a packet this PE cannot meaningfully
    /// process: count it, emit one rich diagnostic per PE, and report it
    /// consumed (returning `false` would leave it queued in the router
    /// forever, wedging the fabric).
    fn drop_packet(&mut self, pkt: Packet, why: &str) -> bool {
        self.drop_counts.dropped_packets += 1;
        if !self.diagnosed_drop {
            self.diagnosed_drop = true;
            eprintln!(
                "neurocube-pe: PE {} dropping packet at group {} op {}: {why} \
                 ({pkt:?}); counted under fault.pe.dropped_packets, further \
                 drops are silent",
                self.node, self.group, self.op,
            );
        }
        true
    }

    /// Offers a packet delivered by the NoC. Returns `false` when the packet
    /// cannot be accepted this cycle (temporal-buffer slot busy *and* its
    /// cache sub-bank full) — the caller must leave it queued in the router.
    ///
    /// A packet the PE cannot meaningfully process (unconfigured or finished
    /// PE, out-of-range MAC-ID, a misdelivered `Result`) is a counted drop
    /// in lenient mode (see [`set_lenient`](Self::set_lenient)).
    ///
    /// # Panics
    ///
    /// In strict debug builds, panics if the PE is unconfigured, already
    /// done, or the packet names a MAC outside the configured array.
    pub fn try_accept(&mut self, pkt: Packet) -> bool {
        let Some(cfg) = self.cfg else {
            debug_assert!(self.lenient, "PE {} not configured", self.node);
            return self.drop_packet(pkt, "PE not configured");
        };
        if self.done {
            debug_assert!(self.lenient, "packet for a finished layer");
            return self.drop_packet(pkt, "layer already finished");
        }
        if u32::from(pkt.mac_id) >= cfg.n_mac {
            debug_assert!(self.lenient, "MAC-ID {} out of range", pkt.mac_id);
            return self.drop_packet(pkt, "MAC-ID out of range");
        }
        if pkt.kind == PacketKind::Result {
            debug_assert!(self.lenient, "PEs never receive Result packets");
            return self.drop_packet(pkt, "Result packet delivered to a PE");
        }
        if pkt.op_id == self.current_op_id() && self.slot_fill(pkt) {
            return true;
        }
        // Ahead of the counter (or an aliased duplicate): park in SRAM.
        if self.cache.try_insert(pkt) {
            self.stats.cached_packets += 1;
            true
        } else {
            false
        }
    }

    #[inline]
    fn buffer_complete(&self, cfg: &PeLayerConfig, active: u32) -> bool {
        let need = lane_mask(active);
        let states_ok = match cfg.states {
            StateMode::PerMac => self.state_mask & need == need,
            StateMode::Shared => self.shared_state.is_some(),
        };
        let weights_ok = match cfg.weights {
            WeightMode::Local { .. } => true,
            WeightMode::Stream => self.weight_mask & need == need,
        };
        states_ok && weights_ok
    }

    /// Gathers this firing's weight and state operands into the scratch
    /// lane rows and applies any transient-fault upsets to the state row —
    /// lane-ascending, the same lens-call order as the scalar loop.
    fn gather_lanes(&mut self, cfg: &PeLayerConfig, active: usize, now: u64) {
        match cfg.weights {
            WeightMode::Local {
                weights_per_neuron, ..
            } => {
                let row = cfg.weight_row(self.group);
                let w = self.local_weights[(row * weights_per_neuron + self.op) as usize].to_bits();
                self.w_lanes[..active].fill(w);
            }
            WeightMode::Stream => {
                self.w_lanes[..active].copy_from_slice(&self.weight_bits[..active]);
            }
        }
        match cfg.states {
            StateMode::PerMac => {
                self.x_lanes[..active].copy_from_slice(&self.state_bits[..active]);
            }
            StateMode::Shared => {
                let x = self.shared_state.expect("checked complete").to_bits();
                self.x_lanes[..active].fill(x);
            }
        }
        // Transient MAC faults: a single-event upset flips one bit of the
        // state operand as it enters a lane's multiplier. Sparse pass over
        // the gathered row, lens consulted once per lane in fire order.
        if let Some(lens) = &mut self.faults {
            for (m, x) in self.x_lanes[..active].iter_mut().enumerate() {
                if let Some(bit) = lens.mac_upset(now, m as u64) {
                    *x ^= 1 << bit;
                }
            }
        }
    }

    /// Advances one reference cycle: fires the MAC array if the temporal
    /// buffer is complete and the array is free, emitting write-back packets
    /// when a neuron group finishes.
    pub fn tick(&mut self, now: u64) {
        let Some(cfg) = self.cfg else { return };
        if self.done || now < self.next_fire_at {
            return;
        }
        let active = cfg.active_macs(self.group);
        if !self.buffer_complete(&cfg, active) {
            self.stats.starved_cycles += 1;
            return;
        }

        // Fire: one multiply-accumulate per active MAC, all lanes in one
        // batch pass (or through the per-lane scalar oracle units). Every
        // path first classifies the zero-operand lanes (the gated-update
        // model); only the batch-without-faults path may then exploit the
        // classification on the host.
        let need = lane_mask(active);
        let active = active as usize;
        if self.simd && self.faults.is_none() {
            // Batch path, no fault lens: classify straight from the slot
            // state (no gather copies) and fire on the slot arrays
            // themselves; the broadcast kernel variants splat Local
            // weights / Shared states without filling a scratch row.
            let w_splat = match cfg.weights {
                WeightMode::Local {
                    weights_per_neuron, ..
                } => {
                    let row = cfg.weight_row(self.group);
                    let idx = (row * weights_per_neuron + self.op) as usize;
                    Some(self.local_weights[idx].to_bits())
                }
                WeightMode::Stream => None,
            };
            let x_splat = match cfg.states {
                StateMode::PerMac => None,
                StateMode::Shared => Some(self.shared_state.expect("checked complete").to_bits()),
            };
            let wz = match w_splat {
                Some(0) => need,
                Some(_) => 0,
                None => self.weight_zero_mask & need,
            };
            let xz = match x_splat {
                Some(0) => need,
                Some(_) => 0,
                None => self.state_zero_mask & need,
            };
            let gated = wz | xz;
            self.stats.lanes_gated += u64::from(gated.count_ones());
            if self.sparsity && gated == need {
                // Every lane holds a zero operand: the fire is an
                // arithmetic no-op in both accumulator widths.
            } else if self.sparsity && gated != 0 {
                let live = need & !gated;
                let w = match w_splat {
                    Some(w) => LaneSrc::Splat(w),
                    None => LaneSrc::Lanes(&self.weight_bits[..active]),
                };
                let x = match x_splat {
                    Some(x) => LaneSrc::Splat(x),
                    None => LaneSrc::Lanes(&self.state_bits[..active]),
                };
                match self.accumulator {
                    AccumulatorWidth::Wide32 => {
                        accumulate_wide_masked(&mut self.acc_wide[..active], w, x, live);
                    }
                    AccumulatorWidth::Narrow16 => {
                        accumulate_narrow_masked(&mut self.acc_narrow[..active], w, x, live);
                    }
                }
            } else {
                match (self.accumulator, w_splat, x_splat) {
                    (AccumulatorWidth::Wide32, Some(w), None) => accumulate_wide_broadcast_weight(
                        &mut self.acc_wide[..active],
                        w,
                        &self.state_bits[..active],
                    ),
                    (AccumulatorWidth::Wide32, None, Some(x)) => accumulate_wide_broadcast_state(
                        &mut self.acc_wide[..active],
                        &self.weight_bits[..active],
                        x,
                    ),
                    (AccumulatorWidth::Wide32, None, None) => accumulate_wide_lanes(
                        &mut self.acc_wide[..active],
                        &self.weight_bits[..active],
                        &self.state_bits[..active],
                    ),
                    (AccumulatorWidth::Wide32, Some(w), Some(x)) => accumulate_wide_masked(
                        &mut self.acc_wide[..active],
                        LaneSrc::Splat(w),
                        LaneSrc::Splat(x),
                        need,
                    ),
                    (AccumulatorWidth::Narrow16, Some(w), None) => {
                        accumulate_narrow_broadcast_weight(
                            &mut self.acc_narrow[..active],
                            w,
                            &self.state_bits[..active],
                        );
                    }
                    (AccumulatorWidth::Narrow16, None, Some(x)) => {
                        accumulate_narrow_broadcast_state(
                            &mut self.acc_narrow[..active],
                            &self.weight_bits[..active],
                            x,
                        );
                    }
                    (AccumulatorWidth::Narrow16, None, None) => accumulate_narrow_lanes(
                        &mut self.acc_narrow[..active],
                        &self.weight_bits[..active],
                        &self.state_bits[..active],
                    ),
                    (AccumulatorWidth::Narrow16, Some(w), Some(x)) => accumulate_narrow_masked(
                        &mut self.acc_narrow[..active],
                        LaneSrc::Splat(w),
                        LaneSrc::Splat(x),
                        need,
                    ),
                }
            }
        } else {
            // Scalar oracle and/or fault lens: gather into the scratch
            // rows (the lens is consulted once per lane, in fire order)
            // and classify from the post-upset operands — an upset can
            // turn a zero state nonzero, so the gated-update model must
            // see what the multiplier sees. No host fast paths here.
            self.gather_lanes(&cfg, active, now);
            let mut gated = 0u32;
            for m in 0..active {
                gated += u32::from(self.w_lanes[m] == 0 || self.x_lanes[m] == 0);
            }
            self.stats.lanes_gated += u64::from(gated);
            if self.simd {
                match self.accumulator {
                    AccumulatorWidth::Wide32 => accumulate_wide_lanes(
                        &mut self.acc_wide[..active],
                        &self.w_lanes[..active],
                        &self.x_lanes[..active],
                    ),
                    AccumulatorWidth::Narrow16 => accumulate_narrow_lanes(
                        &mut self.acc_narrow[..active],
                        &self.w_lanes[..active],
                        &self.x_lanes[..active],
                    ),
                }
            } else {
                for m in 0..active {
                    self.macs[m].accumulate(
                        Q88::from_bits(self.w_lanes[m]),
                        Q88::from_bits(self.x_lanes[m]),
                    );
                }
            }
        }
        self.shared_state = None;
        self.state_mask = 0;
        self.weight_mask = 0;
        self.stats.mac_ops += active as u64;
        self.stats.ops_fired += 1;
        self.op += 1;
        self.global_op += 1;

        if self.op == cfg.conns_per_neuron {
            // Neuron group complete: write back one result per active MAC.
            for m in 0..active {
                let bits = if self.simd {
                    match self.accumulator {
                        AccumulatorWidth::Wide32 => wide_result_bits(self.acc_wide[m]),
                        AccumulatorWidth::Narrow16 => self.acc_narrow[m],
                    }
                } else {
                    self.macs[m].result().to_bits()
                };
                self.results.push_back(Packet {
                    dst: self.node,
                    src: self.node,
                    mac_id: m as u8,
                    op_id: (self.group % 256) as u8,
                    kind: PacketKind::Result,
                    data: bits as u16,
                });
                self.stats.results_emitted += 1;
            }
            self.acc_wide.fill(0);
            self.acc_narrow.fill(0);
            self.macs.iter_mut().for_each(MacUnit::clear);
            self.stats.groups_done += 1;
            self.op = 0;
            self.group += 1;
            if self.group == cfg.total_groups() {
                self.done = true;
                return;
            }
        }

        // Pull any parked packets for the new current operation; the full
        // sub-bank search overlaps the MAC array's n_mac-cycle latency.
        let mut hits = std::mem::take(&mut self.hits_scratch);
        hits.clear();
        let search_cost = self
            .cache
            .take_matching_into(self.current_op_id(), &mut hits);
        for &pkt in &hits {
            let filled = self.slot_fill(pkt);
            assert!(
                filled,
                "PE {}: cached packet {pkt:?} collided with a filled slot at group {} op {}",
                self.node, self.group, self.op
            );
        }
        self.hits_scratch = hits;
        self.next_fire_at = now + u64::from(cfg.n_mac).max(search_cost);
    }

    /// The earliest future cycle at which [`tick`](Self::tick) could do
    /// anything beyond its per-cycle starvation accounting (which
    /// [`skip`](Self::skip) reproduces in bulk).
    ///
    /// `None` means "tick me this cycle" (the MAC array would fire).
    /// `Some(next_fire_at)` while the array drains its latency;
    /// `Some(u64::MAX)` when unconfigured, done, or starved — in each of
    /// those states only external input (configuration or an operand
    /// delivery) can wake the PE.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let Some(cfg) = &self.cfg else {
            return Some(u64::MAX);
        };
        if self.done {
            return Some(u64::MAX);
        }
        if now < self.next_fire_at {
            return Some(self.next_fire_at);
        }
        if self.buffer_complete(cfg, cfg.active_macs(self.group)) {
            None
        } else {
            Some(u64::MAX)
        }
    }

    /// Bulk-charges the null ticks in `[from, to)`, a range this PE
    /// declared quiescent via [`next_event`](Self::next_event): a starved
    /// PE charges one starved cycle per tick; every other quiescent state
    /// ticks to no effect at all.
    pub fn skip(&mut self, from: u64, to: u64) {
        let Some(cfg) = self.cfg else { return };
        if self.done || from < self.next_fire_at {
            return;
        }
        debug_assert!(
            !self.buffer_complete(&cfg, cfg.active_macs(self.group)),
            "skipped over a fireable PE"
        );
        self.stats.starved_cycles += to - from;
    }

    /// The next write-back packet waiting to enter the NoC, if any.
    pub fn peek_result(&self) -> Option<&Packet> {
        self.results.front()
    }

    /// Removes the packet returned by [`peek_result`](Self::peek_result)
    /// after a successful NoC injection.
    pub fn pop_result(&mut self) -> Option<Packet> {
        self.results.pop_front()
    }
}

/// Mask with the low `active` lane bits set.
#[inline]
fn lane_mask(active: u32) -> u64 {
    debug_assert!(active <= 64);
    if active >= 64 {
        u64::MAX
    } else {
        (1u64 << active) - 1
    }
}

impl StatSource for ProcessingElement {
    fn report(&self, stats: &mut ScopedStats<'_>) {
        stats.counter("mac_ops", self.stats.mac_ops);
        stats.counter("ops_fired", self.stats.ops_fired);
        stats.counter("groups_done", self.stats.groups_done);
        stats.counter("starved_cycles", self.stats.starved_cycles);
        stats.counter("results_emitted", self.stats.results_emitted);
        stats.counter("cached_packets", self.stats.cached_packets);
        stats.counter("lanes_gated", self.stats.lanes_gated);
        stats.gauge("cache_high_water", self.cache_high_water() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u32 = 16;

    fn conv_cfg(neurons_per_map: u64, maps: u32, conns: u32) -> PeLayerConfig {
        PeLayerConfig {
            n_mac: N,
            conns_per_neuron: conns,
            neurons_per_map,
            maps,
            states: StateMode::PerMac,
            weights: WeightMode::Local {
                weights_per_neuron: conns,
                rows: maps,
            },
        }
    }

    fn state(mac: u8, op: u8, v: f64) -> Packet {
        Packet {
            dst: 0,
            src: 0,
            mac_id: mac,
            op_id: op,
            kind: PacketKind::State,
            data: Q88::from_f64(v).to_bits() as u16,
        }
    }

    /// Feeds packets and ticks until the layer is done; returns results.
    fn run_to_completion(
        pe: &mut ProcessingElement,
        mut packets: Vec<Packet>,
        deadline: u64,
    ) -> Vec<Packet> {
        packets.reverse(); // pop from the back = original order
        let mut out = Vec::new();
        let mut now = 0u64;
        while !pe.layer_done() {
            // Up to one packet per cycle, like the NoC PE port.
            if let Some(&pkt) = packets.last() {
                if pe.try_accept(pkt) {
                    packets.pop();
                }
            }
            pe.tick(now);
            if let Some(p) = pe.pop_result() {
                out.push(p);
            }
            now += 1;
            assert!(now < deadline, "PE hung at group {}", pe.group);
        }
        out
    }

    #[test]
    fn single_group_dot_product() {
        let mut pe = ProcessingElement::new(3, AccumulatorWidth::Wide32);
        // 16 neurons, 2 connections, weights [0.5, 2.0].
        pe.configure(
            conv_cfg(16, 1, 2),
            vec![Q88::from_f64(0.5), Q88::from_f64(2.0)],
        );
        let mut pkts = Vec::new();
        for op in 0..2u8 {
            for mac in 0..16u8 {
                pkts.push(state(mac, op, f64::from(mac)));
            }
        }
        let results = run_to_completion(&mut pe, pkts, 10_000);
        assert_eq!(results.len(), 16);
        for (m, r) in results.iter().enumerate() {
            assert_eq!(r.kind, PacketKind::Result);
            assert_eq!(r.dst, 3);
            assert_eq!(usize::from(r.mac_id), m);
            // y = 0.5*m + 2.0*m = 2.5*m
            assert_eq!(
                Q88::from_bits(r.data as i16).to_f64(),
                2.5 * m as f64,
                "mac {m}"
            );
        }
        assert_eq!(pe.stats().mac_ops, 32);
        assert_eq!(pe.stats().groups_done, 1);
    }

    #[test]
    fn out_of_order_packets_go_through_cache() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        pe.configure(conv_cfg(16, 1, 2), vec![Q88::ONE, Q88::ONE]);
        // Deliver op 1 packets before op 0 packets.
        let mut pkts = Vec::new();
        for mac in 0..16u8 {
            pkts.push(state(mac, 1, 1.0));
        }
        for mac in 0..16u8 {
            pkts.push(state(mac, 0, 2.0));
        }
        let results = run_to_completion(&mut pe, pkts, 10_000);
        assert_eq!(results.len(), 16);
        for r in &results {
            assert_eq!(Q88::from_bits(r.data as i16).to_f64(), 3.0);
        }
        assert!(pe.stats().cached_packets >= 16);
        assert!(pe.cache_high_water() >= 16);
    }

    #[test]
    fn fc_dataflow_shared_state_streamed_weights() {
        let mut pe = ProcessingElement::new(7, AccumulatorWidth::Wide32);
        pe.configure(
            PeLayerConfig {
                n_mac: N,
                conns_per_neuron: 3,
                neurons_per_map: 16,
                maps: 1,
                states: StateMode::Shared,
                weights: WeightMode::Stream,
            },
            Vec::new(),
        );
        let mut pkts = Vec::new();
        for op in 0..3u8 {
            pkts.push(Packet {
                dst: 7,
                src: 7,
                mac_id: 0,
                op_id: op,
                kind: PacketKind::SharedState,
                data: Q88::from_f64(2.0).to_bits() as u16,
            });
            for mac in 0..16u8 {
                pkts.push(Packet {
                    dst: 7,
                    src: 7,
                    mac_id: mac,
                    op_id: op,
                    kind: PacketKind::Weight,
                    data: Q88::from_f64(f64::from(mac) / 4.0).to_bits() as u16,
                });
            }
        }
        let results = run_to_completion(&mut pe, pkts, 10_000);
        assert_eq!(results.len(), 16);
        for (m, r) in results.iter().enumerate() {
            // y = 3 ops * (m/4 * 2.0) = 1.5 m
            assert_eq!(
                Q88::from_bits(r.data as i16).to_f64(),
                1.5 * m as f64,
                "mac {m}"
            );
        }
    }

    #[test]
    fn partial_last_group_uses_fewer_macs() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        // 20 neurons => one full group of 16, one partial of 4. With one
        // connection per neuron, the cumulative OP-ID is the group index.
        pe.configure(conv_cfg(20, 1, 1), vec![Q88::ONE]);
        let mut pkts = Vec::new();
        for mac in 0..16u8 {
            pkts.push(state(mac, 0, 1.0));
        }
        for mac in 0..4u8 {
            pkts.push(state(mac, 1, 5.0));
        }
        let results = run_to_completion(&mut pe, pkts, 10_000);
        assert_eq!(results.len(), 20);
        assert_eq!(Q88::from_bits(results[19].data as i16).to_f64(), 5.0);
        assert_eq!(pe.stats().mac_ops, 20);
    }

    /// Lane-masking check: a partially-active group must accumulate only
    /// its active lanes, and the batch path must agree with the scalar
    /// oracle packet-for-packet and counter-for-counter on it.
    #[test]
    fn partial_groups_match_scalar_oracle_bitwise() {
        let run = |simd: bool| {
            let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
            pe.set_simd(Some(simd));
            // 21 neurons per map, 2 maps: groups of 16/5/16/5 active lanes.
            pe.configure(
                conv_cfg(21, 2, 3),
                vec![
                    Q88::from_f64(0.5),
                    Q88::from_f64(-1.0),
                    Q88::from_f64(2.0),
                    Q88::from_f64(1.5),
                    Q88::from_f64(0.25),
                    Q88::from_f64(-0.5),
                ],
            );
            let mut pkts = Vec::new();
            let mut global_op = 0u64;
            for g in 0..4u64 {
                let active = if g % 2 == 0 { 16 } else { 5 };
                for _ in 0..3u32 {
                    for mac in 0..active as u8 {
                        pkts.push(state(
                            mac,
                            (global_op % 256) as u8,
                            f64::from(mac) - 113.0 / 32.0,
                        ));
                    }
                    global_op += 1;
                }
            }
            let out = run_to_completion(&mut pe, pkts, 100_000);
            (out, *pe.stats())
        };
        let (soa, soa_stats) = run(true);
        let (scalar, scalar_stats) = run(false);
        assert_eq!(soa, scalar, "batch path diverged from the scalar oracle");
        assert_eq!(soa_stats, scalar_stats);
        assert_eq!(soa.len(), 42);
        assert_eq!(soa_stats.mac_ops, (16 + 5) * 2 * 3);
    }

    #[test]
    fn weight_rows_advance_with_output_maps() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        // 2 maps * 16 neurons, 1 connection; weight row 0 = 1.0, row 1 = -1.0.
        pe.configure(
            conv_cfg(16, 2, 1),
            vec![Q88::from_f64(1.0), Q88::from_f64(-1.0)],
        );
        let mut pkts = Vec::new();
        for map in 0..2u8 {
            for mac in 0..16u8 {
                // One connection per neuron: cumulative OP-ID = group = map.
                pkts.push(state(mac, map, 3.0));
            }
        }
        let results = run_to_completion(&mut pe, pkts, 10_000);
        assert_eq!(results.len(), 32);
        assert_eq!(Q88::from_bits(results[0].data as i16).to_f64(), 3.0);
        assert_eq!(Q88::from_bits(results[16].data as i16).to_f64(), -3.0);
    }

    #[test]
    fn mac_array_latency_is_n_mac_cycles() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        pe.configure(conv_cfg(16, 1, 2), vec![Q88::ONE, Q88::ONE]);
        // Preload both ops' packets instantly.
        for op in 0..2u8 {
            for mac in 0..16u8 {
                assert!(pe.try_accept(state(mac, op, 1.0)));
            }
        }
        // First fire at cycle 0; second fire must wait 16 cycles.
        pe.tick(0);
        assert_eq!(pe.stats().ops_fired, 1);
        for now in 1..16 {
            pe.tick(now);
            assert_eq!(pe.stats().ops_fired, 1, "fired early at {now}");
        }
        pe.tick(16);
        assert_eq!(pe.stats().ops_fired, 2);
    }

    #[test]
    fn backpressure_when_sub_bank_full() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        pe.configure(conv_cfg(16, 1, 300), vec![Q88::ONE; 300]);
        // Fill sub-bank 0 with future packets (op 16 mod 16 == 0).
        let mut accepted = 0;
        for i in 0..100u32 {
            let op = 16 + (i / 16) * 16; // ops 16, 32, 48... all bank 0
            if pe.try_accept(state((i % 16) as u8, (op % 256) as u8, 1.0)) {
                accepted += 1;
            }
        }
        assert!(accepted >= 64, "cache should take 64 entries");
        assert!(accepted < 100, "sub-bank must eventually refuse");
    }

    #[test]
    fn unconfigured_pe_is_done_and_inert() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        assert!(pe.layer_done());
        pe.tick(0); // no panic
        assert!(pe.peek_result().is_none());
    }

    #[test]
    #[should_panic(expected = "not configured")]
    fn accept_requires_configuration() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        let _ = pe.try_accept(state(0, 0, 1.0));
    }

    #[test]
    #[should_panic(expected = "mid-layer")]
    fn simd_switch_rejected_mid_layer() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        pe.configure(conv_cfg(16, 1, 1), vec![Q88::ONE]);
        pe.set_simd(Some(false));
    }

    #[test]
    fn lenient_mode_counts_drops_instead_of_panicking() {
        let mut pe = ProcessingElement::new(2, AccumulatorWidth::Wide32);
        pe.set_lenient(true);
        // Unconfigured: consumed, counted.
        assert!(pe.try_accept(state(0, 0, 1.0)));
        pe.configure(conv_cfg(16, 1, 1), vec![Q88::ONE]);
        // Out-of-range MAC and a misdelivered Result: consumed, counted.
        assert!(pe.try_accept(state(200, 0, 1.0)));
        let result = Packet {
            dst: 2,
            src: 9,
            mac_id: 0,
            op_id: 0,
            kind: PacketKind::Result,
            data: 0,
        };
        assert!(pe.try_accept(result));
        assert_eq!(pe.fault_counts().dropped_packets, 3);
        // The layer still completes normally afterwards.
        let pkts = (0..16u8).map(|mac| state(mac, 0, 1.0)).collect();
        let results = run_to_completion(&mut pe, pkts, 10_000);
        assert_eq!(results.len(), 16);
    }

    #[test]
    fn mac_faults_are_deterministic_and_perturb_results() {
        let run = |rate: f64, seed: u64, simd: bool| {
            let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
            pe.set_simd(Some(simd));
            let cfg = neurocube_fault::FaultConfig {
                seed,
                pe_mac_rate: rate,
                ..Default::default()
            };
            pe.set_faults(Some(&cfg));
            pe.configure(conv_cfg(16, 1, 4), vec![Q88::ONE; 4]);
            let mut pkts = Vec::new();
            for op in 0..4u8 {
                for mac in 0..16u8 {
                    pkts.push(state(mac, op, 1.0));
                }
            }
            let out: Vec<u16> = run_to_completion(&mut pe, pkts, 10_000)
                .iter()
                .map(|p| p.data)
                .collect();
            (out, pe.fault_counts())
        };
        let (clean, c0) = run(0.0, 1, true);
        assert_eq!(c0, PeFaultCounts::default());
        let (a, ca) = run(0.25, 1, true);
        let (b, cb) = run(0.25, 1, true);
        assert_eq!(a, b, "same seed must reproduce bitwise");
        assert_eq!(ca, cb);
        assert!(ca.mac_faults > 0, "no MAC faults fired at rate 0.25");
        assert_ne!(a, clean, "faults left every result untouched");
        let (c, _) = run(0.25, 2, true);
        assert_ne!(a, c, "different seeds produced identical faulty runs");
        // The sparse upset pass must reproduce the scalar loop exactly.
        let (s, cs) = run(0.25, 1, false);
        assert_eq!(a, s, "faulty batch path diverged from the scalar oracle");
        assert_eq!(ca, cs);
    }

    #[test]
    fn reconfigure_resets_everything() {
        let mut pe = ProcessingElement::new(0, AccumulatorWidth::Wide32);
        pe.configure(conv_cfg(16, 1, 1), vec![Q88::ONE]);
        for mac in 0..16u8 {
            assert!(pe.try_accept(state(mac, 0, 1.0)));
        }
        pe.tick(0);
        assert!(pe.pop_result().is_some());
        pe.configure(conv_cfg(16, 1, 1), vec![Q88::ONE]);
        assert!(!pe.layer_done());
        assert!(pe.peek_result().is_none());
    }
}
